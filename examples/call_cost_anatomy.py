"""The paper's motivating observation, reproduced on one workload.

Run with::

    python examples/call_cost_anatomy.py [workload]

Figure 2 of the paper shows that giving the register allocator more
registers drives the *spill* cost to zero — but the *call* cost
(caller-save saves/restores around calls plus callee-save
saves/restores at entry/exit) persists and comes to dominate.  This
example prints the overhead decomposition of the base Chaitin
allocator across the register sweep, then shows what the three
call-cost directed improvements leave of it.
"""

import sys

from repro.eval import measure
from repro.eval.render import render_table
from repro.machine import mips_sweep
from repro.regalloc import AllocatorOptions


def decomposition_rows(workload: str, options, configs):
    rows = []
    overheads = [measure(workload, options, c, "dynamic") for c in configs]
    for component in ("spill", "caller_save", "callee_save", "shuffle", "total"):
        rows.append(
            [component]
            + [f"{getattr(o, component):.0f}" for o in overheads]
        )
    return rows


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "eqntott"
    configs = mips_sweep()[:8]
    header = ["component"] + [str(c) for c in configs]

    print(
        render_table(
            f"{workload}: base Chaitin overhead by component",
            header,
            decomposition_rows(workload, AllocatorOptions.base_chaitin(), configs),
        )
    )
    print()
    print(
        render_table(
            f"{workload}: improved Chaitin (SC+BS+PR) overhead by component",
            header,
            decomposition_rows(
                workload, AllocatorOptions.improved_chaitin(), configs
            ),
        )
    )
    print(
        "\nReading guide: under the base model the spill row collapses "
        "as registers grow\nwhile the caller-save row persists — the "
        "call cost dominates.  The improved\nallocator redirects hot "
        "call-crossing live ranges into callee-save registers\n(or "
        "spills them when even that loses), collapsing the call cost too."
    )


if __name__ == "__main__":
    main()
