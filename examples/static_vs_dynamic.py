"""Static estimates vs profiles: how much does the allocator's
information source matter?

Run with::

    python examples/static_vs_dynamic.py

The paper evaluates every allocator twice: with compiler-estimated
(static) execution frequencies and with exact profiles (dynamic).
This example allocates every SPEC92 stand-in with the improved
Chaitin allocator under both information sources and reports the
overhead each produces — measurement always uses the true profile, so
the comparison isolates the quality of the allocator's *decisions*.

The pattern the paper reports holds here too: programs whose hot
paths static loop-depth estimation ranks correctly (tomcatv, fpppp,
matrix300) see no difference, while programs with data-dependent
hot/cold structure (eqntott's sort, sc's formula mix, ear's gain
control) leave 10-30% on the table without profiles.
"""

from repro.eval import measure
from repro.eval.render import render_table
from repro.machine import RegisterConfig
from repro.regalloc import AllocatorOptions
from repro.workloads import workload_names

CONFIG = RegisterConfig(7, 5, 1, 1)


def main() -> None:
    options = AllocatorOptions.improved_chaitin()
    rows = []
    for name in workload_names():
        static_cost = measure(name, options, CONFIG, "static").total
        dynamic_cost = measure(name, options, CONFIG, "dynamic").total
        penalty = static_cost / max(dynamic_cost, 1.0)
        rows.append(
            [
                name,
                f"{static_cost:.0f}",
                f"{dynamic_cost:.0f}",
                f"{penalty:.2f}x",
            ]
        )
    header = ["workload", "static info", "dynamic info", "static penalty"]
    print(
        render_table(
            f"improved Chaitin at {CONFIG}: overhead by information source",
            header,
            rows,
        )
    )
    print(
        "\nA penalty of 1.00x means loop-depth estimates already rank "
        "this program's\nlive ranges correctly; larger penalties mark "
        "programs whose heat is\ndata-dependent and invisible to "
        "static estimation."
    )


if __name__ == "__main__":
    main()
