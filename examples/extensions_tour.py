"""A tour of the extensions built on top of the paper's allocator.

Run with::

    python examples/extensions_tour.py

Shows, on one call-heavy workload:

1. **Rematerialization** — storage-class analysis deliberately spills
   constant-valued live ranges that cross hot calls; rematerializing
   them replaces reload traffic with one-cycle constant re-emits.
2. **Interprocedural save elision (IPRA)** — callee clobber summaries
   let a caller skip saves at calls that provably leave its registers
   alone.
3. **Graph reconstruction** — the framework's incremental graph update
   produces bit-identical allocations to a full rebuild.
"""

from repro.eval import program_overhead
from repro.machine import RegisterConfig, register_file
from repro.regalloc import AllocatorOptions, allocate_program
from repro.workloads import compile_workload

WORKLOAD = "sc"
CONFIG = RegisterConfig(6, 4, 0, 0)


def overhead_for(compiled, options, **kwargs):
    allocation = allocate_program(
        compiled.program,
        register_file(CONFIG),
        options,
        compiled.dynamic_weights,
        **kwargs,
    )
    return allocation, program_overhead(allocation, compiled.profile)


def main() -> None:
    compiled = compile_workload(WORKLOAD)
    improved = AllocatorOptions.improved_chaitin()

    _, base = overhead_for(compiled, improved)
    print(f"{WORKLOAD} at {CONFIG}, improved Chaitin:")
    print(f"  baseline             total={base.total:9.0f}  "
          f"(spill={base.spill:.0f}, caller={base.caller_save:.0f})")

    _, remat = overhead_for(compiled, improved.with_(remat=True))
    print(f"  + rematerialization  total={remat.total:9.0f}  "
          f"({base.total / max(remat.total, 1):.2f}x)")

    _, ipra = overhead_for(compiled, improved, ipra=True)
    print(f"  + IPRA summaries     total={ipra.total:9.0f}  "
          f"({base.total / max(ipra.total, 1):.2f}x)")

    _, both = overhead_for(
        compiled, improved.with_(remat=True), ipra=True
    )
    print(f"  + both               total={both.total:9.0f}  "
          f"({base.total / max(both.total, 1):.2f}x)")

    plain_alloc, _ = overhead_for(compiled, improved)
    recon_alloc, recon = overhead_for(compiled, improved, reconstruct=True)
    identical = all(
        {r.id: p.name for r, p in plain_alloc.functions[f].assignment.items()}
        == {r.id: p.name for r, p in recon_alloc.functions[f].assignment.items()}
        for f in plain_alloc.functions
    )
    print(f"\ngraph reconstruction: assignments identical to rebuild: {identical}")


if __name__ == "__main__":
    main()
