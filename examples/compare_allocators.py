"""Compare every allocator on one SPEC92 stand-in across the sweep.

Run with::

    python examples/compare_allocators.py [workload]

Prints total overhead-operation counts for base Chaitin, optimistic,
improved Chaitin (SC+BS+PR), priority-based and CBH coloring, at each
register configuration of the canonical sweep — the cross-allocator
view the paper's evaluation sections are built from.
"""

import sys

from repro.eval import measure
from repro.eval.render import render_table
from repro.machine import mips_sweep
from repro.regalloc import AllocatorOptions

ALLOCATORS = [
    ("base", AllocatorOptions.base_chaitin()),
    ("optimistic", AllocatorOptions.optimistic_coloring()),
    ("improved", AllocatorOptions.improved_chaitin()),
    ("priority", AllocatorOptions.priority_based()),
    ("CBH", AllocatorOptions.cbh()),
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "ear"
    configs = mips_sweep()[:8]

    rows = []
    for label, options in ALLOCATORS:
        row = [label]
        for config in configs:
            overhead = measure(workload, options, config, "dynamic")
            row.append(f"{overhead.total:.0f}")
        rows.append(row)

    header = ["allocator"] + [str(c) for c in configs]
    print(
        render_table(
            f"total overhead operations for {workload!r} (dynamic info)",
            header,
            rows,
        )
    )
    print(
        "\nNote how the improved allocator pulls ahead once spilling "
        "stops being the bottleneck,\nand how CBH struggles while "
        "callee-save registers are scarce."
    )


if __name__ == "__main__":
    main()
