"""Quickstart: compile a mini-C program and allocate its registers.

Run with::

    python examples/quickstart.py

Shows the whole public-API flow: compile source, allocate under the
call-cost directed allocator, inspect the assignment and the overhead
breakdown, and verify the allocated code still computes the same
answer.
"""

from repro.core import AllocatorOptions, allocate, compile_source
from repro.ir import format_function
from repro.profile import run_allocated, run_program

SOURCE = """
int table[64];
int out[2];

int hash(int key) {
    int h = key * 31 + 7;
    if (h < 0) { h = -h; }
    return h % 64;
}

void main() {
    int filled = 0;
    for (int i = 0; i < 100; i = i + 1) {
        int slot = hash(i * 17 + 3);
        if (table[slot] == 0) {
            table[slot] = i + 1;
            filled = filled + 1;
        }
    }
    out[0] = filled;
}
"""


def main() -> None:
    program = compile_source(SOURCE)

    # Allocate with the paper's improved Chaitin-style allocator on a
    # small register file: 4 caller-save + 2 callee-save integers.
    outcome = allocate(
        program,
        config=(4, 2, 2, 1),
        options=AllocatorOptions.improved_chaitin(),
    )

    print("=== allocated main ===")
    print(format_function(outcome.allocation.functions["main"].func))

    print("\n=== register assignment (main) ===")
    for reg, phys in sorted(
        outcome.allocation.functions["main"].assignment.items(),
        key=lambda item: item[0].id,
    ):
        print(f"  {reg!r:20} -> {phys.name:6} ({phys.kind})")

    print("\n=== overhead (weighted operation counts) ===")
    print(f"  spill:       {outcome.overhead.spill:10.0f}")
    print(f"  caller-save: {outcome.overhead.caller_save:10.0f}")
    print(f"  callee-save: {outcome.overhead.callee_save:10.0f}")
    print(f"  shuffle:     {outcome.overhead.shuffle:10.0f}")
    print(f"  total:       {outcome.overhead.total:10.0f}")

    # The machine-level interpreter re-runs the allocated code.
    original = run_program(program)
    allocated = run_allocated(outcome.allocation)
    assert original.globals_state == allocated.globals_state
    print("\nallocated code verified: out[0] =",
          allocated.globals_state["out"][0])


if __name__ == "__main__":
    main()
