"""Versioning for every JSON payload the toolkit emits.

Every machine-readable artifact — ``--json`` reports, grid failure
records, chaos campaign artifacts, server responses, loadgen output —
carries a top-level ``schema_version`` so clients can detect format
drift instead of silently misparsing a newer payload.

Bump :data:`SCHEMA_VERSION` whenever the *shape* of any emitted
payload changes incompatibly (renamed or removed keys, changed
nesting); adding new optional keys does not require a bump.
"""

from __future__ import annotations

#: The current payload format generation.
SCHEMA_VERSION = 1


def stamp(payload: dict) -> dict:
    """Stamp ``payload`` with the current schema version, in place.

    Returns the payload for call-chaining.  An existing
    ``schema_version`` key is left alone so replayed or merged
    payloads keep the version they were produced under.
    """
    payload.setdefault("schema_version", SCHEMA_VERSION)
    return payload
