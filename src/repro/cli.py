"""Command-line interface.

::

    python -m repro compile FILE [--optimize]         # show the IR
    python -m repro run FILE [--main NAME]            # execute a program
    python -m repro allocate FILE --config 6,4,2,2    # allocate + report
    python -m repro workloads                         # list the stand-ins
    python -m repro sweep WORKLOAD                    # allocators x sweep
    python -m repro experiment NAME                   # regenerate a figure

Every command takes mini-C source files; see README.md for the
language and the allocator names.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.eval import experiments as exp
from repro.eval.overhead import program_overhead
from repro.eval.render import render_table
from repro.ir import format_program
from repro.lang import compile_source
from repro.machine import RegisterConfig, mips_sweep, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import AllocatorOptions, allocate_program

ALLOCATORS = {
    "base": AllocatorOptions.base_chaitin,
    "optimistic": AllocatorOptions.optimistic_coloring,
    "improved": AllocatorOptions.improved_chaitin,
    "improved-optimistic": AllocatorOptions.improved_optimistic,
    "priority": AllocatorOptions.priority_based,
    "cbh": AllocatorOptions.cbh,
}

EXPERIMENTS = {
    "figure2": exp.figure2,
    "figure6": exp.figure6,
    "figure7": exp.figure7,
    "figure9": exp.figure9,
    "figure10": exp.figure10,
    "figure11": exp.figure11,
    "table2": exp.table2,
    "table3": exp.table3,
    "table4": exp.table4,
    "ablation-callee-model": exp.ablation_callee_model,
    "ablation-bs-key": exp.ablation_bs_key,
    "ablation-priority-order": exp.ablation_priority_order,
    "ablation-optimized-ir": exp.ablation_optimized_ir,
    "ablation-remat": exp.ablation_rematerialization,
    "ablation-spill-metric": exp.ablation_spill_metric,
    "ablation-ipra": exp.ablation_ipra,
    "static-penalty": exp.static_penalty,
}


def _parse_config(text: str) -> RegisterConfig:
    try:
        parts = [int(p) for p in text.replace("(", "").replace(")", "").split(",")]
        if len(parts) != 4:
            raise ValueError
        return RegisterConfig(*parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"config must be 'Ri,Rf,Ei,Ef' (e.g. 6,4,2,2), got {text!r}"
        ) from None


def _load_program(path: str, optimize: bool = False):
    """Load mini-C (``.mc``/anything else) or textual IR (``.ir``)."""
    source = Path(path).read_text()
    if Path(path).suffix == ".ir":
        from repro.ir import parse_ir, verify_program

        program = parse_ir(source, name=Path(path).stem)
        verify_program(program)
    else:
        program = compile_source(source, name=Path(path).stem)
    if optimize:
        from repro.opt import optimize_program

        optimize_program(program)
    return program


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_compile(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    print(format_program(program))
    return 0


def cmd_run(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    result = run_program(program, args.main, fuel=args.fuel)
    if result.return_value is not None:
        print(f"return value: {result.return_value}")
    print(f"instructions executed: {result.instructions_executed}")
    for name, values in sorted(result.globals_state.items()):
        shown = ", ".join(str(v) for v in values[:8])
        suffix = ", ..." if len(values) > 8 else ""
        print(f"@{name} = [{shown}{suffix}]")
    return 0


def cmd_allocate(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    profile = run_program(program, fuel=args.fuel).profile
    options = ALLOCATORS[args.allocator]()
    weights_for = (
        profile.weights if args.info == "dynamic" else None
    )
    rf = register_file(args.config)
    allocation = allocate_program(program, rf, options, weights_for)
    overhead = program_overhead(allocation, profile)

    print(f"allocator: {options.label}   register file: {args.config}")
    print(
        f"overhead: total={overhead.total:.0f} (spill={overhead.spill:.0f}, "
        f"caller-save={overhead.caller_save:.0f}, "
        f"callee-save={overhead.callee_save:.0f}, "
        f"shuffle={overhead.shuffle:.0f})"
    )
    for name, fa in allocation.functions.items():
        spilled = ", ".join(repr(r) for r in fa.spilled) or "none"
        print(
            f"\n{name}: {len(fa.assignment)} ranges in registers, "
            f"{fa.iterations} iteration(s), spilled: {spilled}"
        )
        if args.show_assignment:
            for reg, phys in sorted(fa.assignment.items(), key=lambda x: x[0].id):
                print(f"    {reg!r:24} -> {phys.name}")
    if args.dot:
        func_name, _, dot_path = args.dot.partition(":")
        if not dot_path:
            raise SystemExit("--dot expects FUNC:PATH")
        from repro.analysis.frequency import static_weights
        from repro.regalloc import build_interference, to_dot

        fa = allocation.functions[func_name]
        graph, infos = build_interference(
            fa.func, static_weights(fa.func), set()
        )
        Path(dot_path).write_text(
            to_dot(graph, infos, fa.assignment, title=func_name) + "\n"
        )
        print(f"\ninterference graph written to {dot_path}")
    if args.verify:
        mech = run_allocated(allocation, fuel=args.fuel * 4)
        baseline = run_program(program, fuel=args.fuel)
        same = mech.globals_state == baseline.globals_state
        print(f"\nexecution check: {'PASS' if same else 'FAIL'}")
        return 0 if same else 1
    return 0


def cmd_workloads(args) -> int:
    from repro.workloads import get_workload, workload_names

    rows = []
    for name in workload_names():
        workload = get_workload(name)
        rows.append([name, ", ".join(workload.traits), workload.description])
    print(render_table("SPEC92 stand-in workloads", ["name", "traits", "description"], rows))
    return 0


def _render_timings(keys: Sequence, title: str) -> Optional[str]:
    """Aggregate cached pipeline timings for ``keys`` into a table.

    One row per workload (phase seconds, iterations, analysis-cache
    traffic) plus a TOTAL row; returns None when nothing for ``keys``
    is in the measurement cache yet.
    """
    from repro.eval.runner import RESULTS
    from repro.regalloc.framework import PHASES, PipelineStats

    per_workload = {}
    counted = set()
    for key in keys:
        if key in counted:
            continue
        counted.add(key)
        measurement = RESULTS.peek(key)
        if measurement is None:
            continue
        workload = key[0]
        stats, runs = per_workload.get(workload, (PipelineStats(), 0))
        per_workload[workload] = (stats + measurement.stats, runs + 1)
    if not per_workload:
        return None

    header = (
        ["workload", "runs"]
        + list(PHASES)
        + ["total s", "iters", "cache hit", "cache miss"]
    )
    rows = []
    total, total_runs = PipelineStats(), 0
    for workload in sorted(per_workload):
        stats, runs = per_workload[workload]
        total, total_runs = total + stats, total_runs + runs
        rows.append(
            [workload, str(runs)]
            + [f"{seconds:.4f}" for seconds in stats.phase_seconds().values()]
            + [
                f"{stats.total_seconds:.4f}",
                str(stats.iterations),
                str(stats.cache_hits),
                str(stats.cache_misses),
            ]
        )
    rows.append(
        ["TOTAL", str(total_runs)]
        + [f"{seconds:.4f}" for seconds in total.phase_seconds().values()]
        + [
            f"{total.total_seconds:.4f}",
            str(total.iterations),
            str(total.cache_hits),
            str(total.cache_misses),
        ]
    )
    return render_table(title, header, rows)


def cmd_sweep(args) -> int:
    from repro.eval import measure, run_grid

    configs = mips_sweep()
    if args.short:
        configs = configs[:6]
    names = args.allocators or list(ALLOCATORS)
    keys = [
        (args.workload, ALLOCATORS[alloc_name](), config, args.info)
        for alloc_name in names
        for config in configs
    ]
    if args.jobs and args.jobs > 1:
        run_grid(keys, jobs=args.jobs)
    rows = []
    data = {}
    for alloc_name in names:
        options = ALLOCATORS[alloc_name]()
        row = [alloc_name]
        totals = {}
        for config in configs:
            overhead = measure(args.workload, options, config, args.info)
            row.append(f"{overhead.total:.0f}")
            totals[str(config)] = overhead.total
        rows.append(row)
        data[alloc_name] = totals
    if args.json:
        print(
            json.dumps(
                {"workload": args.workload, "info": args.info, "totals": data},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        header = ["allocator"] + [str(c) for c in configs]
        print(
            render_table(
                f"total overhead for {args.workload!r} ({args.info} info)",
                header,
                rows,
            )
        )
    if args.timings:
        timings = _render_timings(
            keys, f"Pipeline phase timings for {args.workload!r}"
        )
        if timings:
            print()
            print(timings)
    return 0


def cmd_experiment(args) -> int:
    from repro.eval import experiment_grid, run_grid

    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        driver = EXPERIMENTS[name]
        keys = experiment_grid(driver)
        if args.jobs and args.jobs > 1 and keys:
            run_grid(keys, jobs=args.jobs)
        result = driver()
        text = (
            json.dumps(result.as_dict(), indent=2)
            if args.json
            else result.render()
        )
        print(text)
        print()
        if args.timings:
            timings = _render_timings(keys, f"Pipeline phase timings for {name}")
            if timings:
                print(timings)
                print()
            else:
                print(f"(no per-phase timings recorded for {name})")
                print()
        if args.out:
            suffix = "json" if args.json else "txt"
            target = Path(args.out)
            if len(names) > 1:
                target.mkdir(parents=True, exist_ok=True)
                (target / f"{name.replace('-', '_')}.{suffix}").write_text(
                    text + "\n"
                )
            else:
                target.write_text(text + "\n")
    if args.out:
        print(f"written to {args.out}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Call-cost directed register allocation (PLDI 1997) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile mini-C and print the IR")
    p.add_argument("file")
    p.add_argument("--optimize", action="store_true", help="run the optimizer")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute a mini-C program")
    p.add_argument("file")
    p.add_argument("--main", default="main", help="entry function")
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("allocate", help="allocate registers and report overhead")
    p.add_argument("file")
    p.add_argument("--config", type=_parse_config, default=RegisterConfig(6, 4, 2, 2))
    p.add_argument("--allocator", choices=sorted(ALLOCATORS), default="improved")
    p.add_argument("--info", choices=["static", "dynamic"], default="dynamic")
    p.add_argument("--show-assignment", action="store_true")
    p.add_argument("--verify", action="store_true",
                   help="re-execute the allocated code and compare")
    p.add_argument("--dot",
                   help="write the annotated interference graph of a "
                        "function to this DOT file (FUNC:PATH)")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser("workloads", help="list the SPEC92 stand-ins")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("sweep", help="compare allocators over the register sweep")
    p.add_argument("workload")
    p.add_argument("--allocators", nargs="*", choices=sorted(ALLOCATORS))
    p.add_argument("--info", choices=["static", "dynamic"], default="dynamic")
    p.add_argument("--short", action="store_true", help="first 6 configs only")
    p.add_argument("--jobs", type=int, default=1,
                   help="measure the grid with N worker processes")
    p.add_argument("--timings", action="store_true",
                   help="also print per-phase pipeline timings")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of the ASCII table")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("experiment", help="regenerate a table or figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    p.add_argument(
        "--out",
        help="write the rendering to a file (a directory when name=all)",
    )
    p.add_argument("--jobs", type=int, default=1,
                   help="pre-measure the experiment grid with N worker "
                        "processes (output is identical to a serial run)")
    p.add_argument("--timings", action="store_true",
                   help="also print per-phase pipeline timings")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of the ASCII table")
    p.set_defaults(func=cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; standard
        # CLI etiquette is to exit quietly.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
