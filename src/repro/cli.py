"""Command-line interface.

::

    python -m repro compile FILE [--optimize]         # show the IR
    python -m repro run FILE [--main NAME]            # execute a program
    python -m repro allocate FILE --config 6,4,2,2    # allocate + report
    python -m repro explain FILE --lr NAME            # why did NAME get that?
    python -m repro workloads                         # list the stand-ins
    python -m repro sweep WORKLOAD                    # allocators x sweep
    python -m repro experiment NAME                   # regenerate a figure
    python -m repro fuzz --seeds 200                  # differential fuzzing
    python -m repro chaos --seeds 10                  # fault-injection campaign

Every command takes mini-C source files; see README.md for the
language and the allocator names.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.eval import experiments as exp
from repro.eval.render import render_table
from repro.ir import format_program
from repro.lang import compile_source
from repro.machine import RegisterConfig, mips_sweep, register_file
from repro.profile import run_allocated, run_program
from repro.regalloc import PRESETS

#: The allocator presets, by CLI name (one shared table for the CLI,
#: the sweep drivers, the fuzz harness and the chaos campaigns).
ALLOCATORS = PRESETS

EXPERIMENTS = {
    "figure2": exp.figure2,
    "figure6": exp.figure6,
    "figure7": exp.figure7,
    "figure9": exp.figure9,
    "figure10": exp.figure10,
    "figure11": exp.figure11,
    "table2": exp.table2,
    "table3": exp.table3,
    "table4": exp.table4,
    "ablation-callee-model": exp.ablation_callee_model,
    "ablation-bs-key": exp.ablation_bs_key,
    "ablation-priority-order": exp.ablation_priority_order,
    "ablation-optimized-ir": exp.ablation_optimized_ir,
    "ablation-remat": exp.ablation_rematerialization,
    "ablation-spill-metric": exp.ablation_spill_metric,
    "ablation-ipra": exp.ablation_ipra,
    "static-penalty": exp.static_penalty,
}


def _parse_config(text: str) -> RegisterConfig:
    try:
        parts = [int(p) for p in text.replace("(", "").replace(")", "").split(",")]
        if len(parts) != 4:
            raise ValueError
        return RegisterConfig(*parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"config must be 'Ri,Rf,Ei,Ef' (e.g. 6,4,2,2), got {text!r}"
        ) from None


def _load_program(path: str, optimize: bool = False):
    """Load mini-C (``.mc``/anything else) or textual IR (``.ir``)."""
    source = Path(path).read_text()
    if Path(path).suffix == ".ir":
        from repro.ir import parse_ir, verify_program

        program = parse_ir(source, name=Path(path).stem)
        verify_program(program)
    else:
        program = compile_source(source, name=Path(path).stem)
    if optimize:
        from repro.opt import optimize_program

        optimize_program(program)
    return program


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_compile(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    print(format_program(program))
    return 0


def cmd_run(args) -> int:
    program = _load_program(args.file, optimize=args.optimize)
    result = run_program(program, args.main, fuel=args.fuel)
    if result.return_value is not None:
        print(f"return value: {result.return_value}")
    print(f"instructions executed: {result.instructions_executed}")
    for name, values in sorted(result.globals_state.items()):
        shown = ", ".join(str(v) for v in values[:8])
        suffix = ", ..." if len(values) > 8 else ""
        print(f"@{name} = [{shown}{suffix}]")
    return 0


def _file_request(args) -> "AllocationRequest":
    """Build the engine request for a file-based CLI command."""
    from repro.engine import AllocationRequest

    path = Path(args.file)
    text = path.read_text()
    is_ir = path.suffix == ".ir"
    return AllocationRequest(
        source=None if is_ir else text,
        ir=text if is_ir else None,
        preset=args.allocator,
        config=args.config,
        info=args.info,
        optimize=args.optimize,
        resilient=getattr(args, "resilient", False),
        trace=bool(getattr(args, "trace", False)),
        fuel=args.fuel,
        name=path.stem,
    )


def _configure_store(args) -> None:
    """Enable the artifact store when the command asked for one."""
    store = getattr(args, "store", None)
    if store:
        from repro.store import configure_store

        configure_store(store)


def cmd_allocate(args) -> int:
    from repro.engine import AllocationEngine, RequestError
    from repro.eval.report import dump_json, render_allocation

    _configure_store(args)
    engine = AllocationEngine()
    try:
        result = engine.submit(_file_request(args))
    except RequestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    allocation = result.allocation
    if allocation.resilience is not None:
        if allocation.resilience.degraded and not args.json:
            print(
                f"note: degraded to rung {allocation.resilience.rung!r} "
                f"after {len(allocation.resilience.demotions)} demotion(s)",
                file=sys.stderr,
            )

    report = result.report
    if args.json:
        print(dump_json(report))
    else:
        print(render_allocation(report, show_assignment=args.show_assignment))
    if args.trace:
        from repro.obs import write_events_jsonl

        write_events_jsonl(args.trace, result.trace_events)
        print(
            f"\n{len(result.trace_events)} decision event(s) written to {args.trace}",
            file=sys.stderr,
        )
    if args.dot:
        func_name, _, dot_path = args.dot.partition(":")
        if not dot_path:
            raise SystemExit("--dot expects FUNC:PATH")
        from repro.analysis.frequency import static_weights
        from repro.regalloc import build_interference, to_dot

        fa = allocation.functions[func_name]
        graph, infos = build_interference(
            fa.func, static_weights(fa.func), set()
        )
        Path(dot_path).write_text(
            to_dot(graph, infos, fa.assignment, title=func_name) + "\n"
        )
        print(f"\ninterference graph written to {dot_path}")
    if args.verify:
        from repro.regalloc import AllocationVerificationError, verify_allocation

        try:
            verify_allocation(allocation)
        except AllocationVerificationError as error:
            print(f"\nverification: FAIL [{error.check}] {error}")
            return 1
        print("\nverification: PASS")
        mech = run_allocated(allocation, fuel=args.fuel * 4)
        baseline = run_program(result.source_program, fuel=args.fuel)
        same = mech.globals_state == baseline.globals_state
        print(f"execution check: {'PASS' if same else 'FAIL'}")
        return 0 if same else 1
    return 0


def cmd_explain(args) -> int:
    from repro.obs import ExplainError, explain_live_range

    program = _load_program(args.file, optimize=args.optimize)
    options = ALLOCATORS[args.allocator]()
    rf = register_file(args.config)
    weights_for = None
    if args.info == "dynamic":
        weights_for = run_program(program, fuel=args.fuel).profile.weights
    try:
        explanation = explain_live_range(
            program,
            args.lr,
            rf,
            options,
            func_name=args.func_name,
            weights_for=weights_for,
        )
    except ExplainError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        from repro.schema import stamp

        print(json.dumps(stamp(explanation.as_dict()), indent=2, sort_keys=True))
    else:
        print(explanation.render())
    return 0 if explanation.verified in (True, None) else 1


def cmd_workloads(args) -> int:
    from repro.workloads import get_workload, workload_names

    rows = []
    for name in workload_names():
        workload = get_workload(name)
        rows.append([name, ", ".join(workload.traits), workload.description])
    print(render_table("SPEC92 stand-in workloads", ["name", "traits", "description"], rows))
    return 0


def _render_timings(keys: Sequence, title: str) -> Optional[str]:
    """Aggregate cached pipeline timings for ``keys`` into a table.

    One row per workload (phase seconds, sub-phase splits, iterations,
    analysis-cache traffic) plus a TOTAL row; returns None when
    nothing for ``keys`` is in the measurement cache yet.  Sub-phase
    columns (prefixed ``·``) are nested inside their parent phase —
    liveness and interference inside build, simplify inside order —
    so they do not add to the total.
    """
    from repro.eval.runner import RESULTS
    from repro.regalloc.framework import PHASES, SUB_PHASES, PipelineStats

    per_workload = {}
    counted = set()
    for key in keys:
        if key in counted:
            continue
        counted.add(key)
        measurement = RESULTS.peek(key)
        if measurement is None:
            continue
        workload = key[0]
        stats, runs = per_workload.get(workload, (PipelineStats(), 0))
        per_workload[workload] = (stats + measurement.stats, runs + 1)
    if not per_workload:
        return None

    header = (
        ["workload", "runs"]
        + list(PHASES)
        + [f"·{name}" for name in SUB_PHASES]
        + ["total s", "iters", "cache hit", "cache miss"]
    )
    rows = []
    total, total_runs = PipelineStats(), 0
    for workload in sorted(per_workload):
        stats, runs = per_workload[workload]
        total, total_runs = total + stats, total_runs + runs
        rows.append(
            [workload, str(runs)]
            + [f"{seconds:.4f}" for seconds in stats.phase_seconds().values()]
            + [f"{seconds:.4f}" for seconds in stats.sub_seconds().values()]
            + [
                f"{stats.total_seconds:.4f}",
                str(stats.iterations),
                str(stats.cache_hits),
                str(stats.cache_misses),
            ]
        )
    rows.append(
        ["TOTAL", str(total_runs)]
        + [f"{seconds:.4f}" for seconds in total.phase_seconds().values()]
        + [f"{seconds:.4f}" for seconds in total.sub_seconds().values()]
        + [
            f"{total.total_seconds:.4f}",
            str(total.iterations),
            str(total.cache_hits),
            str(total.cache_misses),
        ]
    )
    lookups = total.cache_hits + total.cache_misses
    rate = 100.0 * total.cache_hits / lookups if lookups else 0.0
    from repro.obs import METRICS

    METRICS.set_gauge("analysis_cache.hit_rate", rate)
    summary = (
        f"analysis cache: {total.cache_hits} hit(s) / "
        f"{total.cache_misses} miss(es) ({rate:.1f}% hit rate)"
    )
    return render_table(title, header, rows) + "\n" + summary


def cmd_sweep(args) -> int:
    from repro.engine import AllocationEngine
    from repro.eval.report import dump_json, render_sweep
    from repro.eval.runner import RESULTS

    _configure_store(args)
    configs = mips_sweep()
    if args.short:
        configs = configs[:6]
    names = args.allocators or list(ALLOCATORS)
    # The engine sweeps through run_grid: it owns the fault handling,
    # so one bad grid point shows up as an ERR cell, not a traceback.
    engine = AllocationEngine()
    report, grid, keys = engine.sweep(
        args.workload,
        names,
        configs,
        info=args.info,
        jobs=args.jobs,
        verify=args.verify,
        timeout=args.timeout,
        trace=bool(args.trace),
        resilient=args.resilient,
    )
    if args.json:
        print(dump_json(report))
    else:
        print(render_sweep(report))
        for record in grid.failed:
            print(f"FAILED {record.describe()}", file=sys.stderr)
    if args.trace:
        from repro.obs import write_chrome_trace

        spans = []
        for key in keys:
            measurement = RESULTS.peek(key)
            if measurement is not None:
                spans.extend(measurement.spans)
        write_chrome_trace(args.trace, spans)
        pids = {span.pid for span in spans}
        print(
            f"chrome trace: {len(spans)} span(s) from {len(pids)} "
            f"process(es) written to {args.trace}",
            file=sys.stderr,
        )
    if args.timings:
        timings = _render_timings(
            keys, f"Pipeline phase timings for {args.workload!r}"
        )
        if timings:
            print()
            print(timings)
    return 0 if grid.ok else 1


def cmd_experiment(args) -> int:
    from repro.engine import AllocationEngine
    from repro.eval import experiment_grid
    from repro.schema import stamp

    _configure_store(args)
    engine = AllocationEngine()
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        driver = EXPERIMENTS[name]
        keys = experiment_grid(driver)
        if keys and (
            args.verify or args.resilient or (args.jobs and args.jobs > 1)
        ):
            # With --resilient the pre-computation pass warms the cache
            # through the fallback chain, so the driver's own measure()
            # calls hit the cache and inherit the degraded-but-clean
            # numbers instead of raising.
            grid = engine.run_keys(
                keys,
                jobs=args.jobs,
                verify=args.verify,
                resilient=args.resilient,
            )
            # Experiments need the full grid to render; surface what
            # failed before the driver recomputes it (and raises).
            for record in grid.failed:
                print(f"FAILED {record.describe()}", file=sys.stderr)
        result = driver()
        text = (
            json.dumps(stamp(result.as_dict()), indent=2)
            if args.json
            else result.render()
        )
        print(text)
        print()
        if args.timings:
            timings = _render_timings(keys, f"Pipeline phase timings for {name}")
            if timings:
                print(timings)
                print()
            else:
                print(f"(no per-phase timings recorded for {name})")
                print()
        if args.out:
            suffix = "json" if args.json else "txt"
            target = Path(args.out)
            if len(names) > 1:
                target.mkdir(parents=True, exist_ok=True)
                (target / f"{name.replace('-', '_')}.{suffix}").write_text(
                    text + "\n"
                )
            else:
                target.write_text(text + "\n")
    if args.out:
        print(f"written to {args.out}", file=sys.stderr)
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import (
        quarantine,
        reduce_failure,
        replay_corpus,
        run_fuzz,
    )

    corpus_dir = Path(args.corpus)

    if args.replay:
        results = replay_corpus(corpus_dir)
        regressions = {
            path: fails for path, fails in results.items() if fails
        }
        if args.json:
            from repro.schema import stamp

            print(
                json.dumps(
                    stamp(
                        {
                            "cases": len(results),
                            "regressions": {
                                path: [f.describe() for f in fails]
                                for path, fails in regressions.items()
                            },
                        }
                    ),
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(f"replayed {len(results)} corpus case(s)")
            for path in sorted(regressions):
                for failure in regressions[path]:
                    print(f"REGRESSION {path}: {failure.describe()}")
            if results and not regressions:
                print("every quarantined bug stays fixed")
        return 1 if regressions else 0

    seeds = list(range(args.start_seed, args.start_seed + args.seeds))

    def progress(done: int, total: int) -> None:
        print(f"fuzz: {done}/{total} seeds", file=sys.stderr, flush=True)

    report = run_fuzz(
        seeds,
        jobs=args.jobs,
        time_budget=args.time_budget,
        progress=progress if not args.json else None,
        chaos=args.chaos,
    )

    written = []
    for failure in report.failures:
        if not args.no_reduce:
            failure = reduce_failure(failure)
        written.append(str(quarantine(failure, corpus_dir)))

    if args.json:
        from repro.schema import stamp

        print(
            json.dumps(
                stamp(
                    {
                        "seeds_run": report.seeds_run,
                        "checked": report.checked,
                        "skipped": report.skipped,
                        "elapsed": round(report.elapsed, 2),
                        "budget_exhausted": report.budget_exhausted,
                        "failures": [f.describe() for f in report.failures],
                        "quarantined": written,
                    }
                ),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        budget = " (time budget exhausted)" if report.budget_exhausted else ""
        print(
            f"fuzzed {report.seeds_run} seed(s): {report.checked} allocation "
            f"check(s), {report.skipped} skipped, "
            f"{len(report.failures)} failure(s) in {report.elapsed:.1f}s{budget}"
        )
        for failure in report.failures:
            print(f"FAILURE {failure.describe()}")
        for path in written:
            print(f"quarantined reproducer: {path}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from repro.chaos import record_campaign, run_campaign
    from repro.obs import METRICS

    seeds = range(args.start_seed, args.start_seed + args.seeds)
    presets = args.allocators or sorted(ALLOCATORS)
    report = run_campaign(
        args.workloads,
        presets=presets,
        seeds=seeds,
        faults_per_seed=args.faults,
        config=args.config,
    )
    record_campaign(report)
    from repro.schema import stamp

    data = stamp(report.as_dict())
    data["metrics"] = {
        name: value
        for name, value in METRICS.as_dict()["counters"].items()
        if name.startswith(("chaos.", "resilience."))
    }
    if args.out:
        Path(args.out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"campaign report written to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(
            f"chaos campaign: {len(report.runs)} run(s), "
            f"{report.total_injections} fault(s) fired, "
            f"{report.degraded_runs} degraded, "
            f"{len(report.unclean)} unclean, "
            f"{len(report.unattributed)} unattributed"
        )
        for run in report.unclean:
            print(
                f"UNCLEAN {run.workload}:{run.preset}:seed={run.seed}: "
                f"{run.error}"
            )
        for run in report.unattributed:
            print(f"UNATTRIBUTED {run.workload}:{run.preset}:seed={run.seed}")
        if report.all_clean:
            print("every run ended with a verifier-clean allocation")
    if not report.all_clean:
        return 1
    if report.total_injections < args.min_injections:
        print(
            f"campaign too quiet: {report.total_injections} fault(s) fired "
            f"but --min-injections={args.min_injections}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_campaign(args) -> int:
    """Run, resume, or report on a declared experiment campaign."""
    from repro.campaign import (
        CampaignError,
        SpecError,
        load_spec,
        publish_report,
        report_from_directory,
        run_campaign,
    )

    try:
        spec = load_spec(args.spec)
    except SpecError as error:
        print(f"bad campaign spec: {error}", file=sys.stderr)
        return 2

    try:
        if args.campaign_command == "run":
            progress = None if args.quiet else (
                lambda message: print(message, file=sys.stderr)
            )
            report = run_campaign(spec, args.out, progress=progress)
        else:
            report = report_from_directory(spec, args.out)
            if args.campaign_command == "report":
                publish_report(report, Path(args.out))
    except CampaignError as error:
        print(f"campaign error: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        counts = report.counts()
        tally = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
        state = "checkpointed" if report.interrupted else (
            "complete" if report.complete else "partial"
        )
        print(
            f"campaign {report.name}: {state} — {tally} "
            f"(of {len(report.outcomes)}); {report.runs} run(s), "
            f"{report.dead_runs} dead, {report.corrupt_records} corrupt "
            f"journal record(s); digest {report.digest}"
        )
        for outcome in report.outcomes:
            if outcome.status in ("failed", "quarantined"):
                print(f"{outcome.status.upper()} {outcome.label}: {outcome.error}")
    if args.campaign_command in ("run", "report"):
        print(f"report: {Path(args.out) / 'report.html'}", file=sys.stderr)
    if args.campaign_command == "run" and report.interrupted:
        return 3  # checkpointed, not failed: rerun the same command to resume
    failed = any(
        outcome.status in ("failed", "quarantined")
        for outcome in report.outcomes
    )
    return 1 if failed else 0


def cmd_cache(args) -> int:
    """Inspect and maintain the persistent artifact store."""
    import os

    from repro.schema import stamp
    from repro.store import ENV_VAR, ArtifactStore

    root = args.store or os.environ.get(ENV_VAR)
    if not root:
        print(
            f"error: no store directory (pass --store or set {ENV_VAR})",
            file=sys.stderr,
        )
        return 1
    store = ArtifactStore(root)
    if args.cache_command == "stats":
        print(json.dumps(stamp(store.stats()), indent=2, sort_keys=True))
        return 0
    if args.cache_command == "clear":
        result = store.clear()
        print(
            f"cleared {result['removed']} artifact(s), "
            f"{result['bytes_freed']} bytes freed"
        )
        return 0
    if args.cache_command == "gc":
        result = store.gc(args.max_bytes)
        print(
            f"evicted {result['removed']} artifact(s) "
            f"({result['bytes_freed']} bytes freed, "
            f"{result['bytes_remaining']} bytes remain, "
            f"bound {args.max_bytes})"
        )
        return 0
    print(f"error: unknown cache command {args.cache_command!r}", file=sys.stderr)
    return 1


def cmd_serve(args) -> int:
    from repro.serve import ServerConfig, serve_forever

    _configure_store(args)
    store_warm: tuple = ()
    if args.store and args.store_warm:
        if args.store_warm == "all":
            from repro.workloads import workload_names

            store_warm = tuple(workload_names())
        else:
            store_warm = tuple(
                name for name in args.store_warm.split(",") if name
            )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        workers=args.workers,
        batch_size=args.batch_size,
        default_deadline_ms=args.deadline_ms,
        resilient=not args.no_resilient,
        cache_size=args.cache_size,
        supervised=not args.no_supervised,
        max_body_bytes=args.max_body_bytes,
        batch_workers=args.batch_workers,
        watchdog_seconds=args.watchdog_ms / 1000.0,
        worker_retries=args.retries,
        recycle_after=args.recycle_after,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        telemetry=not args.no_telemetry,
        access_log=args.access_log,
        slo_availability=args.slo_availability,
        slo_p50_ms=args.slo_p50_ms,
        slo_p99_ms=args.slo_p99_ms,
        flight_recent=args.flight_recent,
        flight_slowest=args.flight_slowest,
        store_dir=args.store,
        store_warm=store_warm,
    )
    return serve_forever(config)


def cmd_loadgen(args) -> int:
    from repro.serve import LoadgenConfig, ServerConfig, run_loadgen

    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        requests=args.requests,
        concurrency=args.concurrency,
        preset=args.preset,
        deadline_ms=args.deadline_ms,
        chaos=args.chaos,
        jitter_seed=args.jitter_seed,
        check_traces=args.check_traces,
        warmup=args.warmup,
    )
    server_config = None
    if args.spawn:
        server_config = ServerConfig(
            port=0,
            queue_size=args.queue_size,
            workers=args.workers,
            batch_size=args.batch_size,
        )
    report = run_loadgen(config, spawn=args.spawn, server_config=server_config)
    data = report.as_dict()
    text = json.dumps(data, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"loadgen report written to {args.out}", file=sys.stderr)
    if args.json or not args.out:
        print(text)
    else:
        print(
            f"loadgen: {report.ok}/{report.requests} ok, "
            f"{report.failed} failed, {report.throttled_retries} throttled "
            f"retries, {report.cache_hits} cache hits, "
            f"{report.degraded} degraded, "
            f"{data['retry_sleep_seconds']:.1f}s retry sleep, "
            f"p50={data['p50_ms']:.1f}ms p99={data['p99_ms']:.1f}ms "
            f"({data['requests_per_sec']:.1f} req/s)"
        )
        if report.traced:
            queue_wait = data["queue_wait_ms"]
            service = data["service_time_ms"]
            print(
                f"telemetry: {report.traced} traced, queue-wait "
                f"p50={queue_wait['p50']:.1f}ms p99={queue_wait['p99']:.1f}ms, "
                f"service p50={service['p50']:.1f}ms "
                f"p99={service['p99']:.1f}ms"
            )
        if report.trace_checked:
            print(
                f"flight recorder: {report.trace_resolved}/"
                f"{report.trace_checked} trace IDs resolved"
            )
    if args.check_traces and report.trace_resolved != report.trace_checked:
        print(
            f"FAILED: {report.trace_checked - report.trace_resolved} trace "
            "ID(s) did not resolve in the flight recorder",
            file=sys.stderr,
        )
        return 1
    return 0 if report.failed == 0 else 1


def cmd_chaos_serve(args) -> int:
    from repro.chaos import record_serve_campaign, run_serve_campaign

    report = run_serve_campaign(
        seed=args.seed,
        faults=args.faults,
        requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
        watchdog_seconds=args.watchdog_ms / 1000.0,
        retries=args.retries,
    )
    record_serve_campaign(report)
    data = report.as_dict()
    if args.out:
        Path(args.out).write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        print(f"chaos-serve report written to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        counters = report.supervisor["counters"]
        print(
            f"chaos-serve: {report.loadgen['ok']}/"
            f"{report.loadgen['requests']} client requests ok, "
            f"{report.loadgen['failed']} failed, "
            f"{report.faults_fired}/{report.faults_planned} faults fired "
            f"({', '.join(f'{k}={v}' for k, v in sorted(report.plan['by_action'].items()))}), "
            f"{counters.get('supervisor.kills', 0)} workers killed, "
            f"{counters.get('supervisor.retries', 0)} retries, "
            f"{len(report.supervisor['degraded'])} degraded "
            f"(attributed={report.degraded_attributed}, "
            f"traceable={report.degraded_traceable}), "
            f"{len(report.leaked_pids)} leaked workers"
        )
        if report.all_clean:
            print(
                "no client request was lost while workers were being killed"
            )
    if not report.all_clean:
        if report.loadgen["failed"]:
            print(
                f"FAILED: {report.loadgen['failed']} client request(s) lost",
                file=sys.stderr,
            )
        if report.faults_fired != report.faults_planned:
            print(
                f"FAILED: only {report.faults_fired} of "
                f"{report.faults_planned} planned faults fired",
                file=sys.stderr,
            )
        if not report.degraded_attributed:
            print("FAILED: unattributed degraded response", file=sys.stderr)
        if not report.degraded_traceable:
            print(
                "FAILED: degraded response trace ID(s) not resolvable in "
                f"the flight recorder: {report.degraded_untraceable}",
                file=sys.stderr,
            )
        if report.leaked_pids:
            print(
                f"FAILED: leaked worker pids {report.leaked_pids}",
                file=sys.stderr,
            )
        return 1
    if report.faults_fired < args.min_faults:
        print(
            f"campaign too quiet: {report.faults_fired} fault(s) fired "
            f"but --min-faults={args.min_faults}",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Call-cost directed register allocation (PLDI 1997) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile mini-C and print the IR")
    p.add_argument("file")
    p.add_argument("--optimize", action="store_true", help="run the optimizer")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute a mini-C program")
    p.add_argument("file")
    p.add_argument("--main", default="main", help="entry function")
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("allocate", help="allocate registers and report overhead")
    p.add_argument("file")
    p.add_argument("--config", type=_parse_config, default=RegisterConfig(6, 4, 2, 2))
    p.add_argument("--allocator", choices=sorted(ALLOCATORS), default="improved")
    p.add_argument("--info", choices=["static", "dynamic"], default="dynamic")
    p.add_argument("--show-assignment", action="store_true")
    p.add_argument("--verify", action="store_true",
                   help="re-execute the allocated code and compare")
    p.add_argument("--dot",
                   help="write the annotated interference graph of a "
                        "function to this DOT file (FUNC:PATH)")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.add_argument("--json", action="store_true",
                   help="emit the allocation report as JSON")
    p.add_argument("--trace",
                   help="write the structured decision-event trace "
                        "(JSONL) to this file")
    p.add_argument("--store", default=None,
                   help="artifact store directory: reuse compiled "
                        "programs/profiles across runs")
    p.add_argument("--resilient", action="store_true",
                   help="allocate through the fallback chain: a failing "
                        "allocator degrades (ultimately to "
                        "spill-everywhere) instead of erroring")
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser(
        "explain",
        help="replay one allocation with tracing and explain why a "
             "live range got its register, slot or spill",
    )
    p.add_argument("file")
    p.add_argument("--lr", required=True,
                   help="live range to explain: source name ('count'), "
                        "full repr ('%%i2:count') or bare id ('%%i2')")
    p.add_argument("--func", dest="func_name",
                   help="restrict the search to one function")
    p.add_argument("--config", type=_parse_config,
                   default=RegisterConfig(6, 4, 2, 2))
    p.add_argument("--allocator", choices=sorted(ALLOCATORS),
                   default="improved")
    p.add_argument("--info", choices=["static", "dynamic"], default="static",
                   help="weights the allocator sees (dynamic executes "
                        "the program first)")
    p.add_argument("--optimize", action="store_true")
    p.add_argument("--fuel", type=int, default=50_000_000)
    p.add_argument("--json", action="store_true",
                   help="emit the explanation as JSON")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("workloads", help="list the SPEC92 stand-ins")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("sweep", help="compare allocators over the register sweep")
    p.add_argument("workload")
    p.add_argument("--allocators", nargs="*", choices=sorted(ALLOCATORS))
    p.add_argument("--info", choices=["static", "dynamic"], default="dynamic")
    p.add_argument("--short", action="store_true", help="first 6 configs only")
    p.add_argument("--jobs", type=int, default=1,
                   help="measure the grid with N worker processes")
    p.add_argument("--verify", action="store_true",
                   help="run every allocation through the independent "
                        "verifier before reporting on it")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-chunk timeout in seconds for parallel runs")
    p.add_argument("--timings", action="store_true",
                   help="also print per-phase pipeline timings")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of the ASCII table")
    p.add_argument("--trace",
                   help="collect per-phase spans across workers and "
                        "write a Chrome trace-event file (load it in "
                        "chrome://tracing or Perfetto)")
    p.add_argument("--store", default=None,
                   help="artifact store directory: reuse compiled "
                        "programs/profiles across runs")
    p.add_argument("--resilient", action="store_true",
                   help="measure every grid point through the fallback "
                        "chain; recovered points render as deg[<rung>] "
                        "cells instead of ERR")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("experiment", help="regenerate a table or figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    p.add_argument(
        "--out",
        help="write the rendering to a file (a directory when name=all)",
    )
    p.add_argument("--jobs", type=int, default=1,
                   help="pre-measure the experiment grid with N worker "
                        "processes (output is identical to a serial run)")
    p.add_argument("--verify", action="store_true",
                   help="run every allocation of the experiment grid "
                        "through the independent verifier")
    p.add_argument("--timings", action="store_true",
                   help="also print per-phase pipeline timings")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of the ASCII table")
    p.add_argument("--store", default=None,
                   help="artifact store directory: reuse compiled "
                        "programs/profiles across runs")
    p.add_argument("--resilient", action="store_true",
                   help="pre-measure the experiment grid through the "
                        "fallback chain so a failing grid point "
                        "degrades instead of sinking the experiment")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs through every "
             "allocator, verified and executed against the source "
             "interpreter",
    )
    p.add_argument("--seeds", type=int, default=100,
                   help="number of random programs to check")
    p.add_argument("--start-seed", type=int, default=0,
                   help="first seed of the range")
    p.add_argument("--jobs", type=int, default=1,
                   help="fuzz with N worker processes")
    p.add_argument("--time-budget", type=float, default=None,
                   help="stop after this many seconds (remaining seeds "
                        "are abandoned, not failed)")
    p.add_argument("--corpus", default="tests/fuzz_corpus",
                   help="quarantine directory for minimized reproducers")
    p.add_argument("--no-reduce", action="store_true",
                   help="quarantine failures without minimizing them")
    p.add_argument("--replay", action="store_true",
                   help="re-run every quarantined corpus case instead "
                        "of fuzzing")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of text")
    p.add_argument("--chaos", action="store_true",
                   help="also run each seed's program through the "
                        "fallback chain with seeded fault injection")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign: inject faults and "
             "corruptions into resilient allocations and assert every "
             "run ends verifier-clean",
    )
    p.add_argument("--workloads", nargs="+",
                   default=["li", "compress", "eqntott"],
                   help="workloads to campaign over")
    p.add_argument("--allocators", nargs="*", choices=sorted(ALLOCATORS),
                   help="presets to campaign over (default: all)")
    p.add_argument("--seeds", type=int, default=10,
                   help="seeds per (workload, preset) pair")
    p.add_argument("--start-seed", type=int, default=0,
                   help="first seed of the range")
    p.add_argument("--faults", type=int, default=2,
                   help="planned faults per seed")
    p.add_argument("--config", type=_parse_config,
                   default=RegisterConfig(17, 10, 9, 6),
                   help="register configuration for the campaign")
    p.add_argument("--min-injections", type=int, default=0,
                   help="fail unless at least this many faults fired "
                        "(guards CI against a silently quiet campaign)")
    p.add_argument("--out",
                   help="also write the campaign report JSON to this file")
    p.add_argument("--json", action="store_true",
                   help="emit the campaign report as JSON")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="serve allocations over HTTP/JSON: POST mini-C or IR to "
             "/allocate, batched through one shared engine with "
             "bounded-queue backpressure and per-request deadlines",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377)
    p.add_argument("--queue-size", type=int, default=64,
                   help="bounded admission queue; a full queue answers "
                        "429 with Retry-After instead of accepting work")
    p.add_argument("--workers", type=int, default=2,
                   help="engine worker threads")
    p.add_argument("--batch-size", type=int, default=8,
                   help="max requests drained per dispatch round and "
                        "handed to the engine as one batch")
    p.add_argument("--deadline-ms", type=float, default=10_000.0,
                   help="default per-request allocation deadline "
                        "(requests may override with deadline_ms)")
    p.add_argument("--cache-size", type=int, default=256,
                   help="content-addressed result cache entries")
    p.add_argument("--no-resilient", action="store_true",
                   help="serve without the fallback chain (failing "
                        "allocations answer 500 instead of degrading)")
    p.add_argument("--no-supervised", action="store_true",
                   help="run engine work in-process on a thread pool "
                        "instead of supervised worker subprocesses")
    p.add_argument("--max-body-bytes", type=int, default=1024 * 1024,
                   help="largest accepted request body; beyond it the "
                        "server answers 413")
    p.add_argument("--batch-workers", type=int, default=1,
                   help="worker processes reserved for the /batch "
                        "bulkhead (supervised mode)")
    p.add_argument("--watchdog-ms", type=float, default=30_000.0,
                   help="hard per-request wall clock for requests with "
                        "no deadline of their own; workers past it are "
                        "SIGKILLed (supervised mode)")
    p.add_argument("--retries", type=int, default=2,
                   help="re-runs on a fresh worker after worker death "
                        "before degrading (supervised mode)")
    p.add_argument("--recycle-after", type=int, default=200,
                   help="gracefully retire a worker after this many "
                        "jobs (supervised mode)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive worker-fatal failures per preset "
                        "before its circuit opens (supervised mode)")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   help="seconds an open circuit waits before admitting "
                        "a half-open probe (supervised mode)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="serve without request telemetry: no trace IDs, "
                        "no flight recorder, no SLO accounting")
    p.add_argument("--access-log",
                   help="append one JSONL record per request here "
                        "(size-rotated; off by default)")
    p.add_argument("--slo-availability", type=float, default=0.999,
                   help="availability target the SLO tracker scores "
                        "against")
    p.add_argument("--slo-p50-ms", type=float, default=50.0,
                   help="p50 latency target (ms)")
    p.add_argument("--slo-p99-ms", type=float, default=500.0,
                   help="p99 latency target (ms)")
    p.add_argument("--flight-recent", type=int, default=256,
                   help="flight recorder: recent-request ring size")
    p.add_argument("--flight-slowest", type=int, default=32,
                   help="flight recorder: slowest-request entries kept")
    p.add_argument("--store", default=None,
                   help="artifact store directory shared by all workers; "
                        "respawned workers warm-start from it")
    p.add_argument("--store-warm", default=None,
                   help="workloads to pre-warm on worker spawn: 'all' or "
                        "a comma-separated list of workload names")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="fire concurrent allocation requests at a repro serve "
             "instance and report latency percentiles and throughput",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377)
    p.add_argument("--requests", type=int, default=200,
                   help="total requests to send")
    p.add_argument("--concurrency", type=int, default=8,
                   help="concurrent client workers")
    p.add_argument("--preset", choices=sorted(ALLOCATORS), default="improved")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request allocation deadline to send")
    p.add_argument("--spawn", action="store_true",
                   help="boot an in-process server on an ephemeral port "
                        "first (one-command benchmark)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="spawned server's queue size (with --spawn)")
    p.add_argument("--workers", type=int, default=2,
                   help="spawned server's worker threads (with --spawn)")
    p.add_argument("--batch-size", type=int, default=8,
                   help="spawned server's batch size (with --spawn)")
    p.add_argument("--chaos", action="store_true",
                   help="chaos-survival mode: retry 503s that carry "
                        "Retry-After (open breakers, supervisor "
                        "recovery) instead of failing on them")
    p.add_argument("--jitter-seed", type=int, default=None,
                   help="seed for the full-jitter retry RNG "
                        "(deterministic backoff for CI)")
    p.add_argument("--warmup", type=int, default=0,
                   help="send this many untimed warmup requests before "
                        "the measured run (caches and workers settle)")
    p.add_argument("--check-traces", action="store_true",
                   help="after the run, resolve every response's trace "
                        "ID against the server's flight recorder and "
                        "fail unless all resolve (CI telemetry gate)")
    p.add_argument("--out",
                   help="write the latency/throughput report JSON here")
    p.add_argument("--json", action="store_true",
                   help="print the report JSON even with --out")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "chaos-serve",
        help="service-level chaos campaign: boot a supervised server, "
             "kill/hang/corrupt its worker subprocesses under live "
             "loadgen traffic, and assert zero failed client requests",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the service fault plan and the "
                        "loadgen jitter")
    p.add_argument("--faults", type=int, default=50,
                   help="service faults to arm (kill/hang/latency/"
                        "garbage, sampled by seed)")
    p.add_argument("--requests", type=int, default=200,
                   help="client requests to drive through the chaos")
    p.add_argument("--concurrency", type=int, default=8,
                   help="concurrent loadgen workers")
    p.add_argument("--workers", type=int, default=2,
                   help="interactive worker subprocesses")
    p.add_argument("--watchdog-ms", type=float, default=1000.0,
                   help="hard per-request wall clock; hang faults are "
                        "cut at this bound")
    p.add_argument("--retries", type=int, default=3,
                   help="re-runs on a fresh worker before degrading")
    p.add_argument("--min-faults", type=int, default=0,
                   help="fail unless at least this many faults fired "
                        "(guards CI against a silently quiet campaign)")
    p.add_argument("--out",
                   help="write the campaign report JSON here")
    p.add_argument("--json", action="store_true",
                   help="emit the campaign report as JSON")
    p.set_defaults(func=cmd_chaos_serve)

    p = sub.add_parser(
        "campaign",
        help="run, resume or report a TOML-declared experiment campaign",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(cp):
        cp.add_argument("spec", help="campaign spec (TOML)")
        cp.add_argument("--out", required=True,
                        help="campaign directory: journal, report.json, "
                             "report.html (rerun with the same directory "
                             "to resume)")
        cp.add_argument("--json", action="store_true",
                        help="emit the campaign report as JSON")

    cp = campaign_sub.add_parser(
        "run",
        help="run the campaign, resuming from the journal when one exists",
    )
    _campaign_common(cp)
    cp.add_argument("-q", "--quiet", action="store_true",
                    help="suppress progress lines on stderr")
    cp.set_defaults(func=cmd_campaign, campaign_command="run")
    cp = campaign_sub.add_parser(
        "report",
        help="rebuild report.json and report.html from the journal alone",
    )
    _campaign_common(cp)
    cp.set_defaults(func=cmd_campaign, campaign_command="report")
    cp = campaign_sub.add_parser(
        "status",
        help="summarize the journal without writing anything",
    )
    _campaign_common(cp)
    cp.set_defaults(func=cmd_campaign, campaign_command="status")

    p = sub.add_parser(
        "cache",
        help="inspect or maintain the persistent artifact store",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cp = cache_sub.add_parser("stats", help="print store statistics as JSON")
    cp.add_argument("--store", default=None,
                    help="store directory (defaults to $REPRO_STORE_DIR)")
    cp.set_defaults(func=cmd_cache, cache_command="stats")
    cp = cache_sub.add_parser("clear", help="remove every stored artifact")
    cp.add_argument("--store", default=None,
                    help="store directory (defaults to $REPRO_STORE_DIR)")
    cp.set_defaults(func=cmd_cache, cache_command="clear")
    cp = cache_sub.add_parser(
        "gc", help="evict oldest-read artifacts down to a byte budget"
    )
    cp.add_argument("--store", default=None,
                    help="store directory (defaults to $REPRO_STORE_DIR)")
    cp.add_argument("--max-bytes", type=int, required=True,
                    help="evict least-recently-read artifacts until the "
                         "store fits in this many bytes")
    cp.set_defaults(func=cmd_cache, cache_command="gc")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; standard
        # CLI etiquette is to exit quietly.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
