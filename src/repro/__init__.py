"""repro — Call-Cost Directed Register Allocation (Lueh & Gross, PLDI 1997).

A complete reproduction of the paper's system: a mini-C compiler
substrate, a Chaitin-style register-allocation framework with the
paper's three enhancements (storage-class analysis, benefit-driven
simplification, preference decision), the comparison allocators
(optimistic, priority-based, CBH), 14 synthetic SPEC92 stand-ins, and
experiment drivers for every table and figure of the evaluation.

Start with :mod:`repro.core` for the public API, or run
``python examples/quickstart.py``.
"""

__version__ = "0.1.0"

from repro.core import (
    AllocationOutcome,
    AllocatorOptions,
    Overhead,
    RegisterConfig,
    allocate,
    compile_source,
)

__all__ = [
    "AllocationOutcome",
    "AllocatorOptions",
    "Overhead",
    "RegisterConfig",
    "allocate",
    "compile_source",
    "__version__",
]
