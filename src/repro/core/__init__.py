"""The public API of the reproduction.

Typical use::

    from repro.core import compile_source, allocate, AllocatorOptions

    program = compile_source(source_text)
    result = allocate(program, config=(8, 6, 2, 2),
                      options=AllocatorOptions.improved_chaitin())
    print(result.overhead)

``allocate`` compiles the call-cost directed register allocator's
whole pipeline: profile the program, clone it, allocate every
function, and evaluate the overhead against the profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.analysis.frequency import static_weights
from repro.eval.overhead import Overhead, program_overhead
from repro.ir.function import Program
from repro.lang.lower import compile_source
from repro.machine.registers import RegisterConfig, RegisterFile
from repro.profile.interp import run_program
from repro.profile.profile import Profile
from repro.regalloc.framework import ProgramAllocation, allocate_program
from repro.regalloc.options import AllocatorOptions

ConfigLike = Union[RegisterConfig, Sequence[int]]


@dataclass
class AllocationOutcome:
    """Everything :func:`allocate` produces for one program."""

    allocation: ProgramAllocation
    profile: Profile
    overhead: Overhead

    @property
    def program(self) -> Program:
        """The allocated (rewritten) program."""
        return self.allocation.program


def _as_config(config: ConfigLike) -> RegisterConfig:
    if isinstance(config, RegisterConfig):
        return config
    return RegisterConfig(*config)


def allocate(
    program: Program,
    config: ConfigLike,
    options: Optional[AllocatorOptions] = None,
    info: str = "dynamic",
    profile: Optional[Profile] = None,
) -> AllocationOutcome:
    """Allocate registers for ``program`` and evaluate the overhead.

    ``info`` selects the frequency information the allocator uses:
    ``"dynamic"`` runs the program once to gather an exact profile
    (or uses the one supplied), ``"static"`` uses loop-depth
    estimates.  The overhead is always evaluated against the profile.
    """
    if options is None:
        options = AllocatorOptions.improved_chaitin()
    if profile is None:
        profile = run_program(program).profile
    if info == "dynamic":
        weights_for = profile.weights
    elif info == "static":
        weights_for = static_weights
    else:
        raise ValueError(f"info must be 'static' or 'dynamic', got {info!r}")
    allocation = allocate_program(
        program, RegisterFile(_as_config(config)), options, weights_for
    )
    return AllocationOutcome(
        allocation=allocation,
        profile=profile,
        overhead=program_overhead(allocation, profile),
    )


__all__ = [
    "AllocationOutcome",
    "AllocatorOptions",
    "Overhead",
    "RegisterConfig",
    "allocate",
    "compile_source",
]
