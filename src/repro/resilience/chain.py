"""The fallback chain: allocation that always comes back with a result.

``resilient_allocate_program`` walks a ladder of allocator
configurations — the requested preset first, then progressively
degraded variants, ending at the spill-everywhere allocator — and
returns the first rung whose result the independent verifier
(:mod:`repro.regalloc.verify`) accepts.  Every failed rung is recorded
as a :class:`DemotionRecord` (which exception or verifier error killed
it, plus any partial pipeline stats the error carried), and the whole
story ships as a :class:`ResilienceReport` attached to the returned
allocation.

The ladder (rungs are deduplicated, so e.g. asking for ``base``
collapses the middle rungs):

1. ``primary`` — the requested options, untouched.
2. ``no-coalesce`` — the same options with coalescing off (coalescing
   rewrites instructions, so it is the first decision layer to shed).
3. ``degraded`` — plain Chaitin ordering: preference decisions,
   benefit-driven simplification, optimistic coloring,
   rematerialization and CBH/priority ordering all disabled; if
   storage-class analysis was requested it is kept but demoted to the
   ``first``-user callee-cost model (no deferred shared-model
   finalization).
4. ``plain`` — base Chaitin with no enhancements at all.
5. ``spillall`` — the last resort
   (:mod:`repro.regalloc.spillall`): every live range to memory,
   correct by construction.

Two guarantees make the chain total:

* The **final rung is sacrosanct** — it runs without the caller's
  :class:`~repro.regalloc.budget.AllocationBudget` and without any
  chaos ``injector``/``corrupt`` sabotage, so nothing the harness (or
  a tight deadline) does can knock out the rung whose job is to
  always succeed.
* Every rung's result is **verified before acceptance** — a rung that
  silently produced a wrong allocation (e.g. under chaos color
  corruption) is demoted exactly like one that raised.

Workers never touch the process-global metrics registry; parent-side
callers feed accepted reports to :func:`record_resilience`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer

from repro.regalloc.budget import AllocationBudget, BudgetExceeded
from repro.regalloc.errors import (
    AllocationError,
    AllocationVerificationError,
    ConvergenceError,
)
from repro.regalloc.framework import ProgramAllocation, allocate_program
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.verify import verify_allocation


@dataclass(frozen=True)
class Rung:
    """One configuration on the fallback ladder."""

    name: str
    options: AllocatorOptions


@dataclass(frozen=True)
class DemotionRecord:
    """Why one rung was rejected and the chain moved down."""

    rung: str
    #: Exception class name (``CallerSaveError``, ``BudgetExceeded``,
    #: ``ConvergenceError``, ``ZeroDivisionError``...).
    error_type: str
    error: str
    #: The verifier ``check`` name when the rung was rejected by the
    #: independent verifier, None when it raised before finishing.
    check: Optional[str] = None
    #: Structured detail (``as_dict()``) for errors that carry one.
    detail: Optional[dict] = None
    #: Partial per-phase timings when the error carried its stats.
    stats: Optional[dict] = None

    @staticmethod
    def from_exception(rung: str, exc: BaseException) -> "DemotionRecord":
        check = exc.check if isinstance(exc, AllocationVerificationError) else None
        detail = exc.as_dict() if hasattr(exc, "as_dict") else None
        stats = None
        carried = getattr(exc, "stats", None)
        if carried is not None and hasattr(carried, "phase_seconds"):
            stats = {
                **carried.phase_seconds(),
                "iterations": carried.iterations,
            }
        return DemotionRecord(
            rung=rung,
            error_type=type(exc).__name__,
            error=str(exc),
            check=check,
            detail=detail,
            stats=stats,
        )

    def as_dict(self) -> dict:
        return {
            "rung": self.rung,
            "error_type": self.error_type,
            "error": self.error,
            "check": self.check,
            "detail": self.detail,
            "stats": self.stats,
        }


@dataclass(frozen=True)
class ResilienceReport:
    """How one resilient allocation run played out (picklable)."""

    #: Label of the options the caller asked for.
    requested: str
    #: Name of the rung that produced the accepted allocation.
    rung: str
    #: Its position on the ladder (0 = the primary preset).
    rung_index: int
    #: Label of the options the winning rung actually used.
    options: str
    #: Rungs tried, including the winner.
    attempts: int
    demotions: Tuple[DemotionRecord, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when anything other than the primary rung won."""
        return self.rung_index > 0

    def as_dict(self) -> dict:
        return {
            "requested": self.requested,
            "rung": self.rung,
            "rung_index": self.rung_index,
            "options": self.options,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "demotions": [record.as_dict() for record in self.demotions],
        }


class FallbackChainExhausted(AllocationError):
    """Every rung failed — even spill-everywhere.

    Only a register file too small to execute a single instruction
    (or sabotage of the final rung, which the chain forbids) gets
    here.  ``demotions`` carries the full failure story.
    """

    def __init__(self, requested: str, demotions: List[DemotionRecord]) -> None:
        self.requested = requested
        self.demotions = list(demotions)
        rungs = ", ".join(
            f"{record.rung} ({record.error_type})" for record in self.demotions
        )
        super().__init__(
            f"fallback chain exhausted for {requested}: every rung failed "
            f"[{rungs}]"
        )


def fallback_rungs(options: AllocatorOptions) -> List[Rung]:
    """The deduplicated ladder for ``options``, primary first.

    Duplicates collapse (e.g. base Chaitin's ``degraded`` and
    ``plain`` rungs are the same configuration), so every rung on the
    returned ladder is a genuinely different allocator.  Asking for
    ``spillall`` itself yields a one-rung ladder — the primary already
    *is* the last resort.
    """
    if options.kind == "spillall":
        return [Rung("primary", options)]
    keep_sc = options.sc and options.kind == "chaitin"
    degraded = AllocatorOptions(
        kind="chaitin",
        sc=keep_sc,
        callee_model="first" if keep_sc else "shared",
        coalesce=False,
    )
    candidates = [
        Rung("primary", options),
        Rung("no-coalesce", options.with_(coalesce=False)),
        Rung("degraded", degraded),
        Rung("plain", AllocatorOptions(kind="chaitin", coalesce=False)),
        Rung("spillall", AllocatorOptions.spill_everywhere()),
    ]
    rungs: List[Rung] = []
    for rung in candidates:
        if any(earlier.options == rung.options for earlier in rungs):
            continue
        rungs.append(rung)
    return rungs


def resilient_allocate_program(
    program,
    regfile,
    options: AllocatorOptions = AllocatorOptions(),
    weights_for=None,
    reconstruct: bool = False,
    ipra: bool = False,
    cache=None,
    tracer: Optional["Tracer"] = None,
    budget: Optional[AllocationBudget] = None,
    injector: Optional["Tracer"] = None,
    corrupt: Optional[Callable[[ProgramAllocation, int], None]] = None,
) -> Tuple[ProgramAllocation, ResilienceReport]:
    """Allocate ``program``, demoting down the ladder until verified.

    Parameters mirror
    :func:`~repro.regalloc.framework.allocate_program`; two extras
    serve the chaos harness: ``injector`` (a fault-injecting tracer
    used *instead of* ``tracer`` on every rung but the last) and
    ``corrupt`` (called with the finished allocation and the rung
    index before verification, on every rung but the last).  Returns
    ``(allocation, report)``; the caller — normally
    ``allocate_program(resilient=True)`` — attaches the report to the
    allocation.

    Raises :class:`FallbackChainExhausted` only when even the
    unsabotaged, unbudgeted spill-everywhere rung fails — i.e. the
    register file cannot hold one instruction's operands.
    """
    rungs = fallback_rungs(options)
    demotions: List[DemotionRecord] = []
    for index, rung in enumerate(rungs):
        final = index == len(rungs) - 1
        try:
            allocation = allocate_program(
                program,
                regfile,
                rung.options,
                weights_for=weights_for,
                reconstruct=reconstruct,
                ipra=ipra,
                cache=cache,
                tracer=tracer if (final or injector is None) else injector,
                budget=None if final else budget,
            )
            if corrupt is not None and not final:
                corrupt(allocation, index)
            verify_allocation(allocation)
        except Exception as exc:  # noqa: BLE001 - absorbing is the point
            demotions.append(DemotionRecord.from_exception(rung.name, exc))
            continue
        return allocation, ResilienceReport(
            requested=options.label,
            rung=rung.name,
            rung_index=index,
            options=rung.options.label,
            attempts=index + 1,
            demotions=tuple(demotions),
        )
    raise FallbackChainExhausted(options.label, demotions)


def record_resilience(report) -> None:
    """Feed one accepted report into the process-global metrics.

    Accepts a :class:`ResilienceReport` or its ``as_dict()`` form (the
    shape sweep workers ship back on their measurements).  Parent-
    process callers only (the CLI, ``_absorb_report``); workers ship
    the report on the measurement instead of touching globals.
    """
    from repro.obs.metrics import METRICS

    if not isinstance(report, dict):
        report = report.as_dict()
    METRICS.inc("resilience.runs")
    METRICS.inc("resilience.demotions", len(report["demotions"]))
    METRICS.inc(f"resilience.rung.{report['rung']}")
    METRICS.observe("resilience.rung_index", report["rung_index"])
    if report["degraded"]:
        METRICS.inc("resilience.degraded")
