"""Guaranteed-progress allocation: the resilience layer.

``allocate_program(resilient=True)`` is total (for any register file
that can hold one instruction's operands): the fallback chain in
:mod:`repro.resilience.chain` retries with progressively degraded
allocator configurations down to the spill-everywhere last resort,
verifying every rung's result before accepting it, and attaches a
structured :class:`ResilienceReport` naming the surviving rung and
attributing every demotion.

Budgets (:class:`~repro.regalloc.budget.AllocationBudget` /
:class:`~repro.regalloc.budget.BudgetExceeded`) live in
:mod:`repro.regalloc.budget` — the framework checks them, so the
import direction stays ``resilience -> regalloc`` — and are
re-exported here for convenience.  The chaos harness that proves the
recovery paths work is :mod:`repro.chaos`.
"""

from repro.regalloc.budget import AllocationBudget, BudgetExceeded
from repro.resilience.chain import (
    DemotionRecord,
    FallbackChainExhausted,
    ResilienceReport,
    Rung,
    fallback_rungs,
    record_resilience,
    resilient_allocate_program,
)

__all__ = [
    "AllocationBudget",
    "BudgetExceeded",
    "DemotionRecord",
    "FallbackChainExhausted",
    "ResilienceReport",
    "Rung",
    "fallback_rungs",
    "record_resilience",
    "resilient_allocate_program",
]
