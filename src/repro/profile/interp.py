"""A direct interpreter for the repro IR.

The interpreter plays two roles in the reproduction:

1. **Profiler** — it executes a program once and records exact basic
   block and function-entry counts (the paper's *dynamic information*).
2. **Semantics oracle** — tests compare global-array state and the
   ``main`` return value before and after register allocation (the
   allocated code is executed by :mod:`repro.profile.machine_interp`).

Arithmetic follows C on a 32-bit-int machine in spirit but uses
Python's unbounded integers (the workloads keep values small on
purpose); integer division truncates toward zero and ``%`` takes the
sign of the dividend, as in C99.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import Function, Program
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import saturating_f2i
from repro.ir.values import VReg
from repro.profile.profile import Profile


class InterpreterError(Exception):
    """Runtime error: bad index, division by zero, fuel exhausted..."""


@dataclass
class ExecutionResult:
    """Observable outcome of one program run."""

    return_value: Optional[float]
    globals_state: Dict[str, List]
    profile: Profile
    instructions_executed: int = 0


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer modulo by zero")
    return a - _c_div(a, b) * b


class Interpreter:
    """Executes a program; see :func:`run_program` for the usual entry."""

    def __init__(self, program: Program, fuel: int = 50_000_000):
        self.program = program
        self.fuel = fuel
        self.executed = 0
        self.profile = Profile()
        self.globals: Dict[str, List] = {
            name: array.initial_values() for name, array in program.globals.items()
        }

    def run(self, func_name: str = "main", args: Optional[List] = None):
        """Execute ``func_name`` with ``args``; returns its return value."""
        func = self.program.function(func_name)
        actual = list(args or [])
        if len(actual) != len(func.params):
            raise InterpreterError(
                f"{func_name} expects {len(func.params)} arguments, "
                f"got {len(actual)}"
            )
        return self._call(func, actual)

    # ------------------------------------------------------------------

    def _call(self, func: Function, args: List):
        self.profile.record_entry(func.name)
        env: Dict[VReg, object] = {}
        for param, value in zip(func.params, args):
            env[param] = float(value) if param.vtype.is_float else int(value)
        block = func.entry
        while True:
            self.profile.record_block(block)
            self.executed += len(block.instrs)
            if self.executed > self.fuel:
                raise InterpreterError(
                    f"fuel exhausted after {self.executed} instructions"
                )
            next_block = None
            for instr in block.instrs:
                if isinstance(instr, Const):
                    env[instr.dst] = instr.value
                elif isinstance(instr, BinOp):
                    env[instr.dst] = self._binop(
                        instr.op, env[instr.lhs], env[instr.rhs], instr.dst.vtype.is_float
                    )
                elif isinstance(instr, UnaryOp):
                    env[instr.dst] = self._unop(instr.op, env[instr.src])
                elif isinstance(instr, Copy):
                    env[instr.dst] = env[instr.src]
                elif isinstance(instr, Load):
                    env[instr.dst] = self._load(instr.array, env[instr.index])
                elif isinstance(instr, Store):
                    self._store(instr.array, env[instr.index], env[instr.value])
                elif isinstance(instr, Call):
                    callee = self.program.function(instr.callee)
                    result = self._call(callee, [env[a] for a in instr.args])
                    if instr.dst is not None:
                        env[instr.dst] = result
                elif isinstance(instr, Branch):
                    next_block = (
                        instr.then_block if env[instr.cond] != 0 else instr.else_block
                    )
                elif isinstance(instr, Jump):
                    next_block = instr.target
                elif isinstance(instr, Ret):
                    return env[instr.value] if instr.value is not None else None
                else:  # pragma: no cover - exhaustive over the IR
                    raise InterpreterError(f"cannot execute {instr!r}")
            if next_block is None:
                raise InterpreterError(f"block {block.name} fell through")
            block = next_block

    def _binop(self, op: BinaryOpcode, lhs, rhs, float_result: bool):
        if op is BinaryOpcode.ADD:
            return lhs + rhs
        if op is BinaryOpcode.SUB:
            return lhs - rhs
        if op is BinaryOpcode.MUL:
            return lhs * rhs
        if op is BinaryOpcode.DIV:
            if float_result:
                if rhs == 0.0:
                    raise InterpreterError("float division by zero")
                return lhs / rhs
            return _c_div(lhs, rhs)
        if op is BinaryOpcode.MOD:
            return _c_mod(lhs, rhs)
        if op is BinaryOpcode.AND:
            return lhs & rhs
        if op is BinaryOpcode.OR:
            return lhs | rhs
        if op is BinaryOpcode.EQ:
            return int(lhs == rhs)
        if op is BinaryOpcode.NE:
            return int(lhs != rhs)
        if op is BinaryOpcode.LT:
            return int(lhs < rhs)
        if op is BinaryOpcode.LE:
            return int(lhs <= rhs)
        if op is BinaryOpcode.GT:
            return int(lhs > rhs)
        if op is BinaryOpcode.GE:
            return int(lhs >= rhs)
        raise InterpreterError(f"unknown binop {op}")  # pragma: no cover

    def _unop(self, op: UnaryOpcode, value):
        if op is UnaryOpcode.NEG:
            return -value
        if op is UnaryOpcode.NOT:
            return int(value == 0)
        if op is UnaryOpcode.I2F:
            return float(value)
        if op is UnaryOpcode.F2I:
            return saturating_f2i(value)
        raise InterpreterError(f"unknown unop {op}")  # pragma: no cover

    def _load(self, array: str, index):
        values = self.globals.get(array)
        if values is None:
            raise InterpreterError(f"load from unknown array @{array}")
        if not 0 <= index < len(values):
            raise InterpreterError(
                f"index {index} out of bounds for @{array}[{len(values)}]"
            )
        return values[index]

    def _store(self, array: str, index, value) -> None:
        values = self.globals.get(array)
        if values is None:
            raise InterpreterError(f"store to unknown array @{array}")
        if not 0 <= index < len(values):
            raise InterpreterError(
                f"index {index} out of bounds for @{array}[{len(values)}]"
            )
        values[index] = value


def run_program(
    program: Program,
    func_name: str = "main",
    args: Optional[List] = None,
    fuel: int = 50_000_000,
) -> ExecutionResult:
    """Execute ``program`` and return observable state plus a profile."""
    interp = Interpreter(program, fuel=fuel)
    result = interp.run(func_name, args)
    return ExecutionResult(
        return_value=result,
        globals_state=interp.globals,
        profile=interp.profile,
        instructions_executed=interp.executed,
    )
