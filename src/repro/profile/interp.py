"""A direct interpreter for the repro IR.

The interpreter plays two roles in the reproduction:

1. **Profiler** — it executes a program once and records exact basic
   block and function-entry counts (the paper's *dynamic information*).
2. **Semantics oracle** — tests compare global-array state and the
   ``main`` return value before and after register allocation (the
   allocated code is executed by :mod:`repro.profile.machine_interp`).

Arithmetic follows C on a 32-bit-int machine in spirit but uses
Python's unbounded integers (the workloads keep values small on
purpose); integer division truncates toward zero and ``%`` takes the
sign of the dividend, as in C99.

Execution is *precompiled*: the first time a function is called, every
instruction is translated into a small closure specialized on its
opcode and operands (the binop closure for an ``ADD`` performs the
addition directly — no opcode test, no isinstance chain), and every
block becomes a flat closure list.  The dispatch loop then just calls
the closures against the environment dict.  Closures return ``None``
to fall through, the successor's compiled block for control transfers,
or a ``_Return`` carrying the function's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import saturating_f2i
from repro.ir.values import VReg
from repro.profile.profile import Profile


class InterpreterError(Exception):
    """Runtime error: bad index, division by zero, fuel exhausted..."""


@dataclass
class ExecutionResult:
    """Observable outcome of one program run."""

    return_value: Optional[float]
    globals_state: Dict[str, List]
    profile: Profile
    instructions_executed: int = 0


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer modulo by zero")
    return a - _c_div(a, b) * b


class _Return:
    """Control-flow result: the enclosing function returns ``value``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _CompiledBlock:
    """One basic block as a flat list of instruction closures."""

    __slots__ = ("block", "count", "ops")

    def __init__(self, block: BasicBlock):
        self.block = block
        self.count = len(block.instrs)
        self.ops: List[Callable] = []


def _compile_binop(instr: BinOp) -> Callable:
    dst, lhs, rhs, op = instr.dst, instr.lhs, instr.rhs, instr.op
    if op is BinaryOpcode.ADD:
        def run(env):
            env[dst] = env[lhs] + env[rhs]
    elif op is BinaryOpcode.SUB:
        def run(env):
            env[dst] = env[lhs] - env[rhs]
    elif op is BinaryOpcode.MUL:
        def run(env):
            env[dst] = env[lhs] * env[rhs]
    elif op is BinaryOpcode.DIV:
        if dst.vtype.is_float:
            def run(env):
                divisor = env[rhs]
                if divisor == 0.0:
                    raise InterpreterError("float division by zero")
                env[dst] = env[lhs] / divisor
        else:
            def run(env):
                env[dst] = _c_div(env[lhs], env[rhs])
    elif op is BinaryOpcode.MOD:
        def run(env):
            env[dst] = _c_mod(env[lhs], env[rhs])
    elif op is BinaryOpcode.AND:
        def run(env):
            env[dst] = env[lhs] & env[rhs]
    elif op is BinaryOpcode.OR:
        def run(env):
            env[dst] = env[lhs] | env[rhs]
    elif op is BinaryOpcode.EQ:
        def run(env):
            env[dst] = int(env[lhs] == env[rhs])
    elif op is BinaryOpcode.NE:
        def run(env):
            env[dst] = int(env[lhs] != env[rhs])
    elif op is BinaryOpcode.LT:
        def run(env):
            env[dst] = int(env[lhs] < env[rhs])
    elif op is BinaryOpcode.LE:
        def run(env):
            env[dst] = int(env[lhs] <= env[rhs])
    elif op is BinaryOpcode.GT:
        def run(env):
            env[dst] = int(env[lhs] > env[rhs])
    elif op is BinaryOpcode.GE:
        def run(env):
            env[dst] = int(env[lhs] >= env[rhs])
    else:  # pragma: no cover - exhaustive over the opcodes
        def run(env):
            raise InterpreterError(f"unknown binop {op}")
    return run


def _compile_unop(instr: UnaryOp) -> Callable:
    dst, src, op = instr.dst, instr.src, instr.op
    if op is UnaryOpcode.NEG:
        def run(env):
            env[dst] = -env[src]
    elif op is UnaryOpcode.NOT:
        def run(env):
            env[dst] = int(env[src] == 0)
    elif op is UnaryOpcode.I2F:
        def run(env):
            env[dst] = float(env[src])
    elif op is UnaryOpcode.F2I:
        def run(env):
            env[dst] = saturating_f2i(env[src])
    else:  # pragma: no cover - exhaustive over the opcodes
        def run(env):
            raise InterpreterError(f"unknown unop {op}")
    return run


class Interpreter:
    """Executes a program; see :func:`run_program` for the usual entry."""

    def __init__(self, program: Program, fuel: int = 50_000_000):
        self.program = program
        self.fuel = fuel
        self.executed = 0
        self.profile = Profile()
        self.globals: Dict[str, List] = {
            name: array.initial_values() for name, array in program.globals.items()
        }
        #: Per function, the entry's compiled block (compiled on first
        #: call; blocks link to their successors directly).
        self._compiled: Dict[Function, _CompiledBlock] = {}

    def run(self, func_name: str = "main", args: Optional[List] = None):
        """Execute ``func_name`` with ``args``; returns its return value."""
        func = self.program.function(func_name)
        actual = list(args or [])
        if len(actual) != len(func.params):
            raise InterpreterError(
                f"{func_name} expects {len(func.params)} arguments, "
                f"got {len(actual)}"
            )
        return self._call(func, actual)

    # ------------------------------------------------------------------

    def _compile(self, func: Function) -> _CompiledBlock:
        """Translate every block of ``func`` into closure lists."""
        compiled = {block: _CompiledBlock(block) for block in func.blocks}
        globals_dict = self.globals
        for block, cblock in compiled.items():
            ops = cblock.ops
            for instr in block.instrs:
                kind = type(instr)
                if kind is Const:
                    def run(env, dst=instr.dst, value=instr.value):
                        env[dst] = value
                elif kind is BinOp:
                    run = _compile_binop(instr)
                elif kind is UnaryOp:
                    run = _compile_unop(instr)
                elif kind is Copy:
                    def run(env, dst=instr.dst, src=instr.src):
                        env[dst] = env[src]
                elif kind is Load:
                    def run(
                        env,
                        dst=instr.dst,
                        array=instr.array,
                        idx=instr.index,
                        get=globals_dict.get,
                    ):
                        values = get(array)
                        if values is None:
                            raise InterpreterError(
                                f"load from unknown array @{array}"
                            )
                        index = env[idx]
                        if not 0 <= index < len(values):
                            raise InterpreterError(
                                f"index {index} out of bounds for "
                                f"@{array}[{len(values)}]"
                            )
                        env[dst] = values[index]
                elif kind is Store:
                    def run(
                        env,
                        array=instr.array,
                        idx=instr.index,
                        src=instr.value,
                        get=globals_dict.get,
                    ):
                        values = get(array)
                        if values is None:
                            raise InterpreterError(
                                f"store to unknown array @{array}"
                            )
                        index = env[idx]
                        if not 0 <= index < len(values):
                            raise InterpreterError(
                                f"index {index} out of bounds for "
                                f"@{array}[{len(values)}]"
                            )
                        values[index] = env[src]
                elif kind is Call:
                    if instr.dst is None:
                        def run(
                            env,
                            callee=instr.callee,
                            args=tuple(instr.args),
                            self=self,
                        ):
                            self._call(
                                self.program.function(callee),
                                [env[a] for a in args],
                            )
                    else:
                        def run(
                            env,
                            callee=instr.callee,
                            args=tuple(instr.args),
                            dst=instr.dst,
                            self=self,
                        ):
                            env[dst] = self._call(
                                self.program.function(callee),
                                [env[a] for a in args],
                            )
                elif kind is Branch:
                    def run(
                        env,
                        cond=instr.cond,
                        then_cb=compiled[instr.then_block],
                        else_cb=compiled[instr.else_block],
                    ):
                        return then_cb if env[cond] != 0 else else_cb
                elif kind is Jump:
                    def run(env, target_cb=compiled[instr.target]):
                        return target_cb
                elif kind is Ret:
                    if instr.value is None:
                        ret_none = _Return(None)

                        def run(env, ret=ret_none):
                            return ret
                    else:
                        def run(env, value=instr.value):
                            return _Return(env[value])
                else:
                    # Unknown instruction kinds fail when *executed*,
                    # exactly like the former per-instruction dispatch.
                    def run(env, instr=instr):
                        raise InterpreterError(f"cannot execute {instr!r}")
                ops.append(run)
        entry = compiled[func.entry]
        self._compiled[func] = entry
        return entry

    def _call(self, func: Function, args: List):
        self.profile.record_entry(func.name)
        cblock = self._compiled.get(func)
        if cblock is None:
            cblock = self._compile(func)
        env: Dict[VReg, object] = {}
        for param, value in zip(func.params, args):
            env[param] = float(value) if param.vtype.is_float else int(value)
        record_block = self.profile.record_block
        fuel = self.fuel
        while True:
            record_block(cblock.block)
            self.executed += cblock.count
            if self.executed > fuel:
                raise InterpreterError(
                    f"fuel exhausted after {self.executed} instructions"
                )
            next_cb = None
            for op in cblock.ops:
                res = op(env)
                if res is not None:
                    if type(res) is _Return:
                        return res.value
                    next_cb = res
            if next_cb is None:
                raise InterpreterError(f"block {cblock.block.name} fell through")
            cblock = next_cb


def run_program(
    program: Program,
    func_name: str = "main",
    args: Optional[List] = None,
    fuel: int = 50_000_000,
) -> ExecutionResult:
    """Execute ``program`` and return observable state plus a profile."""
    interp = Interpreter(program, fuel=fuel)
    result = interp.run(func_name, args)
    return ExecutionResult(
        return_value=result,
        globals_state=interp.globals,
        profile=interp.profile,
        instructions_executed=interp.executed,
    )
