"""Machine-level interpreter: executes *allocated* code.

This is the correctness oracle of the reproduction.  It runs the
post-allocation program against a physical register file and per-frame
spill slots, with the calling convention enforced the hard way:

* on return from a call, **every caller-save register is poisoned** —
  any value that should have survived the call must have been saved
  and restored by allocator-inserted code, or its next read fails;
* spill slots start poisoned, so a reload without a prior save fails;
* values flow between caller and callee only through argument values
  and the return value (the abstracted argument registers of the
  calling convention), and through callee-save registers, which the
  callee's own prologue/epilogue must preserve.

Tests assert that the allocated program computes the same global-array
state and ``main`` return value as the original IR, and that the
number of overhead operations executed matches the analytic count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
)
from repro.ir.types import saturating_f2i
from repro.ir.values import VReg
from repro.machine.registers import PhysReg
from repro.profile.interp import InterpreterError, _c_div, _c_mod
from repro.regalloc.framework import ProgramAllocation
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


class _Poison:
    """Sentinel for register/slot values that must not be read."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<poison>"


POISON = _Poison()


class MachineError(InterpreterError):
    """The allocated code read a clobbered or uninitialized value."""


@dataclass
class MachineExecution:
    """Observable outcome of running allocated code."""

    return_value: Optional[float]
    globals_state: Dict[str, List]
    overhead_counts: Dict[OverheadKind, int] = field(default_factory=dict)
    shuffle_count: int = 0
    instructions_executed: int = 0


class MachineInterpreter:
    def __init__(self, allocation: ProgramAllocation, fuel: int = 100_000_000):
        self.allocation = allocation
        self.program = allocation.program
        self.fuel = fuel
        self.executed = 0
        self.regs: Dict[PhysReg, object] = {
            phys: POISON for phys in allocation.regfile.all_registers()
        }
        self.globals: Dict[str, List] = {
            name: array.initial_values()
            for name, array in self.program.globals.items()
        }
        self.overhead: Dict[OverheadKind, int] = {kind: 0 for kind in OverheadKind}
        self.shuffles = 0

    def run(self, func_name: str = "main", args: Optional[List] = None):
        return self._call(func_name, list(args or []))

    # ------------------------------------------------------------------

    def _call(self, func_name: str, args: List):
        fa = self.allocation.functions[func_name]
        func = fa.func
        assignment = fa.assignment
        slots: Dict[int, object] = {}

        def read(reg: VReg):
            value = self.regs[assignment[reg]]
            if value is POISON:
                raise MachineError(
                    f"{func_name}: read of clobbered register "
                    f"{assignment[reg]} (live range {reg})"
                )
            return value

        def write(reg: VReg, value) -> None:
            self.regs[assignment[reg]] = value

        # Prologue: the callee-save saves at the head of the entry
        # block capture the *caller's* register values, so they run
        # before the parameters land in their registers.
        entry = func.entry
        start = 0
        for instr in entry.instrs:
            if isinstance(instr, SpillStore) and instr.kind is OverheadKind.CALLEE_SAVE:
                slots[instr.slot] = self.regs[instr.src]
                self.overhead[OverheadKind.CALLEE_SAVE] += 1
                self.executed += 1
                start += 1
            else:
                break
        for param, value in zip(func.params, args):
            write(param, float(value) if param.vtype.is_float else int(value))

        # Epilogue handling: the callee-save restores before a Ret may
        # overwrite the register holding the return value (on real
        # hardware the value moves to the caller-save return register
        # first; our model passes it abstractly).  Capture the value
        # when the epilogue's first restore executes.
        epilogue_capture = {}
        for b in func.blocks:
            term = b.instrs[-1] if b.instrs else None
            if isinstance(term, Ret) and term.value is not None:
                i = len(b.instrs) - 2
                first = None
                while i >= 0:
                    candidate = b.instrs[i]
                    if (
                        isinstance(candidate, SpillLoad)
                        and candidate.kind is OverheadKind.CALLEE_SAVE
                    ):
                        first = candidate
                        i -= 1
                    else:
                        break
                if first is not None:
                    epilogue_capture[id(first)] = term.value
        captured = None

        block = entry
        index = start
        while True:
            if self.executed > self.fuel:
                raise MachineError("machine fuel exhausted")
            next_block = None
            instrs = block.instrs
            while index < len(instrs):
                instr = instrs[index]
                index += 1
                self.executed += 1
                if isinstance(instr, SpillLoad):
                    if id(instr) in epilogue_capture:
                        captured = read(epilogue_capture[id(instr)])
                    if instr.slot not in slots:
                        raise MachineError(
                            f"{func_name}: reload of unwritten slot {instr.slot}"
                        )
                    value = slots[instr.slot]
                    self.overhead[instr.kind] += 1
                    if isinstance(instr.dst, VReg):
                        write(instr.dst, value)
                    else:
                        self.regs[instr.dst] = value
                elif isinstance(instr, SpillStore):
                    self.overhead[instr.kind] += 1
                    if isinstance(instr.src, VReg):
                        slots[instr.slot] = read(instr.src)
                    else:
                        slots[instr.slot] = self.regs[instr.src]
                elif isinstance(instr, Const):
                    write(instr.dst, instr.value)
                elif isinstance(instr, Copy):
                    value = read(instr.src)
                    if assignment[instr.dst] != assignment[instr.src]:
                        self.shuffles += 1
                    write(instr.dst, value)
                elif isinstance(instr, BinOp):
                    write(
                        instr.dst,
                        _binop(instr, read(instr.lhs), read(instr.rhs)),
                    )
                elif isinstance(instr, UnaryOp):
                    write(instr.dst, _unop(instr, read(instr.src)))
                elif isinstance(instr, Load):
                    write(instr.dst, self._load(instr.array, read(instr.index)))
                elif isinstance(instr, Store):
                    self._store(
                        instr.array, read(instr.index), read(instr.value)
                    )
                elif isinstance(instr, Call):
                    arg_values = [read(a) for a in instr.args]
                    result = self._call(instr.callee, arg_values)
                    # The callee may have written any caller-save
                    # register — or, with IPRA summaries, exactly the
                    # registers its summary admits.
                    clobbers = self.allocation.clobbers
                    if clobbers is not None:
                        poisoned = clobbers[instr.callee]
                    else:
                        poisoned = (
                            phys
                            for phys in self.allocation.regfile.all_registers()
                            if phys.is_caller_save
                        )
                    for phys in poisoned:
                        self.regs[phys] = POISON
                    if instr.dst is not None:
                        write(instr.dst, result)
                elif isinstance(instr, Branch):
                    next_block = (
                        instr.then_block
                        if read(instr.cond) != 0
                        else instr.else_block
                    )
                elif isinstance(instr, Jump):
                    next_block = instr.target
                elif isinstance(instr, Ret):
                    if instr.value is None:
                        return None
                    return captured if captured is not None else read(instr.value)
                else:  # pragma: no cover
                    raise MachineError(f"cannot execute {instr!r}")
                if next_block is not None:
                    break
            if next_block is None:
                raise MachineError(f"{func_name}/{block.name} fell through")
            block = next_block
            index = 0
            captured = None

    def _load(self, array: str, index):
        values = self.globals[array]
        if not 0 <= index < len(values):
            raise MachineError(f"index {index} out of bounds for @{array}")
        return values[index]

    def _store(self, array: str, index, value) -> None:
        values = self.globals[array]
        if not 0 <= index < len(values):
            raise MachineError(f"index {index} out of bounds for @{array}")
        values[index] = value


def _binop(instr: BinOp, lhs, rhs):
    from repro.ir.instructions import BinaryOpcode as Op

    op = instr.op
    if op is Op.ADD:
        return lhs + rhs
    if op is Op.SUB:
        return lhs - rhs
    if op is Op.MUL:
        return lhs * rhs
    if op is Op.DIV:
        if instr.dst.vtype.is_float:
            if rhs == 0.0:
                raise MachineError("float division by zero")
            return lhs / rhs
        return _c_div(lhs, rhs)
    if op is Op.MOD:
        return _c_mod(lhs, rhs)
    if op is Op.AND:
        return lhs & rhs
    if op is Op.OR:
        return lhs | rhs
    if op is Op.EQ:
        return int(lhs == rhs)
    if op is Op.NE:
        return int(lhs != rhs)
    if op is Op.LT:
        return int(lhs < rhs)
    if op is Op.LE:
        return int(lhs <= rhs)
    if op is Op.GT:
        return int(lhs > rhs)
    if op is Op.GE:
        return int(lhs >= rhs)
    raise MachineError(f"unknown binop {op}")  # pragma: no cover


def _unop(instr: UnaryOp, value):
    from repro.ir.instructions import UnaryOpcode as Op

    op = instr.op
    if op is Op.NEG:
        return -value
    if op is Op.NOT:
        return int(value == 0)
    if op is Op.I2F:
        return float(value)
    if op is Op.F2I:
        return saturating_f2i(value)
    raise MachineError(f"unknown unop {op}")  # pragma: no cover


def run_allocated(
    allocation: ProgramAllocation,
    func_name: str = "main",
    args: Optional[List] = None,
    fuel: int = 100_000_000,
) -> MachineExecution:
    """Execute an allocated program; see :class:`MachineExecution`."""
    interp = MachineInterpreter(allocation, fuel=fuel)
    result = interp.run(func_name, args)
    return MachineExecution(
        return_value=result,
        globals_state=interp.globals,
        overhead_counts=interp.overhead,
        shuffle_count=interp.shuffles,
        instructions_executed=interp.executed,
    )
