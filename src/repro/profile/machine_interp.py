"""Machine-level interpreter: executes *allocated* code.

This is the correctness oracle of the reproduction.  It runs the
post-allocation program against a physical register file and per-frame
spill slots, with the calling convention enforced the hard way:

* on return from a call, **every caller-save register is poisoned** —
  any value that should have survived the call must have been saved
  and restored by allocator-inserted code, or its next read fails;
* spill slots start poisoned, so a reload without a prior save fails;
* values flow between caller and callee only through argument values
  and the return value (the abstracted argument registers of the
  calling convention), and through callee-save registers, which the
  callee's own prologue/epilogue must preserve.

Tests assert that the allocated program computes the same global-array
state and ``main`` return value as the original IR, and that the
number of overhead operations executed matches the analytic count.

Like the source interpreter, execution is precompiled: on a function's
first call every instruction becomes a closure with its registers
resolved to physical registers (the virtual-to-physical ``assignment``
lookup happens once, at compile time), its poison-check error message
prebuilt, and — for calls — the clobber set hoisted to a tuple.  A
block compiles to the closure list of its instructions *up to and
including the first control transfer* (the former dispatch loop never
executed past one).  The entry block gets two variants: the first
entry skips the callee-save saves of the prologue (they run against
the caller's register values before the parameters land), while loop
back edges into the entry re-execute them as ordinary instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import saturating_f2i
from repro.ir.values import VReg
from repro.machine.registers import PhysReg
from repro.profile.interp import InterpreterError, _c_div, _c_mod
from repro.regalloc.framework import ProgramAllocation
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


class _Poison:
    """Sentinel for register/slot values that must not be read."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<poison>"


POISON = _Poison()


class MachineError(InterpreterError):
    """The allocated code read a clobbered or uninitialized value."""


@dataclass
class MachineExecution:
    """Observable outcome of running allocated code."""

    return_value: Optional[float]
    globals_state: Dict[str, List]
    overhead_counts: Dict[OverheadKind, int] = field(default_factory=dict)
    shuffle_count: int = 0
    instructions_executed: int = 0


class _Return:
    """Control-flow result: the enclosing function returns ``value``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _Frame:
    """Per-call mutable state the instruction closures act on."""

    __slots__ = ("slots", "captured")

    def __init__(self):
        #: Spill slots; missing keys are poisoned.
        self.slots: Dict[int, object] = {}
        #: Return value captured by the epilogue's first callee-save
        #: restore (see ``_compile``).
        self.captured = None


class _CompiledBlock:
    """A block's executable segment: closures up to the first control
    transfer (instructions past one were never executed)."""

    __slots__ = ("name", "count", "ops")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.ops: List[Callable] = []


class _CompiledFunction:
    __slots__ = ("func", "assignment", "prologue", "entry", "reentry")

    def __init__(self, func, assignment, prologue, entry, reentry):
        self.func = func
        self.assignment = assignment
        #: The callee-save SpillStores at the head of the entry block.
        self.prologue = prologue
        #: Entry variant that skips the prologue stores (first entry).
        self.entry = entry
        #: Full entry variant used by branches back to the entry.
        self.reentry = reentry


_BINOP_EXPR = {
    BinaryOpcode.ADD: lambda lhs, rhs: lhs + rhs,
    BinaryOpcode.SUB: lambda lhs, rhs: lhs - rhs,
    BinaryOpcode.MUL: lambda lhs, rhs: lhs * rhs,
    BinaryOpcode.MOD: _c_mod,
    BinaryOpcode.AND: lambda lhs, rhs: lhs & rhs,
    BinaryOpcode.OR: lambda lhs, rhs: lhs | rhs,
    BinaryOpcode.EQ: lambda lhs, rhs: int(lhs == rhs),
    BinaryOpcode.NE: lambda lhs, rhs: int(lhs != rhs),
    BinaryOpcode.LT: lambda lhs, rhs: int(lhs < rhs),
    BinaryOpcode.LE: lambda lhs, rhs: int(lhs <= rhs),
    BinaryOpcode.GT: lambda lhs, rhs: int(lhs > rhs),
    BinaryOpcode.GE: lambda lhs, rhs: int(lhs >= rhs),
}

_UNOP_EXPR = {
    UnaryOpcode.NEG: lambda value: -value,
    UnaryOpcode.NOT: lambda value: int(value == 0),
    UnaryOpcode.I2F: float,
    UnaryOpcode.F2I: saturating_f2i,
}


def _float_div(lhs, rhs):
    if rhs == 0.0:
        raise MachineError("float division by zero")
    return lhs / rhs


class MachineInterpreter:
    def __init__(self, allocation: ProgramAllocation, fuel: int = 100_000_000):
        self.allocation = allocation
        self.program = allocation.program
        self.fuel = fuel
        self.executed = 0
        self.regs: Dict[PhysReg, object] = {
            phys: POISON for phys in allocation.regfile.all_registers()
        }
        self.globals: Dict[str, List] = {
            name: array.initial_values()
            for name, array in self.program.globals.items()
        }
        self.overhead: Dict[OverheadKind, int] = {kind: 0 for kind in OverheadKind}
        self.shuffles = 0
        self._compiled: Dict[str, _CompiledFunction] = {}

    def run(self, func_name: str = "main", args: Optional[List] = None):
        return self._call(func_name, list(args or []))

    # ------------------------------------------------------------------

    def _compile(self, func_name: str) -> _CompiledFunction:
        fa = self.allocation.functions[func_name]
        func = fa.func
        assignment = fa.assignment
        regs = self.regs
        overhead = self.overhead
        globals_dict = self.globals

        def phys_of(reg):
            # Spill instructions address registers directly; everything
            # else goes through the allocation.
            return assignment[reg] if isinstance(reg, VReg) else reg

        def reader(reg: VReg):
            """A poison-checking read closure with a prebuilt message."""
            phys = assignment[reg]
            message = (
                f"{func_name}: read of clobbered register "
                f"{phys} (live range {reg})"
            )

            def read():
                value = regs[phys]
                if value is POISON:
                    raise MachineError(message)
                return value

            return read

        # The callee-save restores before a Ret may overwrite the
        # register holding the return value (on real hardware the value
        # moves to the caller-save return register first; our model
        # passes it abstractly).  The value is captured when the
        # epilogue's first restore executes.
        capture_loads = set()
        capture_value: Dict[int, VReg] = {}
        for b in func.blocks:
            term = b.instrs[-1] if b.instrs else None
            if isinstance(term, Ret) and term.value is not None:
                i = len(b.instrs) - 2
                first = None
                while i >= 0:
                    candidate = b.instrs[i]
                    if (
                        isinstance(candidate, SpillLoad)
                        and candidate.kind is OverheadKind.CALLEE_SAVE
                    ):
                        first = candidate
                        i -= 1
                    else:
                        break
                if first is not None:
                    capture_loads.add(id(first))
                    capture_value[id(first)] = term.value

        compiled = {block: _CompiledBlock(block.name) for block in func.blocks}
        # Prologue: leading callee-save stores of the entry block.
        prologue = []
        for instr in func.entry.instrs:
            if isinstance(instr, SpillStore) and instr.kind is OverheadKind.CALLEE_SAVE:
                prologue.append(instr)
            else:
                break

        def compile_instr(instr) -> Callable:
            kind = type(instr)
            if kind is SpillLoad:
                slot = instr.slot
                okind = instr.kind
                dst_phys = phys_of(instr.dst)
                missing = f"{func_name}: reload of unwritten slot {slot}"
                if id(instr) in capture_loads:
                    read_ret = reader(capture_value[id(instr)])

                    def run(frame):
                        frame.captured = read_ret()
                        slots = frame.slots
                        if slot not in slots:
                            raise MachineError(missing)
                        overhead[okind] += 1
                        regs[dst_phys] = slots[slot]
                else:
                    def run(frame):
                        slots = frame.slots
                        if slot not in slots:
                            raise MachineError(missing)
                        overhead[okind] += 1
                        regs[dst_phys] = slots[slot]
            elif kind is SpillStore:
                slot = instr.slot
                okind = instr.kind
                if isinstance(instr.src, VReg):
                    read_src = reader(instr.src)

                    def run(frame):
                        overhead[okind] += 1
                        frame.slots[slot] = read_src()
                else:
                    src_phys = instr.src

                    def run(frame):
                        overhead[okind] += 1
                        frame.slots[slot] = regs[src_phys]
            elif kind is Const:
                dst_phys = assignment[instr.dst]
                value = instr.value

                def run(frame):
                    regs[dst_phys] = value
            elif kind is Copy:
                read_src = reader(instr.src)
                dst_phys = assignment[instr.dst]
                if dst_phys != assignment[instr.src]:
                    self_ref = self

                    def run(frame):
                        value = read_src()
                        self_ref.shuffles += 1
                        regs[dst_phys] = value
                else:
                    def run(frame):
                        regs[dst_phys] = read_src()
            elif kind is BinOp:
                read_lhs = reader(instr.lhs)
                read_rhs = reader(instr.rhs)
                dst_phys = assignment[instr.dst]
                if instr.op is BinaryOpcode.DIV:
                    expr = (
                        _float_div if instr.dst.vtype.is_float else _c_div
                    )
                else:
                    expr = _BINOP_EXPR.get(instr.op)
                if expr is None:  # pragma: no cover - exhaustive
                    unknown = f"unknown binop {instr.op}"

                    def run(frame):
                        raise MachineError(unknown)
                else:
                    def run(frame, expr=expr):
                        regs[dst_phys] = expr(read_lhs(), read_rhs())
            elif kind is UnaryOp:
                read_src = reader(instr.src)
                dst_phys = assignment[instr.dst]
                expr = _UNOP_EXPR.get(instr.op)
                if expr is None:  # pragma: no cover - exhaustive
                    unknown = f"unknown unop {instr.op}"

                    def run(frame):
                        raise MachineError(unknown)
                else:
                    def run(frame, expr=expr):
                        regs[dst_phys] = expr(read_src())
            elif kind is Load:
                read_index = reader(instr.index)
                dst_phys = assignment[instr.dst]
                array = instr.array

                def run(frame):
                    values = globals_dict[array]
                    index = read_index()
                    if not 0 <= index < len(values):
                        raise MachineError(
                            f"index {index} out of bounds for @{array}"
                        )
                    regs[dst_phys] = values[index]
            elif kind is Store:
                read_index = reader(instr.index)
                read_value = reader(instr.value)
                array = instr.array

                def run(frame):
                    values = globals_dict[array]
                    index = read_index()
                    if not 0 <= index < len(values):
                        raise MachineError(
                            f"index {index} out of bounds for @{array}"
                        )
                    values[index] = read_value()
            elif kind is Call:
                arg_reads = tuple(reader(a) for a in instr.args)
                callee = instr.callee
                # The callee may have written any caller-save register
                # — or, with IPRA summaries, exactly the registers its
                # summary admits.
                clobbers = self.allocation.clobbers
                if clobbers is not None:
                    poisoned = tuple(clobbers[callee])
                else:
                    poisoned = tuple(
                        phys
                        for phys in self.allocation.regfile.all_registers()
                        if phys.is_caller_save
                    )
                dst_phys = (
                    assignment[instr.dst] if instr.dst is not None else None
                )
                self_ref = self

                def run(frame):
                    result = self_ref._call(
                        callee, [read() for read in arg_reads]
                    )
                    for phys in poisoned:
                        regs[phys] = POISON
                    if dst_phys is not None:
                        regs[dst_phys] = result
            elif kind is Branch:
                read_cond = reader(instr.cond)
                then_cb = target_of(instr.then_block)
                else_cb = target_of(instr.else_block)

                def run(frame):
                    return then_cb if read_cond() != 0 else else_cb
            elif kind is Jump:
                target_cb = target_of(instr.target)

                def run(frame):
                    return target_cb
            elif kind is Ret:
                if instr.value is None:
                    ret_none = _Return(None)

                    def run(frame):
                        return ret_none
                else:
                    read_value = reader(instr.value)

                    def run(frame):
                        captured = frame.captured
                        return _Return(
                            captured if captured is not None else read_value()
                        )
            else:
                # Unknown kinds fail when executed, like the former
                # per-instruction dispatch.
                def run(frame, instr=instr):
                    raise MachineError(f"cannot execute {instr!r}")
            return run

        entry_full = compiled[func.entry]

        def target_of(block) -> _CompiledBlock:
            # Back edges into the entry re-run the prologue stores as
            # ordinary instructions: they take the full variant.
            return compiled[block]

        for block, cblock in compiled.items():
            for instr in block.instrs:
                cblock.ops.append(compile_instr(instr))
                cblock.count += 1
                if type(instr) in (Branch, Jump, Ret):
                    break  # the dispatch loop never ran past these

        # First-entry variant of the entry block: skip the prologue.
        skip = len(prologue)
        entry_skip = _CompiledBlock(func.entry.name)
        entry_skip.ops = entry_full.ops[skip:]
        entry_skip.count = entry_full.count - skip

        record = _CompiledFunction(
            func, assignment, prologue, entry_skip, entry_full
        )
        self._compiled[func_name] = record
        return record

    def _call(self, func_name: str, args: List):
        record = self._compiled.get(func_name)
        if record is None:
            record = self._compile(func_name)
        func = record.func
        assignment = record.assignment
        regs = self.regs
        frame = _Frame()
        slots = frame.slots

        # Prologue: the callee-save saves at the head of the entry
        # block capture the *caller's* register values, so they run
        # before the parameters land in their registers.
        for instr in record.prologue:
            slots[instr.slot] = regs[instr.src]
            self.overhead[OverheadKind.CALLEE_SAVE] += 1
            self.executed += 1
        for param, value in zip(func.params, args):
            regs[assignment[param]] = (
                float(value) if param.vtype.is_float else int(value)
            )

        fuel = self.fuel
        cblock = record.entry
        while True:
            if self.executed > fuel:
                raise MachineError("machine fuel exhausted")
            self.executed += cblock.count
            next_cb = None
            for op in cblock.ops:
                res = op(frame)
                if res is not None:
                    if type(res) is _Return:
                        return res.value
                    next_cb = res
            if next_cb is None:
                raise MachineError(f"{func_name}/{cblock.name} fell through")
            cblock = next_cb
            frame.captured = None

    def _load(self, array: str, index):
        values = self.globals[array]
        if not 0 <= index < len(values):
            raise MachineError(f"index {index} out of bounds for @{array}")
        return values[index]

    def _store(self, array: str, index, value) -> None:
        values = self.globals[array]
        if not 0 <= index < len(values):
            raise MachineError(f"index {index} out of bounds for @{array}")
        values[index] = value


def run_allocated(
    allocation: ProgramAllocation,
    func_name: str = "main",
    args: Optional[List] = None,
    fuel: int = 100_000_000,
) -> MachineExecution:
    """Execute an allocated program; see :class:`MachineExecution`."""
    interp = MachineInterpreter(allocation, fuel=fuel)
    result = interp.run(func_name, args)
    return MachineExecution(
        return_value=result,
        globals_state=interp.globals,
        overhead_counts=interp.overhead,
        shuffle_count=interp.shuffles,
        instructions_executed=interp.executed,
    )
