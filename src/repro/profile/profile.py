"""Execution profiles: exact block and call-site counts.

A :class:`Profile` is the "dynamic information" of the paper: it maps
every basic block of every function to the number of times it
executed, and every function to the number of times it was invoked.
Profiles double as the ground truth for overhead accounting — the
weighted operation counts reported by every experiment are computed
against profile counts, exactly as a deterministic re-execution would
count them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.frequency import BlockWeights
from repro.ir.function import BasicBlock, Function


@dataclass
class Profile:
    """Block execution counts for one program run (or merged runs)."""

    block_counts: Dict[BasicBlock, int] = field(default_factory=dict)
    entry_counts: Dict[str, int] = field(default_factory=dict)

    def record_block(self, block: BasicBlock) -> None:
        self.block_counts[block] = self.block_counts.get(block, 0) + 1

    def record_entry(self, func_name: str) -> None:
        self.entry_counts[func_name] = self.entry_counts.get(func_name, 0) + 1

    def count(self, block: BasicBlock) -> int:
        return self.block_counts.get(block, 0)

    def entries(self, func_name: str) -> int:
        return self.entry_counts.get(func_name, 0)

    def weights(self, func: Function) -> BlockWeights:
        """Dynamic :class:`BlockWeights` for ``func``.

        For a function that never executed, all weights are zero; the
        allocator then treats every choice as free, which matches the
        paper's observation that cold code cannot contribute overhead.
        """
        weights = {
            block: float(self.block_counts.get(block, 0)) for block in func.blocks
        }
        return BlockWeights(
            weights=weights, entry_weight=float(self.entries(func.name))
        )

    def merge(self, other: "Profile") -> "Profile":
        """Accumulate ``other`` into this profile (multiple inputs)."""
        for block, count in other.block_counts.items():
            self.block_counts[block] = self.block_counts.get(block, 0) + count
        for name, count in other.entry_counts.items():
            self.entry_counts[name] = self.entry_counts.get(name, 0) + count
        return self
