"""Execution: IR interpreter (profiling oracle) and machine interpreter.

* :func:`run_program` executes IR, returns observable state and an
  exact :class:`Profile` (the paper's dynamic information).
* :func:`run_allocated` executes post-allocation code against a
  physical register file, enforcing the calling convention, as the
  correctness oracle for every allocator.
"""

from repro.profile.interp import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    run_program,
)
from repro.profile.machine_interp import (
    MachineError,
    MachineExecution,
    MachineInterpreter,
    POISON,
    run_allocated,
)
from repro.profile.profile import Profile

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
    "MachineError",
    "MachineExecution",
    "MachineInterpreter",
    "POISON",
    "Profile",
    "run_allocated",
    "run_program",
]
