"""Frontend diagnostics."""

from __future__ import annotations


class FrontendError(Exception):
    """Base class for all mini-C frontend errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid character sequence."""


class ParseError(FrontendError):
    """Token stream does not match the grammar."""


class SemanticError(FrontendError):
    """Well-formed syntax with an invalid meaning (types, scopes, arity)."""
