"""Mini-C frontend: lexer, parser, semantic analysis, lowering.

The one-call entry point is :func:`compile_source`, which takes mini-C
source text and returns a verified IR :class:`~repro.ir.Program`.
"""

from repro.lang.errors import FrontendError, LexError, ParseError, SemanticError
from repro.lang.lexer import tokenize
from repro.lang.lower import compile_source, lower_unit
from repro.lang.parser import parse
from repro.lang.sema import BUILTINS, Analyzer, FuncSignature, VarSymbol, analyze

__all__ = [
    "Analyzer",
    "BUILTINS",
    "FrontendError",
    "FuncSignature",
    "LexError",
    "ParseError",
    "SemanticError",
    "VarSymbol",
    "analyze",
    "compile_source",
    "lower_unit",
    "parse",
    "tokenize",
]
