"""Lowering: mini-C AST to repro IR.

Each declared variable (parameter or local) gets one dedicated virtual
register; assignments copy into it, so the coalescer and the web
builder see realistic copy chains.  Locals declared without an
initializer are zero-initialized (mini-C semantics; this also
guarantees the IR's definite-assignment invariant).

``&&`` and ``||`` are *not* short-circuiting in mini-C: both operands
are evaluated and the result is computed bitwise over normalized 0/1
values.  ``!x`` lowers to ``x == 0``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import BinaryOpcode, UnaryOpcode
from repro.ir.types import INT, ValueType
from repro.ir.values import GlobalArray, VReg
from repro.lang import ast
from repro.lang.errors import SemanticError
from repro.lang.sema import BUILTINS, Analyzer, VarSymbol, analyze

_BINOPS = {
    "+": BinaryOpcode.ADD,
    "-": BinaryOpcode.SUB,
    "*": BinaryOpcode.MUL,
    "/": BinaryOpcode.DIV,
    "%": BinaryOpcode.MOD,
    "==": BinaryOpcode.EQ,
    "!=": BinaryOpcode.NE,
    "<": BinaryOpcode.LT,
    "<=": BinaryOpcode.LE,
    ">": BinaryOpcode.GT,
    ">=": BinaryOpcode.GE,
}

_BUILTIN_OPS = {"itof": UnaryOpcode.I2F, "ftoi": UnaryOpcode.F2I}


def lower_unit(unit: ast.TranslationUnit, name: str = "program") -> Program:
    """Lower an *analyzed* translation unit to an IR program."""
    program = Program(name)
    for decl in unit.globals:
        program.add_global(
            GlobalArray(decl.name, decl.elem_type, decl.size, decl.init)
        )
    for func_decl in unit.functions:
        program.add_function(_FunctionLowering(func_decl).lower())
    return program


def compile_source(source: str, name: str = "program") -> Program:
    """Parse, analyze and lower mini-C ``source`` to an IR program."""
    from repro.lang.parser import parse  # local import avoids a cycle

    unit = parse(source)
    analyze(unit)
    return lower_unit(unit, name)


class _FunctionLowering:
    def __init__(self, decl: ast.FuncDecl):
        self.decl = decl
        self.func = Function(
            decl.name,
            param_types=[p.param_type for p in decl.params],
            return_type=decl.return_type,
            param_names=[p.name for p in decl.params],
        )
        self.builder = IRBuilder(self.func)
        self.vregs: Dict[VarSymbol, VReg] = {}
        for param, reg in zip(decl.params, self.func.params):
            self.vregs[param.symbol] = reg  # type: ignore[attr-defined]
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    def lower(self) -> Function:
        self.builder.start_block("entry")
        self._lower_block(self.decl.body)
        if not self.builder.terminated:
            # Implicit return: void functions fall off the end; non-void
            # functions return zero (mini-C defines this, mirroring the
            # forgiving behaviour of old C compilers).
            if self.func.return_type is None:
                self.builder.ret()
            else:
                zero = self.builder.const(0, self.func.return_type)
                self.builder.ret(zero)
        return self.func

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            if self.builder.terminated:
                return  # unreachable code after return/break/continue
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            symbol: VarSymbol = stmt.symbol  # type: ignore[attr-defined]
            reg = self.func.new_vreg(symbol.vtype, symbol.name)
            self.vregs[symbol] = reg
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
            else:
                value = self.builder.const(0, symbol.vtype)
            self.builder.copy_to(reg, value)
        elif isinstance(stmt, ast.AssignStmt):
            symbol = stmt.symbol  # type: ignore[attr-defined]
            value = self._lower_expr(stmt.value)
            self.builder.copy_to(self.vregs[symbol], value)
        elif isinstance(stmt, ast.ArrayAssignStmt):
            index = self._lower_expr(stmt.index)
            value = self._lower_expr(stmt.value)
            self.builder.store(stmt.array, index, value)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self._lower_expr(stmt.value) if stmt.value is not None else None
            self.builder.ret(value)
        elif isinstance(stmt, ast.BreakStmt):
            self.builder.jump(self.break_targets[-1])
        elif isinstance(stmt, ast.ContinueStmt):
            self.builder.jump(self.continue_targets[-1])
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        else:  # pragma: no cover - sema rejects everything else
            raise SemanticError(f"cannot lower {stmt!r}", stmt.line, stmt.column)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self.builder.new_block("then")
        join_block = self.builder.new_block("join")
        else_block = (
            self.builder.new_block("else") if stmt.else_body is not None else join_block
        )
        self.builder.branch(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self._lower_block(stmt.then_body)
        if not self.builder.terminated:
            self.builder.jump(join_block)

        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            self._lower_block(stmt.else_body)
            if not self.builder.terminated:
                self.builder.jump(join_block)

        self.builder.set_block(join_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.builder.new_block("while_head")
        body = self.builder.new_block("while_body")
        exit_block = self.builder.new_block("while_exit")
        self.builder.jump(header)

        self.builder.set_block(header)
        cond = self._lower_expr(stmt.cond)
        self.builder.branch(cond, body, exit_block)

        self.break_targets.append(exit_block)
        self.continue_targets.append(header)
        self.builder.set_block(body)
        self._lower_block(stmt.body)
        if not self.builder.terminated:
            self.builder.jump(header)
        self.break_targets.pop()
        self.continue_targets.pop()

        self.builder.set_block(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.builder.new_block("for_head")
        body = self.builder.new_block("for_body")
        step = self.builder.new_block("for_step")
        exit_block = self.builder.new_block("for_exit")
        self.builder.jump(header)

        self.builder.set_block(header)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self.builder.branch(cond, body, exit_block)
        else:
            self.builder.jump(body)

        self.break_targets.append(exit_block)
        self.continue_targets.append(step)
        self.builder.set_block(body)
        self._lower_block(stmt.body)
        if not self.builder.terminated:
            self.builder.jump(step)
        self.break_targets.pop()
        self.continue_targets.pop()

        self.builder.set_block(step)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self.builder.jump(header)

        self.builder.set_block(exit_block)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Optional[VReg]:
        if isinstance(expr, ast.IntLit):
            return self.builder.const(expr.value, INT)
        if isinstance(expr, ast.FloatLit):
            return self.builder.const(float(expr.value), expr.vtype)
        if isinstance(expr, ast.VarRef):
            return self.vregs[expr.symbol]  # type: ignore[attr-defined]
        if isinstance(expr, ast.ArrayRef):
            index = self._lower_expr(expr.index)
            assert expr.vtype is not None
            return self.builder.load(expr.array, index, expr.vtype)
        if isinstance(expr, ast.UnaryExpr):
            operand = self._lower_expr(expr.operand)
            assert operand is not None
            if expr.op == "-":
                return self.builder.unop(UnaryOpcode.NEG, operand)
            zero = self.builder.const(0, INT)
            return self.builder.binop(BinaryOpcode.EQ, operand, zero)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, want_value)
        raise SemanticError(  # pragma: no cover
            f"cannot lower {expr!r}", expr.line, expr.column
        )

    def _lower_binary(self, expr: ast.BinaryExpr) -> VReg:
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        assert lhs is not None and rhs is not None
        if expr.op in ("&&", "||"):
            lhs_bool = self._normalize_bool(lhs)
            rhs_bool = self._normalize_bool(rhs)
            op = BinaryOpcode.AND if expr.op == "&&" else BinaryOpcode.OR
            return self.builder.binop(op, lhs_bool, rhs_bool)
        return self.builder.binop(_BINOPS[expr.op], lhs, rhs)

    def _normalize_bool(self, value: VReg) -> VReg:
        zero = self.builder.const(0, INT)
        return self.builder.binop(BinaryOpcode.NE, value, zero)

    def _lower_call(self, expr: ast.CallExpr, want_value: bool) -> Optional[VReg]:
        if expr.callee in BUILTINS:
            arg = self._lower_expr(expr.args[0])
            assert arg is not None
            return self.builder.unop(_BUILTIN_OPS[expr.callee], arg)
        args = []
        for arg_expr in expr.args:
            arg = self._lower_expr(arg_expr)
            assert arg is not None
            args.append(arg)
        return_type = expr.vtype if (want_value or expr.vtype is not None) else None
        return self.builder.call(expr.callee, args, return_type)
