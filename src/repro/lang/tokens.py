"""Token definitions for the mini-C language."""

from __future__ import annotations

import enum
from typing import NamedTuple


class TokenKind(enum.Enum):
    # literals and identifiers
    INT_LIT = "int literal"
    FLOAT_LIT = "float literal"
    IDENT = "identifier"
    # keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    ASSIGN = "="
    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    BANG = "!"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    # end of file
    EOF = "end of input"


KEYWORDS = {
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
}


class Token(NamedTuple):
    """One lexed token with its source location (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"
