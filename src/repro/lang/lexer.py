"""Hand-written lexer for the mini-C language.

Supports ``//`` line comments and ``/* ... */`` block comments,
decimal integer literals, and float literals written with a decimal
point or exponent (``1.5``, ``2.0e-3``).
"""

from __future__ import annotations

from typing import List

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND_AND,
    "||": TokenKind.OR_OR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Turns source text into a list of tokens (EOF-terminated)."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError(
                            "unterminated block comment", start_line, start_col
                        )
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()
        if char.isdigit():
            return self._number(line, column)
        if char.isalpha() or char == "_":
            return self._identifier(line, column)
        two = char + self._peek(1)
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, line, column)
        if char in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[char], char, line, column)
        raise LexError(f"unexpected character {char!r}", line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, line, column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens."""
    return Lexer(source).tokenize()
