"""Recursive-descent parser for the mini-C language.

Grammar sketch (see tests/lang for worked examples)::

    unit        := (global_decl | func_decl)*
    global_decl := type IDENT '[' INT ']' ('=' '{' literals '}')? ';'
    func_decl   := (type | 'void') IDENT '(' params? ')' block
    stmt        := decl | simple ';' | if | while | for | return
                 | 'break' ';' | 'continue' ';' | block
    simple      := expr ('=' expr)?          -- assignment or call
    expr        := precedence-climbing over || && == != < <= > >= + - * / %

Assignments are parsed by reading a full expression and then, on
seeing ``=``, requiring the parsed expression to be a variable or
array element.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.types import FLOAT, INT, ValueType
from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

_TYPE_TOKENS = {TokenKind.KW_INT: INT, TokenKind.KW_FLOAT: FLOAT}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {token.text or token.kind.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        first = self._peek()
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FuncDecl] = []
        while not self._at(TokenKind.EOF):
            token = self._peek()
            if token.kind is TokenKind.KW_VOID:
                functions.append(self._func_decl())
            elif token.kind in _TYPE_TOKENS:
                # 'type IDENT [' is a global array; 'type IDENT (' a function.
                after_name = self._peek(2)
                if after_name.kind is TokenKind.LBRACKET:
                    globals_.append(self._global_decl())
                else:
                    functions.append(self._func_decl())
            else:
                raise ParseError(
                    f"expected declaration, found {token.text!r}",
                    token.line,
                    token.column,
                )
        return ast.TranslationUnit(first.line, first.column, globals_, functions)

    def _global_decl(self) -> ast.GlobalDecl:
        type_token = self._advance()
        elem_type = _TYPE_TOKENS[type_token.kind]
        name = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LBRACKET)
        size_token = self._expect(TokenKind.INT_LIT)
        self._expect(TokenKind.RBRACKET)
        init: Optional[List[float]] = None
        if self._accept(TokenKind.ASSIGN):
            self._expect(TokenKind.LBRACE)
            init = []
            if not self._at(TokenKind.RBRACE):
                init.append(self._literal_value())
                while self._accept(TokenKind.COMMA):
                    init.append(self._literal_value())
            self._expect(TokenKind.RBRACE)
        self._expect(TokenKind.SEMICOLON)
        return ast.GlobalDecl(
            type_token.line,
            type_token.column,
            elem_type,
            name.text,
            int(size_token.text),
            init,
        )

    def _literal_value(self) -> float:
        negative = self._accept(TokenKind.MINUS) is not None
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            value: float = int(token.text)
        elif token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            value = float(token.text)
        else:
            raise ParseError(
                f"expected literal, found {token.text!r}", token.line, token.column
            )
        return -value if negative else value

    def _func_decl(self) -> ast.FuncDecl:
        type_token = self._advance()
        if type_token.kind is TokenKind.KW_VOID:
            return_type: Optional[ValueType] = None
        else:
            return_type = _TYPE_TOKENS[type_token.kind]
        name = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._param())
            while self._accept(TokenKind.COMMA):
                params.append(self._param())
        self._expect(TokenKind.RPAREN)
        body = self._block()
        return ast.FuncDecl(
            type_token.line, type_token.column, name.text, return_type, params, body
        )

    def _param(self) -> ast.Param:
        type_token = self._peek()
        if type_token.kind not in _TYPE_TOKENS:
            raise ParseError(
                f"expected parameter type, found {type_token.text!r}",
                type_token.line,
                type_token.column,
            )
        self._advance()
        name = self._expect(TokenKind.IDENT)
        return ast.Param(
            type_token.line, type_token.column, _TYPE_TOKENS[type_token.kind], name.text
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _block(self) -> ast.Block:
        brace = self._expect(TokenKind.LBRACE)
        statements: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            statements.append(self._statement())
        self._expect(TokenKind.RBRACE)
        return ast.Block(brace.line, brace.column, statements)

    def _statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind in _TYPE_TOKENS:
            decl = self._decl_statement()
            self._expect(TokenKind.SEMICOLON)
            return decl
        if token.kind is TokenKind.KW_IF:
            return self._if_statement()
        if token.kind is TokenKind.KW_WHILE:
            return self._while_statement()
        if token.kind is TokenKind.KW_FOR:
            return self._for_statement()
        if token.kind is TokenKind.KW_RETURN:
            self._advance()
            value = None if self._at(TokenKind.SEMICOLON) else self._expression()
            self._expect(TokenKind.SEMICOLON)
            return ast.ReturnStmt(token.line, token.column, value)
        if token.kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMICOLON)
            return ast.BreakStmt(token.line, token.column)
        if token.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMICOLON)
            return ast.ContinueStmt(token.line, token.column)
        if token.kind is TokenKind.LBRACE:
            return self._block()
        stmt = self._simple_statement()
        self._expect(TokenKind.SEMICOLON)
        return stmt

    def _decl_statement(self) -> ast.DeclStmt:
        type_token = self._advance()
        name = self._expect(TokenKind.IDENT)
        init = self._expression() if self._accept(TokenKind.ASSIGN) else None
        return ast.DeclStmt(
            type_token.line,
            type_token.column,
            _TYPE_TOKENS[type_token.kind],
            name.text,
            init,
        )

    def _simple_statement(self) -> ast.Stmt:
        """An assignment or a bare expression (usually a call)."""
        token = self._peek()
        expr = self._expression()
        if self._accept(TokenKind.ASSIGN):
            value = self._expression()
            if isinstance(expr, ast.VarRef):
                return ast.AssignStmt(token.line, token.column, expr.name, value)
            if isinstance(expr, ast.ArrayRef):
                return ast.ArrayAssignStmt(
                    token.line, token.column, expr.array, expr.index, value
                )
            raise ParseError(
                "assignment target must be a variable or array element",
                token.line,
                token.column,
            )
        return ast.ExprStmt(token.line, token.column, expr)

    def _if_statement(self) -> ast.IfStmt:
        token = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self._expression()
        self._expect(TokenKind.RPAREN)
        then_body = self._block()
        else_body: Optional[ast.Block] = None
        if self._accept(TokenKind.KW_ELSE):
            if self._at(TokenKind.KW_IF):
                # 'else if' chains: wrap the nested if in a block.
                nested = self._if_statement()
                else_body = ast.Block(nested.line, nested.column, [nested])
            else:
                else_body = self._block()
        return ast.IfStmt(token.line, token.column, cond, then_body, else_body)

    def _while_statement(self) -> ast.WhileStmt:
        token = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._expression()
        self._expect(TokenKind.RPAREN)
        body = self._block()
        return ast.WhileStmt(token.line, token.column, cond, body)

    def _for_statement(self) -> ast.ForStmt:
        token = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self._at(TokenKind.SEMICOLON):
            if self._peek().kind in _TYPE_TOKENS:
                init = self._decl_statement()
            else:
                init = self._simple_statement()
        self._expect(TokenKind.SEMICOLON)
        cond = None if self._at(TokenKind.SEMICOLON) else self._expression()
        self._expect(TokenKind.SEMICOLON)
        step = None if self._at(TokenKind.RPAREN) else self._simple_statement()
        self._expect(TokenKind.RPAREN)
        body = self._block()
        return ast.ForStmt(token.line, token.column, init, cond, step, body)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    _PRECEDENCE = [
        {TokenKind.OR_OR: "||"},
        {TokenKind.AND_AND: "&&"},
        {TokenKind.EQ: "==", TokenKind.NE: "!="},
        {
            TokenKind.LT: "<",
            TokenKind.LE: "<=",
            TokenKind.GT: ">",
            TokenKind.GE: ">=",
        },
        {TokenKind.PLUS: "+", TokenKind.MINUS: "-"},
        {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"},
    ]

    def _expression(self, level: int = 0) -> ast.Expr:
        if level == len(self._PRECEDENCE):
            return self._unary()
        ops = self._PRECEDENCE[level]
        expr = self._expression(level + 1)
        while self._peek().kind in ops:
            op_token = self._advance()
            rhs = self._expression(level + 1)
            expr = ast.BinaryExpr(
                op_token.line, op_token.column, ops[op_token.kind], expr, rhs
            )
        return expr

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnaryExpr(token.line, token.column, "-", self._unary())
        if token.kind is TokenKind.BANG:
            self._advance()
            return ast.UnaryExpr(token.line, token.column, "!", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(token.line, token.column, int(token.text))
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(token.line, token.column, float(token.text))
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._accept(TokenKind.LPAREN):
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._expression())
                    while self._accept(TokenKind.COMMA):
                        args.append(self._expression())
                self._expect(TokenKind.RPAREN)
                return ast.CallExpr(token.line, token.column, token.text, args)
            if self._accept(TokenKind.LBRACKET):
                index = self._expression()
                self._expect(TokenKind.RBRACKET)
                return ast.ArrayRef(token.line, token.column, token.text, index)
            return ast.VarRef(token.line, token.column, token.text)
        raise ParseError(
            f"expected expression, found {token.text or token.kind.value!r}",
            token.line,
            token.column,
        )


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source text into an AST."""
    return Parser(tokenize(source)).parse_unit()
