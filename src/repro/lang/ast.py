"""Abstract syntax tree for the mini-C language.

Every node carries its source line/column for diagnostics.  Expression
nodes gain a ``vtype`` attribute during semantic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.types import ValueType


@dataclass
class Node:
    line: int
    column: int


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


@dataclass
class Expr(Node):
    #: Filled in by semantic analysis.
    vtype: Optional[ValueType] = field(default=None, init=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class ArrayRef(Expr):
    array: str
    index: Expr


@dataclass
class UnaryExpr(Expr):
    op: str  # "-" or "!"
    operand: Expr


@dataclass
class BinaryExpr(Expr):
    op: str  # one of + - * / % == != < <= > >= && ||
    lhs: Expr
    rhs: Expr


@dataclass
class CallExpr(Expr):
    callee: str
    args: List[Expr]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class DeclStmt(Stmt):
    decl_type: ValueType
    name: str
    init: Optional[Expr]


@dataclass
class AssignStmt(Stmt):
    name: str
    value: Expr


@dataclass
class ArrayAssignStmt(Stmt):
    array: str
    index: Expr
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: "Block"
    else_body: Optional["Block"]


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: "Block"


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: "Block"


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: List[Stmt]


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------


@dataclass
class Param(Node):
    param_type: ValueType
    name: str


@dataclass
class FuncDecl(Node):
    name: str
    return_type: Optional[ValueType]  # None == void
    params: List[Param]
    body: Block


@dataclass
class GlobalDecl(Node):
    elem_type: ValueType
    name: str
    size: int
    init: Optional[List[float]]


@dataclass
class TranslationUnit(Node):
    globals: List[GlobalDecl]
    functions: List[FuncDecl]
