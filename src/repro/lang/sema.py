"""Semantic analysis for mini-C.

Checks scopes, types, arity and control-flow placement, annotates
every expression node with its ``vtype``, and resolves every variable
reference to a unique :class:`VarSymbol` so the lowering phase can
map symbols to virtual registers even in the presence of shadowing.

Two builtin conversion functions are provided instead of implicit
coercions: ``itof(int) -> float`` and ``ftoi(float) -> int``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.types import FLOAT, INT, ValueType
from repro.lang import ast
from repro.lang.errors import SemanticError

#: Builtin conversions: name -> (parameter type, return type).
BUILTINS: Dict[str, Tuple[ValueType, ValueType]] = {
    "itof": (INT, FLOAT),
    "ftoi": (FLOAT, INT),
}


@dataclass(frozen=True)
class VarSymbol:
    """One declared variable (parameter or local)."""

    name: str
    vtype: ValueType
    uid: int


@dataclass(frozen=True)
class FuncSignature:
    name: str
    param_types: Tuple[ValueType, ...]
    return_type: Optional[ValueType]


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, VarSymbol] = {}

    def declare(self, symbol: VarSymbol, node: ast.Node) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(
                f"redeclaration of {symbol.name!r}", node.line, node.column
            )
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[VarSymbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class Analyzer:
    """Single-pass semantic analyzer (functions may call forward)."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals: Dict[str, ast.GlobalDecl] = {}
        self.functions: Dict[str, FuncSignature] = {}
        self._next_uid = 0

    def analyze(self) -> None:
        for decl in self.unit.globals:
            if decl.name in self.globals:
                raise SemanticError(
                    f"redeclaration of global {decl.name!r}", decl.line, decl.column
                )
            self.globals[decl.name] = decl
        for func in self.unit.functions:
            if func.name in self.functions or func.name in BUILTINS:
                raise SemanticError(
                    f"redeclaration of function {func.name!r}", func.line, func.column
                )
            self.functions[func.name] = FuncSignature(
                func.name,
                tuple(p.param_type for p in func.params),
                func.return_type,
            )
        for func in self.unit.functions:
            self._check_function(func)

    # ------------------------------------------------------------------

    def _new_symbol(self, name: str, vtype: ValueType) -> VarSymbol:
        self._next_uid += 1
        return VarSymbol(name, vtype, self._next_uid)

    def _check_function(self, func: ast.FuncDecl) -> None:
        scope = _Scope()
        for param in func.params:
            symbol = self._new_symbol(param.name, param.param_type)
            scope.declare(symbol, param)
            param.symbol = symbol  # type: ignore[attr-defined]
        self._check_block(func.body, scope, func, loop_depth=0)

    def _check_block(
        self, block: ast.Block, parent: _Scope, func: ast.FuncDecl, loop_depth: int
    ) -> None:
        scope = _Scope(parent)
        for stmt in block.statements:
            self._check_stmt(stmt, scope, func, loop_depth)

    def _check_stmt(
        self, stmt: ast.Stmt, scope: _Scope, func: ast.FuncDecl, loop_depth: int
    ) -> None:
        if isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                init_type = self._check_expr(stmt.init, scope)
                if init_type is not stmt.decl_type:
                    raise SemanticError(
                        f"initializing {stmt.decl_type} variable {stmt.name!r} "
                        f"with {init_type} value",
                        stmt.line,
                        stmt.column,
                    )
            symbol = self._new_symbol(stmt.name, stmt.decl_type)
            scope.declare(symbol, stmt)
            stmt.symbol = symbol  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.AssignStmt):
            symbol = scope.lookup(stmt.name)
            if symbol is None:
                raise SemanticError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.line,
                    stmt.column,
                )
            value_type = self._check_expr(stmt.value, scope)
            if value_type is not symbol.vtype:
                raise SemanticError(
                    f"assigning {value_type} value to {symbol.vtype} "
                    f"variable {stmt.name!r}",
                    stmt.line,
                    stmt.column,
                )
            stmt.symbol = symbol  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.ArrayAssignStmt):
            array = self._lookup_array(stmt.array, stmt)
            index_type = self._check_expr(stmt.index, scope)
            if index_type is not INT:
                raise SemanticError(
                    f"array index must be int, got {index_type}",
                    stmt.line,
                    stmt.column,
                )
            value_type = self._check_expr(stmt.value, scope)
            if value_type is not array.elem_type:
                raise SemanticError(
                    f"storing {value_type} value into {array.elem_type} "
                    f"array {stmt.array!r}",
                    stmt.line,
                    stmt.column,
                )
        elif isinstance(stmt, ast.IfStmt):
            self._check_condition(stmt.cond, scope)
            self._check_block(stmt.then_body, scope, func, loop_depth)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope, func, loop_depth)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_condition(stmt.cond, scope)
            self._check_block(stmt.body, scope, func, loop_depth + 1)
        elif isinstance(stmt, ast.ForStmt):
            # The init clause may declare a variable scoped to the loop.
            for_scope = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, for_scope, func, loop_depth)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, for_scope)
            if stmt.step is not None:
                self._check_stmt(stmt.step, for_scope, func, loop_depth + 1)
            self._check_block(stmt.body, for_scope, func, loop_depth + 1)
        elif isinstance(stmt, ast.ReturnStmt):
            if func.return_type is None:
                if stmt.value is not None:
                    raise SemanticError(
                        f"void function {func.name!r} returns a value",
                        stmt.line,
                        stmt.column,
                    )
            else:
                if stmt.value is None:
                    raise SemanticError(
                        f"non-void function {func.name!r} returns nothing",
                        stmt.line,
                        stmt.column,
                    )
                value_type = self._check_expr(stmt.value, scope)
                if value_type is not func.return_type:
                    raise SemanticError(
                        f"returning {value_type} from {func.return_type} "
                        f"function {func.name!r}",
                        stmt.line,
                        stmt.column,
                    )
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if loop_depth == 0:
                word = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
                raise SemanticError(
                    f"{word} outside of a loop", stmt.line, stmt.column
                )
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, allow_void=True)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, func, loop_depth)
        else:  # pragma: no cover - parser produces no other statements
            raise SemanticError(f"unknown statement {stmt!r}", stmt.line, stmt.column)

    def _check_condition(self, expr: ast.Expr, scope: _Scope) -> None:
        cond_type = self._check_expr(expr, scope)
        if cond_type is not INT:
            raise SemanticError(
                f"condition must be int, got {cond_type}", expr.line, expr.column
            )

    def _lookup_array(self, name: str, node: ast.Node) -> ast.GlobalDecl:
        array = self.globals.get(name)
        if array is None:
            raise SemanticError(f"unknown array {name!r}", node.line, node.column)
        return array

    # ------------------------------------------------------------------

    def _check_expr(
        self, expr: ast.Expr, scope: _Scope, allow_void: bool = False
    ) -> Optional[ValueType]:
        vtype = self._expr_type(expr, scope, allow_void)
        expr.vtype = vtype
        return vtype

    def _expr_type(
        self, expr: ast.Expr, scope: _Scope, allow_void: bool
    ) -> Optional[ValueType]:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.VarRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemanticError(
                    f"unknown variable {expr.name!r}", expr.line, expr.column
                )
            expr.symbol = symbol  # type: ignore[attr-defined]
            return symbol.vtype
        if isinstance(expr, ast.ArrayRef):
            array = self._lookup_array(expr.array, expr)
            index_type = self._check_expr(expr.index, scope)
            if index_type is not INT:
                raise SemanticError(
                    f"array index must be int, got {index_type}",
                    expr.line,
                    expr.column,
                )
            return array.elem_type
        if isinstance(expr, ast.UnaryExpr):
            operand_type = self._check_expr(expr.operand, scope)
            if expr.op == "!" and operand_type is not INT:
                raise SemanticError(
                    "operator '!' requires an int operand", expr.line, expr.column
                )
            return INT if expr.op == "!" else operand_type
        if isinstance(expr, ast.BinaryExpr):
            lhs = self._check_expr(expr.lhs, scope)
            rhs = self._check_expr(expr.rhs, scope)
            if lhs is not rhs:
                raise SemanticError(
                    f"operator {expr.op!r} applied to {lhs} and {rhs} "
                    "(use itof/ftoi to convert)",
                    expr.line,
                    expr.column,
                )
            if expr.op in ("&&", "||", "%") and lhs is not INT:
                raise SemanticError(
                    f"operator {expr.op!r} requires int operands",
                    expr.line,
                    expr.column,
                )
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return INT
            return lhs
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, scope, allow_void)
        raise SemanticError(  # pragma: no cover - parser exhausts Expr kinds
            f"unknown expression {expr!r}", expr.line, expr.column
        )

    def _check_call(
        self, expr: ast.CallExpr, scope: _Scope, allow_void: bool
    ) -> Optional[ValueType]:
        if expr.callee in BUILTINS:
            param_type, return_type = BUILTINS[expr.callee]
            if len(expr.args) != 1:
                raise SemanticError(
                    f"{expr.callee} takes exactly one argument",
                    expr.line,
                    expr.column,
                )
            arg_type = self._check_expr(expr.args[0], scope)
            if arg_type is not param_type:
                raise SemanticError(
                    f"{expr.callee} requires a {param_type} argument",
                    expr.line,
                    expr.column,
                )
            return return_type
        signature = self.functions.get(expr.callee)
        if signature is None:
            raise SemanticError(
                f"call to unknown function {expr.callee!r}", expr.line, expr.column
            )
        if len(expr.args) != len(signature.param_types):
            raise SemanticError(
                f"{expr.callee} expects {len(signature.param_types)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
                expr.column,
            )
        for arg, expected in zip(expr.args, signature.param_types):
            arg_type = self._check_expr(arg, scope)
            if arg_type is not expected:
                raise SemanticError(
                    f"argument of type {arg_type} where {expected} expected "
                    f"in call to {expr.callee!r}",
                    expr.line,
                    expr.column,
                )
        if signature.return_type is None and not allow_void:
            raise SemanticError(
                f"void function {expr.callee!r} used as a value",
                expr.line,
                expr.column,
            )
        return signature.return_type


def analyze(unit: ast.TranslationUnit) -> Analyzer:
    """Type-check ``unit`` in place; returns the analyzer for its tables."""
    analyzer = Analyzer(unit)
    analyzer.analyze()
    return analyzer
