"""SLO accounting: availability and latency vs. configurable targets.

One :class:`SLOTracker` per server instance.  Every finished request
is recorded with its availability verdict and latency; the tracker
answers with the three numbers an operator actually pages on:

* **availability** — the fraction of requests that did not fail with
  a server-side error.  Backpressure answers (429) and open-breaker
  refusals (503 with Retry-After) count *against* availability only
  when ``strict`` is set: by default they are the system protecting
  itself, not failing — the same stance the loadgen takes when it
  retries them.  Supervisor-degraded 200s count as available (the
  client got a correct allocation) but are tallied separately so a
  degraded-but-up service is visible.
* **p50 / p99 latency** — estimated from the same bucketed histogram
  the labeled metrics use, compared against target milliseconds.
* **error budget** — how much of the allowed unavailability
  (``1 - availability_target``) this window has already burned.

The report lands on ``/metrics`` (JSON and Prometheus) and in the
loadgen summary, so client-observed and server-observed SLO
compliance can be compared side by side.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict

from repro.obs.metrics import BucketedData


@dataclass(frozen=True)
class SLOTargets:
    """The service-level objectives one tracker scores against."""

    availability: float = 0.999
    p50_ms: float = 50.0
    p99_ms: float = 500.0
    #: Count throttles/breaker refusals against availability.
    strict: bool = False


class SLOTracker:
    """Thread-safe accumulation of one serving window's SLO inputs."""

    def __init__(self, targets: SLOTargets = SLOTargets()) -> None:
        self.targets = targets
        self._lock = threading.Lock()
        self._total = 0
        self._unavailable = 0
        self._throttled = 0
        self._degraded = 0
        self._latency = BucketedData()

    def record(
        self,
        status: int,
        latency_ms: float,
        degraded: bool = False,
        throttled: bool = False,
    ) -> None:
        """Account one finished request.

        ``throttled`` marks self-protection answers (429, breaker
        503s); ``degraded`` marks successful-but-fallback responses.
        Only 5xx responses that are *not* throttles burn availability
        unless the targets are strict.
        """
        with self._lock:
            self._total += 1
            if throttled:
                self._throttled += 1
                if self.targets.strict:
                    self._unavailable += 1
            elif status >= 500:
                self._unavailable += 1
            if degraded:
                self._degraded += 1
            # Latency only for answered requests; a refusal's sub-ms
            # turnaround would flatter the percentiles it never served.
            if not throttled:
                self._latency = self._latency.observe(latency_ms)

    def report(self) -> Dict[str, Any]:
        """The JSON-ready SLO scorecard for this window."""
        with self._lock:
            total = self._total
            unavailable = self._unavailable
            throttled = self._throttled
            degraded = self._degraded
            latency = self._latency
        availability = 1.0 if total == 0 else (total - unavailable) / total
        p50 = latency.quantile(0.50)
        p99 = latency.quantile(0.99)
        budget = 1.0 - self.targets.availability
        burned = (1.0 - availability) / budget if budget > 0 else 0.0
        return {
            "requests": total,
            "unavailable": unavailable,
            "throttled": throttled,
            "degraded": degraded,
            "availability": round(availability, 6),
            "availability_target": self.targets.availability,
            "availability_met": availability >= self.targets.availability,
            "p50_ms": round(p50, 3),
            "p50_target_ms": self.targets.p50_ms,
            "p50_met": p50 <= self.targets.p50_ms,
            "p99_ms": round(p99, 3),
            "p99_target_ms": self.targets.p99_ms,
            "p99_met": p99 <= self.targets.p99_ms,
            "error_budget_burned": round(min(burned, 1.0), 6)
            if total
            else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._total = 0
            self._unavailable = 0
            self._throttled = 0
            self._degraded = 0
            self._latency = BucketedData()
