"""Structured JSONL logging with size-based rotation.

The server's access/event log: one JSON object per line, one line per
record, appended synchronously (records are small and the serving
path is CPU-bound on allocation work, not on a ~200-byte write).
When the active file crosses ``max_bytes`` it rotates shift-style —
``access.jsonl`` → ``access.jsonl.1`` → ``access.jsonl.2`` … — so
total disk use is bounded by ``max_bytes * (backups + 1)``.

Every record is stamped with ``ts`` (epoch seconds) and the emitting
``pid``; the caller supplies everything else (trace IDs, method,
path, status, latency, outcome).  Thread-safe: the asyncio loop and
supervisor dispatcher threads may log concurrently.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional


class JsonlLogger:
    """Append-only JSONL writer with shift rotation."""

    def __init__(
        self,
        path,
        max_bytes: int = 5 * 1024 * 1024,
        backups: int = 2,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = max(0, backups)
        self._lock = threading.Lock()
        self.written = 0
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def log(self, record: Dict[str, Any]) -> None:
        """Append one record (stamped with ``ts`` and ``pid``)."""
        stamped = {"ts": time.time(), "pid": os.getpid(), **record}
        line = json.dumps(stamped, sort_keys=True) + "\n"
        with self._lock:
            self._maybe_rotate(len(line))
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)
            self.written += 1

    def _maybe_rotate(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        self.rotations += 1
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
            return
        oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
        oldest.unlink(missing_ok=True)
        for index in range(self.backups - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{index}")
            if source.exists():
                source.rename(
                    self.path.with_name(f"{self.path.name}.{index + 1}")
                )
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": str(self.path),
                "written": self.written,
                "rotations": self.rotations,
            }


def open_access_log(path: Optional[str], **kwargs) -> Optional[JsonlLogger]:
    """A logger for ``path``, or None when logging is off."""
    if not path:
        return None
    return JsonlLogger(path, **kwargs)
