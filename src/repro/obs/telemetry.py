"""Request-scoped telemetry: trace IDs and cross-process span trees.

The serving stack spans several failure domains — the asyncio HTTP
front end, the supervisor's dispatcher threads, forked worker
subprocesses, and the engine pipeline inside them — and a slow or
degraded answer is only explainable if every domain contributes its
part of the story under one identity.  This module is that identity:

* A **trace ID** is minted at HTTP ingress (or adopted from an
  ``X-Repro-Trace-Id`` header) and travels with the request through
  the admission queue, the supervisor pipe protocol and into the
  worker, stamped onto the PR 3 :class:`~repro.obs.tracer.Tracer` so
  decision events and engine phase spans carry it too.
* A :class:`Span` is one timed region in one process.  Spans form a
  tree via ``parent_id``; the vocabulary is small and stable:
  ``ingress`` (the whole HTTP request, parent side) → ``queue-wait``
  (bulkhead/admission queue) → ``dispatch`` (one attempt at a worker,
  one span *per attempt* so retries stay visible) → ``worker-exec``
  (one engine submit inside the worker subprocess) →
  ``engine:<phase>`` (the pipeline phases of PR 3's tracer), plus
  ``degrade-inline`` for the supervisor's last-resort fallback.
* Worker-side spans cross the pipe as plain dicts inside the wire
  body and are **merged parent-side**: :func:`reparent` hangs the
  worker's root spans under the dispatch span that ran them, and
  :func:`dedupe_spans` makes the merge idempotent when one job's
  spans are echoed on several batch outcomes.

Timestamps are wall-clock epoch seconds (``time.time()``), durations
``perf_counter`` deltas — the same convention as
:class:`~repro.obs.tracer.PhaseSpan`, so spans from every process on
one machine land on one timeline and export through the same
Chrome/Perfetto path (:func:`repro.obs.export.write_chrome_trace`).

Untraced requests pay ~nothing: every hook in the serving stack is
guarded by ``if trace_id is None`` exactly like the decision tracer's
``wants_events`` guard, and no span object is ever constructed for
them (see ``benchmarks/test_telemetry_overhead.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Request/response header carrying the trace identity.
TRACE_HEADER = "x-repro-trace-id"

#: The stable span-name vocabulary, outermost first.  ``engine:*``
#: expands to one span per pipeline phase per allocated function.
SPAN_NAMES = (
    "ingress",
    "queue-wait",
    "dispatch",
    "worker-exec",
    "engine-cache",
    "degrade-inline",
)


def mint_trace_id() -> str:
    """A fresh 64-bit hex trace identity."""
    return os.urandom(8).hex()


def mint_span_id() -> str:
    """A fresh 32-bit hex span identity (unique within a trace)."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class Span:
    """One timed region of one request, in one process."""

    trace_id: str
    span_id: str
    name: str
    #: Wall-clock start, epoch seconds (cross-process alignment).
    start: float
    #: Duration in seconds (``perf_counter`` delta).
    duration: float
    pid: int
    parent_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": round(self.duration * 1000.0, 3),
            "pid": self.pid,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            name=record["name"],
            start=record["start"],
            duration=record.get("duration_ms", 0.0) / 1000.0,
            pid=record.get("pid", 0),
            parent_id=record.get("parent_id"),
            attrs=dict(record.get("attrs", {})),
        )


class SpanClock:
    """Start/finish bookkeeping for spans opened in this process.

    One instance per request *per process*; not thread-safe (each
    dispatcher thread and each worker owns its own).  ``begin``
    returns a token; ``end`` turns it into an immutable :class:`Span`.
    """

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id

    def begin(
        self, name: str, parent_id: Optional[str] = None
    ) -> Dict[str, Any]:
        return {
            "name": name,
            "parent_id": parent_id,
            "span_id": mint_span_id(),
            "wall": time.time(),
            "perf": time.perf_counter(),
        }

    def end(self, token: Dict[str, Any], **attrs: Any) -> Span:
        return Span(
            trace_id=self.trace_id,
            span_id=token["span_id"],
            name=token["name"],
            start=token["wall"],
            duration=time.perf_counter() - token["perf"],
            pid=os.getpid(),
            parent_id=token["parent_id"],
            attrs=attrs,
        )

    def point(
        self,
        name: str,
        start: float,
        duration: float,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """A span from already-measured begin/duration numbers."""
        return Span(
            trace_id=self.trace_id,
            span_id=mint_span_id(),
            name=name,
            start=start,
            duration=duration,
            pid=os.getpid(),
            parent_id=parent_id,
            attrs=attrs,
        )


def spans_from_phases(
    trace_id: str, parent_id: Optional[str], phase_spans: Sequence
) -> List[Span]:
    """Engine ``engine:<phase>`` spans from PR 3 tracer phase spans.

    Each :class:`~repro.obs.tracer.PhaseSpan` (wall start + duration,
    emitted in the allocating process) becomes one child of the
    worker-exec span that ran the engine, keeping function and
    iteration as attributes.
    """
    spans = []
    for phase in phase_spans:
        spans.append(
            Span(
                trace_id=trace_id,
                span_id=mint_span_id(),
                name=f"engine:{phase.name}",
                start=phase.start,
                duration=phase.duration,
                pid=phase.pid,
                parent_id=parent_id,
                attrs={
                    "function": phase.function,
                    "iteration": phase.iteration,
                },
            )
        )
    return spans


def reparent(
    spans: Iterable[Dict[str, Any]], parent_id: str
) -> List[Dict[str, Any]]:
    """Hang another process's root spans under ``parent_id``.

    Worker-side spans arrive with their own internal structure
    (worker-exec roots, engine phases below); the parent attaches the
    roots to the dispatch span that ran that worker attempt, giving
    one connected per-request tree.  Operates on span *dicts* (the
    wire form) and returns new dicts; non-roots pass through.
    """
    merged = []
    for record in spans:
        if record.get("parent_id") is None:
            record = {**record, "parent_id": parent_id}
        merged.append(record)
    return merged


def dedupe_spans(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Drop duplicate span dicts by span_id, keeping first occurrence.

    Job-level spans (queue-wait, dispatch) are echoed on every outcome
    of a batch job so no single body is privileged; merging the bodies
    back into one tree must not double-count them.
    """
    seen = set()
    unique = []
    for record in spans:
        span_id = record.get("span_id")
        if span_id in seen:
            continue
        seen.add(span_id)
        unique.append(record)
    return unique


def span_tree(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest span dicts into ``{span..., "children": [...]}`` trees.

    Returns the list of roots ordered by start time; orphans (a
    parent_id that matches no span — e.g. a worker killed before its
    parent span closed) are promoted to roots rather than dropped, so
    a partial story still renders.
    """
    by_id = {record["span_id"]: {**record, "children": []} for record in spans}
    roots = []
    for record in spans:
        node = by_id[record["span_id"]]
        parent = by_id.get(record.get("parent_id"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in by_id.values():
        node["children"].sort(key=lambda child: child.get("start", 0.0))
    roots.sort(key=lambda node: node.get("start", 0.0))
    return roots


def breakdown(spans: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """The compact per-request latency decomposition (milliseconds).

    ``queue_ms`` sums queue-wait spans, ``dispatch_ms`` the dispatch
    attempts, ``service_ms`` worker-exec plus inline fallback work,
    ``engine_ms`` the engine phases inside them; ``total_ms`` is the
    ingress span when present.  This is what every JSON response
    echoes and what the loadgen report aggregates.
    """
    sums: Dict[str, float] = {}
    for record in spans:
        name = record.get("name", "")
        duration = float(record.get("duration_ms", 0.0))
        if name == "ingress":
            sums["total_ms"] = sums.get("total_ms", 0.0) + duration
        elif name == "queue-wait":
            sums["queue_ms"] = sums.get("queue_ms", 0.0) + duration
        elif name == "dispatch":
            sums["dispatch_ms"] = sums.get("dispatch_ms", 0.0) + duration
        elif name in ("worker-exec", "degrade-inline", "engine-cache"):
            sums["service_ms"] = sums.get("service_ms", 0.0) + duration
        elif name.startswith("engine:"):
            sums["engine_ms"] = sums.get("engine_ms", 0.0) + duration
    return {key: round(value, 3) for key, value in sorted(sums.items())}


def attempt_outcomes(spans: Sequence[Dict[str, Any]]) -> List[str]:
    """The per-attempt outcomes, in attempt order (continuity checks).

    Each dispatch span carries ``attrs.outcome`` (``ok``, ``crash``,
    ``watchdog``, ``garbage``, ``send-failed``); a request that
    survived a worker kill shows ``["crash", "ok"]`` here.
    """
    attempts = [
        record
        for record in spans
        if record.get("name") == "dispatch"
    ]
    attempts.sort(key=lambda record: record.get("attrs", {}).get("attempt", 0))
    return [
        record.get("attrs", {}).get("outcome", "unknown")
        for record in attempts
    ]
