"""The decision-event tracer.

One :class:`Tracer` records two streams from an allocation run:

* **Decision events** (:class:`DecisionEvent`) — every choice the
  allocator makes: simplify pops with their key, color choices with
  both benefit values, voluntary spills with their justification,
  shared-model deferrals and resolutions, coalesces, spill-code and
  save/restore placements.  Events are stamped with the function,
  iteration and phase in effect when they were emitted, so the stream
  is self-describing and replayable.
* **Phase spans** (:class:`PhaseSpan`) — wall-clock begin/duration of
  each pipeline phase, tagged with the emitting process id; spans from
  parallel sweep workers combine into one Chrome trace.

The tracer is *opt-in*: every decision site takes ``tracer=None`` and
guards emission with ``if tracer is not None and tracer.wants_events``,
so untraced runs pay a single attribute check per site and construct
no event objects.  :class:`NullTracer` accepts every call and records
nothing — it exists to measure exactly that guard cost (see
``benchmarks/test_tracer_overhead.py``) and as a sink for callers that
want unconditional call sites.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


def _json_safe(value: Any) -> Any:
    """Coerce event detail values to JSON-serializable primitives."""
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        # JSON has no inf/nan literals; strings keep the stream loadable
        # by any parser (unspillable ranges have infinite spill cost).
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [_json_safe(v) for v in items]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


@dataclass
class DecisionEvent:
    """One structured allocation decision.

    ``lr`` is the textual rendering of the live range the decision is
    about (``repr`` of its :class:`~repro.ir.values.VReg`), or None
    for function-level events.  ``detail`` carries the kind-specific
    payload with JSON-safe values only.
    """

    seq: int
    kind: str
    function: str
    iteration: int
    phase: str
    lr: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "function": self.function,
            "iteration": self.iteration,
            "phase": self.phase,
        }
        if self.lr is not None:
            record["lr"] = self.lr
        if self.detail:
            record["detail"] = self.detail
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)


@dataclass(frozen=True)
class PhaseSpan:
    """One timed pipeline-phase execution (Chrome trace "X" event)."""

    name: str
    function: str
    iteration: int
    #: Wall-clock start, seconds since the epoch (aligns spans emitted
    #: by different worker processes on one machine).
    start: float
    #: Duration in seconds (measured with ``perf_counter``).
    duration: float
    pid: int
    #: Request trace identity when this span was produced serving a
    #: telemetered request (see :mod:`repro.obs.telemetry`); None for
    #: CLI/sweep tracing, which predates request scoping.
    trace_id: Optional[str] = None


class Tracer:
    """Records decision events and phase spans from one allocation run.

    The framework drives the context (:meth:`begin_function`,
    :meth:`begin_iteration`, :meth:`begin_phase`); decision sites only
    call :meth:`emit` with their kind and payload, and the tracer
    stamps the context on.  ``record_events`` / ``record_spans``
    switch either stream off; a span-only tracer is what the traced
    sweep uses, so per-decision payloads never cross process
    boundaries.
    """

    def __init__(
        self,
        record_events: bool = True,
        record_spans: bool = True,
        trace_id: Optional[str] = None,
    ):
        self.events: List[DecisionEvent] = []
        self.spans: List[PhaseSpan] = []
        self.wants_events = record_events
        self.wants_spans = record_spans
        #: Request trace identity stamped on every span (and carried
        #: by the tracer for event-stream consumers); None outside the
        #: serving stack.
        self.trace_id = trace_id
        self._function = ""
        self._iteration = 0
        self._phase = ""
        self._seq = 0

    # ------------------------------------------------------------------
    # context, driven by the framework
    # ------------------------------------------------------------------

    def begin_function(self, name: str) -> None:
        self._function = name
        self._iteration = 0
        self._phase = ""

    def begin_iteration(self, iteration: int) -> None:
        self._iteration = iteration

    def begin_phase(self, name: str) -> None:
        self._phase = name

    # ------------------------------------------------------------------
    # the two streams
    # ------------------------------------------------------------------

    def emit(self, kind: str, lr: Any = None, **detail: Any) -> None:
        """Record one decision event in the current context."""
        if not self.wants_events:
            return
        self.events.append(
            DecisionEvent(
                seq=self._seq,
                kind=kind,
                function=self._function,
                iteration=self._iteration,
                phase=self._phase,
                lr=None if lr is None else repr(lr),
                detail={k: _json_safe(v) for k, v in detail.items()},
            )
        )
        self._seq += 1

    def add_span(self, name: str, start: float, duration: float) -> None:
        """Record one completed phase span (``start`` is epoch seconds)."""
        if not self.wants_spans:
            return
        self.spans.append(
            PhaseSpan(
                name=name,
                function=self._function,
                iteration=self._iteration,
                start=start,
                duration=duration,
                pid=os.getpid(),
                trace_id=self.trace_id,
            )
        )

    # ------------------------------------------------------------------
    # queries (the explain layer is built on these)
    # ------------------------------------------------------------------

    def events_for(
        self,
        function: Optional[str] = None,
        lr: Optional[str] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> Iterator[DecisionEvent]:
        """Events filtered by function, live range and/or kind."""
        wanted = None if kinds is None else frozenset(kinds)
        for event in self.events:
            if function is not None and event.function != function:
                continue
            if lr is not None and event.lr != lr:
                continue
            if wanted is not None and event.kind not in wanted:
                continue
            yield event

    def functions(self) -> List[str]:
        """Function names that emitted at least one event, in order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.function, None)
        return list(seen)

    def write_jsonl(self, path) -> int:
        """Write the event stream as JSONL; returns the event count."""
        from repro.obs.export import write_events_jsonl

        return write_events_jsonl(path, self.events)


class NullTracer(Tracer):
    """A tracer that accepts everything and records nothing.

    ``wants_events`` / ``wants_spans`` are False, so guarded decision
    sites skip even event construction; unguarded calls land in the
    overridden no-op recorders.
    """

    def __init__(self) -> None:
        super().__init__(record_events=False, record_spans=False)

    def emit(self, kind: str, lr: Any = None, **detail: Any) -> None:
        pass

    def add_span(self, name: str, start: float, duration: float) -> None:
        pass


def wall_clock() -> float:
    """Epoch-seconds timestamp used for span starts (one place to mock)."""
    return time.time()
