"""The flight recorder: bounded in-memory retention of span trees.

Production postmortems never need *every* request — they need the
interesting ones, and they need them after the fact.  The recorder
keeps four bounded views over finished requests:

* **recent** — a ring of the last N requests of any kind (the working
  set a `/debug/requests` glance shows);
* **slowest** — the N highest-latency requests seen so far (evicting
  the fastest member when full, so the worst offenders survive long
  after the recent ring has wrapped);
* **degraded** — requests the supervisor answered from its inline
  fallback, or that record worker faults on the way;
* **faulted** — requests that ended in a 5xx or carry an error body.

Each entry holds the request's *full* span tree plus a summary row,
so the recorder is the authoritative place a trace ID resolves to —
the JSON response only echoes the compact breakdown.  Lookup is by
trace ID across all four views.  Everything is under one lock; the
recorder is written from the asyncio loop and read from debug
endpoints concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.telemetry import breakdown, span_tree


class FlightEntry:
    """One recorded request: summary row plus full spans."""

    __slots__ = (
        "trace_id", "path", "status", "outcome", "duration_ms", "preset",
        "degraded", "faulted", "spans", "recorded_at",
    )

    def __init__(
        self,
        trace_id: str,
        path: str,
        status: int,
        outcome: str,
        duration_ms: float,
        preset: Optional[str],
        degraded: bool,
        faulted: bool,
        spans: Sequence[Dict[str, Any]],
    ) -> None:
        self.trace_id = trace_id
        self.path = path
        self.status = status
        self.outcome = outcome
        self.duration_ms = duration_ms
        self.preset = preset
        self.degraded = degraded
        self.faulted = faulted
        self.spans = list(spans)
        self.recorded_at = time.time()

    def summary(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "path": self.path,
            "status": self.status,
            "outcome": self.outcome,
            "duration_ms": round(self.duration_ms, 3),
            "preset": self.preset,
            "degraded": self.degraded,
            "faulted": self.faulted,
            "spans": len(self.spans),
            "recorded_at": self.recorded_at,
        }

    def full(self) -> Dict[str, Any]:
        return {
            **self.summary(),
            "breakdown": breakdown(self.spans),
            "tree": span_tree(self.spans),
        }


class FlightRecorder:
    """Bounded retention of the requests worth asking about later."""

    def __init__(
        self,
        recent: int = 256,
        slowest: int = 32,
        degraded: int = 64,
        faulted: int = 64,
    ) -> None:
        self._lock = threading.Lock()
        self._recent: "deque[FlightEntry]" = deque(maxlen=max(1, recent))
        self._slowest_cap = max(1, slowest)
        #: trace_id -> entry, kept sorted ascending by duration so the
        #: fastest member is always first out when capacity is hit.
        self._slowest: "OrderedDict[str, FlightEntry]" = OrderedDict()
        self._degraded: "deque[FlightEntry]" = deque(maxlen=max(1, degraded))
        self._faulted: "deque[FlightEntry]" = deque(maxlen=max(1, faulted))
        self.recorded = 0

    def record(self, entry: FlightEntry) -> None:
        with self._lock:
            self.recorded += 1
            self._recent.append(entry)
            if entry.degraded:
                self._degraded.append(entry)
            if entry.faulted:
                self._faulted.append(entry)
            self._note_slow(entry)

    def _note_slow(self, entry: FlightEntry) -> None:
        self._slowest[entry.trace_id] = entry
        ordered = sorted(
            self._slowest.items(), key=lambda item: item[1].duration_ms
        )
        while len(ordered) > self._slowest_cap:
            ordered.pop(0)
        self._slowest = OrderedDict(ordered)

    def lookup(self, trace_id: str) -> Optional[FlightEntry]:
        """Resolve one trace ID across every retention view."""
        with self._lock:
            entry = self._slowest.get(trace_id)
            if entry is not None:
                return entry
            for ring in (self._recent, self._degraded, self._faulted):
                for candidate in reversed(ring):
                    if candidate.trace_id == trace_id:
                        return candidate
        return None

    def index(self) -> Dict[str, Any]:
        """Summary rows for ``GET /debug/requests`` (no span payloads)."""
        with self._lock:
            slowest = sorted(
                self._slowest.values(),
                key=lambda entry: -entry.duration_ms,
            )
            return {
                "recorded": self.recorded,
                "recent": [e.summary() for e in reversed(self._recent)],
                "slowest": [e.summary() for e in slowest],
                "degraded": [e.summary() for e in reversed(self._degraded)],
                "faulted": [e.summary() for e in reversed(self._faulted)],
            }

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slowest.clear()
            self._degraded.clear()
            self._faulted.clear()
            self.recorded = 0
