"""Observability: decision tracing, metrics, exporters, explanations.

The allocator's contribution is a sequence of *decisions* — simplify
pops, storage-class choices, voluntary spills, shared-model
resolutions — and this package makes each one a first-class,
queryable event:

* :class:`Tracer` / :class:`DecisionEvent` — structured event stream
  from every decision site of ``repro.regalloc`` plus per-phase
  wall-clock spans.  Untraced runs (``tracer=None``, the default
  everywhere) pay a single ``is not None`` check per site.
* :class:`MetricsRegistry` — process-safe counters, gauges, plain and
  labeled bucketed histograms; worker processes ship picklable
  snapshots back to the parent, which merges them into the global
  :data:`METRICS`.
* Request telemetry (:mod:`repro.obs.telemetry`) — trace IDs minted
  at HTTP ingress and propagated across the supervisor pipe into
  forked workers; :class:`Span` trees reconstruct one request's path
  through every failure domain.
* :class:`FlightRecorder` — bounded in-memory retention of full span
  trees for the slowest / degraded / faulted requests, behind
  ``GET /debug/requests``.
* :class:`SLOTracker` — availability and latency scored against
  configurable targets, exported on ``/metrics``.
* Exporters — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto) from phase spans or request span trees, Prometheus text
  exposition, JSONL event dumps, and a plain-text decision log.
* :func:`explain_live_range` — replay one allocation with tracing on
  and reconstruct the causal chain for a single live range (the
  ``repro explain`` CLI command).
"""

from repro.obs.explain import ExplainError, Explanation, explain_live_range
from repro.obs.export import (
    chrome_trace_events,
    render_decision_log,
    request_chrome_trace,
    request_trace_events,
    trace_epoch_base,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.flight import FlightEntry, FlightRecorder
from repro.obs.logs import JsonlLogger, open_access_log
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    METRICS,
    BucketedData,
    MetricsRegistry,
    MetricsSnapshot,
    allocation_metrics,
    label_key,
    render_labels,
)
from repro.obs.promtext import render_prometheus, render_slo_prometheus
from repro.obs.slo import SLOTargets, SLOTracker
from repro.obs.telemetry import (
    SPAN_NAMES,
    TRACE_HEADER,
    Span,
    SpanClock,
    attempt_outcomes,
    breakdown,
    dedupe_spans,
    mint_span_id,
    mint_trace_id,
    reparent,
    span_tree,
    spans_from_phases,
)
from repro.obs.tracer import DecisionEvent, NullTracer, PhaseSpan, Tracer

__all__ = [
    "BucketedData",
    "DecisionEvent",
    "ExplainError",
    "Explanation",
    "FlightEntry",
    "FlightRecorder",
    "JsonlLogger",
    "LATENCY_BUCKETS_MS",
    "METRICS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullTracer",
    "PhaseSpan",
    "SLOTargets",
    "SLOTracker",
    "SPAN_NAMES",
    "Span",
    "SpanClock",
    "TRACE_HEADER",
    "Tracer",
    "allocation_metrics",
    "attempt_outcomes",
    "breakdown",
    "chrome_trace_events",
    "dedupe_spans",
    "explain_live_range",
    "label_key",
    "mint_span_id",
    "mint_trace_id",
    "open_access_log",
    "render_decision_log",
    "render_labels",
    "render_prometheus",
    "render_slo_prometheus",
    "reparent",
    "request_chrome_trace",
    "request_trace_events",
    "span_tree",
    "spans_from_phases",
    "trace_epoch_base",
    "write_chrome_trace",
    "write_events_jsonl",
]
