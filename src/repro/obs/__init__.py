"""Observability: decision tracing, metrics, exporters, explanations.

The allocator's contribution is a sequence of *decisions* — simplify
pops, storage-class choices, voluntary spills, shared-model
resolutions — and this package makes each one a first-class,
queryable event:

* :class:`Tracer` / :class:`DecisionEvent` — structured event stream
  from every decision site of ``repro.regalloc`` plus per-phase
  wall-clock spans.  Untraced runs (``tracer=None``, the default
  everywhere) pay a single ``is not None`` check per site.
* :class:`MetricsRegistry` — process-safe counters, gauges and
  histograms; worker processes ship picklable snapshots back to the
  parent, which merges them into the global :data:`METRICS`.
* Exporters — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto) from phase spans, JSONL event dumps, and a plain-text
  decision log.
* :func:`explain_live_range` — replay one allocation with tracing on
  and reconstruct the causal chain for a single live range (the
  ``repro explain`` CLI command).
"""

from repro.obs.explain import ExplainError, Explanation, explain_live_range
from repro.obs.export import (
    chrome_trace_events,
    render_decision_log,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    allocation_metrics,
)
from repro.obs.tracer import DecisionEvent, NullTracer, PhaseSpan, Tracer

__all__ = [
    "DecisionEvent",
    "ExplainError",
    "Explanation",
    "METRICS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullTracer",
    "PhaseSpan",
    "Tracer",
    "allocation_metrics",
    "chrome_trace_events",
    "explain_live_range",
    "render_decision_log",
    "write_chrome_trace",
    "write_events_jsonl",
]
