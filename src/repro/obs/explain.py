"""Replay one allocation and explain a single live range.

``explain_live_range`` runs the allocator over a program with a
recording :class:`~repro.obs.tracer.Tracer` attached, filters the
event stream down to one live range, and assembles the causal chain
behind its final placement: the cost-model inputs (spill cost, both
save costs), the derived benefits, every decision event that mentions
the range, and the final verdict (register, stack slot, or
rematerialized constant).

Spilled live ranges are explainable too — they are absent from the
final assignment, but the event stream keeps the full story of why
they lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Program
from repro.machine.registers import RegisterFile
from repro.obs.export import describe_event
from repro.obs.tracer import DecisionEvent, Tracer
from repro.regalloc.framework import allocate_program
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.verify import verify_allocation


class ExplainError(ValueError):
    """The requested live range (or function) could not be found."""


#: Event kinds that constitute the causal chain of one live range, in
#: the order the allocator emits them.
_CHAIN_KINDS = (
    "coalesce",
    "benefits",
    "preference_demote",
    "simplify_pop",
    "ordering_spill",
    "optimistic_push",
    "assign",
    "assign_spill",
    "voluntary_spill",
    "shared_defer",
    "shared_resolution",
    "cbh_reserve",
    "cbh_release",
    "spill_code",
    "remat_code",
)

#: Kinds that settle the live range's fate (last one wins).
_FINAL_KINDS = (
    "assign",
    "voluntary_spill",
    "spill_code",
    "remat_code",
    "cbh_reserve",
    "cbh_release",
)


@dataclass
class Explanation:
    """Everything the tracer recorded about one live range."""

    query: str
    lr: str
    function: str
    allocator: str
    callee_model: str
    #: Cost-model inputs and derived benefits from the *last* benefits
    #: event (the iteration that settled the range's fate).
    spill_cost: Optional[float] = None
    caller_cost: Optional[float] = None
    callee_cost: Optional[float] = None
    benefit_caller: Optional[float] = None
    benefit_callee: Optional[float] = None
    prefers_callee: Optional[bool] = None
    #: One human-readable line per causal event, in emission order.
    chain: List[str] = field(default_factory=list)
    #: The raw events behind ``chain`` (same order).
    events: List[DecisionEvent] = field(default_factory=list)
    decision: str = ""
    verified: Optional[bool] = None

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "lr": self.lr,
            "function": self.function,
            "allocator": self.allocator,
            "callee_model": self.callee_model,
            "spill_cost": self.spill_cost,
            "caller_cost": self.caller_cost,
            "callee_cost": self.callee_cost,
            "benefit_caller": self.benefit_caller,
            "benefit_callee": self.benefit_callee,
            "prefers_callee": self.prefers_callee,
            "decision": self.decision,
            "chain": list(self.chain),
            "events": [event.to_dict() for event in self.events],
            "verified": self.verified,
        }

    def render(self) -> str:
        lines = [
            f"live range {self.lr} in {self.function}()",
            f"  allocator: {self.allocator}   callee model: {self.callee_model}",
        ]
        if self.spill_cost is not None:
            lines.append(f"  spill cost:       {self.spill_cost:g}")
        if self.caller_cost is not None:
            lines.append(f"  caller-save cost: {self.caller_cost:g}")
        if self.callee_cost is not None:
            lines.append(f"  callee-save cost: {self.callee_cost:g}")
        if self.benefit_caller is not None:
            lines.append(f"  benefit_caller:   {self.benefit_caller:g}")
        if self.benefit_callee is not None:
            preference = ""
            if self.prefers_callee is not None:
                kind = "callee-save" if self.prefers_callee else "caller-save"
                preference = f"   (prefers {kind})"
            lines.append(f"  benefit_callee:   {self.benefit_callee:g}{preference}")
        lines.append("  decision chain:")
        for entry in self.chain:
            lines.append(f"    - {entry}")
        lines.append(f"  final: {self.decision}")
        if self.verified is not None:
            status = "passed" if self.verified else "FAILED"
            lines.append(f"  allocation verifier: {status}")
        return "\n".join(lines)


def explain_live_range(
    program: Program,
    lr_query: str,
    regfile: RegisterFile,
    options: AllocatorOptions = AllocatorOptions(),
    func_name: Optional[str] = None,
    weights_for=None,
    verify: bool = True,
) -> Explanation:
    """Allocate ``program`` with tracing on and explain one live range.

    ``lr_query`` matches a live range by its source-level name
    (``count``), its full repr (``%i2:count``), or its bare id
    (``%i2``).  With ``func_name`` the search is restricted to one
    function; otherwise every function is searched and an ambiguous
    name is an :class:`ExplainError` listing the candidates.
    """
    tracer = Tracer()
    allocation = allocate_program(
        program, regfile, options, weights_for=weights_for, tracer=tracer
    )

    matches = _match_query(tracer.events, lr_query, func_name)
    if not matches:
        scope = f" in function {func_name!r}" if func_name else ""
        known = sorted(_named_ranges(tracer.events, func_name))
        hint = f" (known live ranges: {', '.join(known)})" if known else ""
        raise ExplainError(
            f"no live range matches {lr_query!r}{scope}{hint}"
        )
    functions = sorted({function for function, _ in matches})
    if len(functions) > 1:
        raise ExplainError(
            f"live range {lr_query!r} is ambiguous across functions "
            f"{', '.join(functions)}; pass --func to pick one"
        )
    names = sorted({lr for _, lr in matches})
    if len(names) > 1:
        raise ExplainError(
            f"{lr_query!r} matches several live ranges in "
            f"{functions[0]}(): {', '.join(names)}"
        )
    function, lr = matches.pop()

    events = [
        event
        for event in tracer.events
        if event.function == function
        and event.kind in _CHAIN_KINDS
        and _mentions(event, lr)
    ]
    explanation = Explanation(
        query=lr_query,
        lr=lr,
        function=function,
        allocator=options.label,
        callee_model=options.callee_model,
    )
    for event in events:
        if event.kind == "benefits":
            explanation.spill_cost = event.detail.get("spill_cost")
            explanation.caller_cost = event.detail.get("caller_cost")
            explanation.callee_cost = event.detail.get("callee_cost")
            explanation.benefit_caller = event.detail.get("benefit_caller")
            explanation.benefit_callee = event.detail.get("benefit_callee")
            explanation.prefers_callee = event.detail.get("prefers_callee")
    explanation.events = events
    explanation.chain = [
        f"[i{event.iteration}/{event.phase}] {describe_event(event)}"
        for event in events
    ]
    explanation.decision = _final_decision(events, lr)

    if verify:
        try:
            verify_allocation(allocation)
        except Exception:
            explanation.verified = False
        else:
            explanation.verified = True
    return explanation


def _mentions(event: DecisionEvent, lr: str) -> bool:
    if event.lr == lr:
        return True
    detail = event.detail
    for key in ("kept", "gone"):
        if detail.get(key) == lr:
            return True
    users = detail.get("users")
    if isinstance(users, list) and lr in users:
        return True
    spills = detail.get("spills")
    if isinstance(spills, list) and lr in spills:
        return True
    return False


def _split_repr(lr: str) -> Tuple[str, str]:
    """``%i2:count`` -> (``%i2``, ``count``); ``%i4`` -> (``%i4``, \"\")."""
    head, _, name = lr.partition(":")
    return head, name


def _match_query(
    events: List[DecisionEvent], query: str, func_name: Optional[str]
) -> set:
    matches = set()
    for event in events:
        if event.lr is None:
            continue
        if func_name is not None and event.function != func_name:
            continue
        head, name = _split_repr(event.lr)
        if query == event.lr or query == head or (name and query == name):
            matches.add((event.function, event.lr))
    return matches


def _named_ranges(
    events: List[DecisionEvent], func_name: Optional[str]
) -> set:
    names = set()
    for event in events:
        if event.lr is None:
            continue
        if func_name is not None and event.function != func_name:
            continue
        _, name = _split_repr(event.lr)
        if name and not name.startswith("csr:") and ".spill" not in name:
            names.add(name)
    return names


def _final_decision(events: List[DecisionEvent], lr: str) -> str:
    final: Optional[DecisionEvent] = None
    for event in events:
        if event.kind in _FINAL_KINDS and event.lr == lr:
            final = event
        elif event.kind == "shared_resolution":
            users = event.detail.get("users")
            if isinstance(users, list) and lr in users:
                final = event
    if final is None:
        return "no placement decision recorded"
    detail = final.detail
    if final.kind == "assign":
        return (
            f"assigned {detail.get('storage_class', '?')} register "
            f"{detail.get('register', '?')}"
        )
    if final.kind == "voluntary_spill":
        return f"voluntarily spilled: {detail.get('reason', '?')}"
    if final.kind == "spill_code":
        return (
            f"spilled to frame slot {detail.get('slot', '?')} "
            f"({detail.get('loads', 0)} reloads, {detail.get('stores', 0)} stores)"
        )
    if final.kind == "remat_code":
        return (
            f"spilled and rematerialized as constant {detail.get('value', '?')} "
            f"({detail.get('loads', 0)} remat sites)"
        )
    if final.kind == "shared_resolution":
        verdict = detail.get("verdict", "?")
        return (
            f"shared callee-save register {detail.get('register', '?')} "
            f"resolved end-of-assignment: {verdict}"
        )
    if final.kind == "cbh_reserve":
        return f"callee-save register {detail.get('register', '?')} kept untouched"
    if final.kind == "cbh_release":
        return (
            f"callee-save register {detail.get('register', '?')} released "
            f"for ordinary live ranges (save at entry, restore at exit)"
        )
    return describe_event(final)
