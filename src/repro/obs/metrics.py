"""A process-safe metrics registry: counters, gauges, histograms.

``METRICS`` is the process-global registry.  Code running in the
parent process increments it directly; code running in sweep workers
does not touch any global at all — instead, per-measurement metrics
are *derived* from the finished allocation
(:func:`allocation_metrics`), carried back to the parent as a
picklable :class:`MetricsSnapshot` on each
:class:`~repro.eval.runner.Measurement`, and merged into ``METRICS``
by ``run_grid``/``measure_full``.  That makes aggregation across
worker processes trivially safe: snapshots are immutable values, and
only the parent ever mutates the registry.

Metric names use dotted ``component.metric`` form:

* ``regalloc.spilled_ranges`` ``regalloc.frame_slots``
  ``regalloc.coalesces`` — counters derived per allocation.
* ``regalloc.spill_loads`` / ``regalloc.spill_stores`` /
  ``regalloc.caller_save_ops`` / ``regalloc.callee_save_ops`` —
  overhead operations actually placed in the final code, by kind.
* ``regalloc.iterations`` — histogram, one observation per function.
* ``analysis_cache.hits`` / ``analysis_cache.misses`` — analysis-cache
  traffic attributable to allocations (from ``PipelineStats``).
* ``results_cache.hits`` / ``results_cache.misses`` — gauges mirroring
  the measurement cache's :class:`~repro.analysis.manager.CacheStats`.
* ``grid.computed`` / ``grid.cached`` / ``grid.failed`` — ``run_grid``
  outcome counters; ``grid.fallback_runs`` / ``grid.fallback_demotions``
  count resilient grid points that degraded and the demotions behind
  them.
* ``fuzz.checked`` / ``fuzz.skipped`` / ``fuzz.failures`` plus
  ``fuzz.failures.<stage>`` — fuzzing verdicts.
* ``resilience.runs`` / ``resilience.demotions`` /
  ``resilience.degraded`` / ``resilience.rung.<name>`` — fallback-chain
  outcomes (parent-side, one per accepted ``ResilienceReport``), plus
  the ``resilience.rung_index`` histogram of how deep runs fall.
* ``chaos.runs`` / ``chaos.injections`` / ``chaos.degraded`` /
  ``chaos.unclean`` — fault-injection campaign aggregates;
  ``chaos.serve.*`` for the service-level (worker-killing) campaigns.
* ``supervisor.*`` — the supervised worker pool:
  ``supervisor.dispatches`` jobs sent to workers;
  ``supervisor.kills`` worker SIGKILLs, split by cause as
  ``supervisor.kills.watchdog`` / ``.crash`` / ``.garbage``;
  ``supervisor.spawns`` / ``supervisor.respawns`` /
  ``supervisor.spawn_failures`` worker process starts;
  ``supervisor.retries`` re-runs on a fresh worker after worker death;
  ``supervisor.degraded`` jobs answered by the inline fallback after
  retries were exhausted;
  ``supervisor.recycled`` (and ``.requests`` / ``.oom``) planned
  worker retirements;
  ``supervisor.admission_full`` / ``supervisor.breaker.rejected``
  refused admissions; ``supervisor.breaker.open`` / ``.half_open`` /
  ``.closed`` circuit transitions;
  ``supervisor.chaos.injected`` armed service faults handed to
  workers; ``supervisor.cache.hits`` / ``.misses`` parent-side
  wire-result cache traffic.
* ``serve.degraded`` / ``serve.breaker_refused`` /
  ``serve.rejected_body`` — HTTP-layer views of the same stories.

The registry itself is thread-safe (one lock around every mutation):
the supervised server increments it concurrently from dispatcher
threads, breaker callbacks and the asyncio loop.
"""

from __future__ import annotations

import bisect
import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Upper bounds (milliseconds) of the latency buckets labeled
#: histograms observe into; an implicit +inf bucket follows.  Chosen
#: to straddle the serving stack's realistic range: sub-ms cache hits
#: through multi-second degraded requests.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
    500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)

#: A label set in canonical form: ``(("key", "value"), ...)`` sorted
#: by key.  Dict order never leaks into metric identity.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, str]) -> LabelKey:
    """Canonicalize a label dict into a hashable, sorted key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_labels(key: LabelKey) -> str:
    """``{a="x",b="y"}`` — the Prometheus (and JSON-key) rendering."""
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


@dataclass(frozen=True)
class HistogramData:
    """Summary statistics of one histogram metric (picklable value)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> "HistogramData":
        return HistogramData(
            count=self.count + 1,
            total=self.total + value,
            minimum=min(self.minimum, value),
            maximum=max(self.maximum, value),
        )

    def merge(self, other: "HistogramData") -> "HistogramData":
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return HistogramData(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


@dataclass(frozen=True)
class BucketedData:
    """A labeled latency histogram's value: summary plus buckets.

    ``buckets`` holds one cumulative-free count per
    :data:`LATENCY_BUCKETS_MS` bound, plus a final overflow slot.
    Quantiles are estimated by linear interpolation within the bucket
    the target rank lands in — exact enough for SLO accounting, and
    mergeable across processes (bucket counts just add).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    buckets: Tuple[int, ...] = (0,) * (len(LATENCY_BUCKETS_MS) + 1)

    def observe(self, value: float) -> "BucketedData":
        index = bisect.bisect_left(LATENCY_BUCKETS_MS, value)
        buckets = list(self.buckets)
        buckets[index] += 1
        return BucketedData(
            count=self.count + 1,
            total=self.total + value,
            minimum=min(self.minimum, value),
            maximum=max(self.maximum, value),
            buckets=tuple(buckets),
        )

    def merge(self, other: "BucketedData") -> "BucketedData":
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return BucketedData(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            buckets=tuple(
                a + b for a, b in zip(self.buckets, other.buckets)
            ),
        )

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1) from the bucket counts."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                low = LATENCY_BUCKETS_MS[index - 1] if index > 0 else 0.0
                high = (
                    LATENCY_BUCKETS_MS[index]
                    if index < len(LATENCY_BUCKETS_MS)
                    else self.maximum
                )
                low = max(low, self.minimum) if index == 0 else low
                high = min(high, self.maximum)
                if high <= low:
                    return high
                fraction = (rank - cumulative) / bucket_count
                return low + (high - low) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return self.maximum

    def as_dict(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 3),
            "min": self.minimum,
            "max": self.maximum,
            "p50": round(self.quantile(0.50), 3),
            "p99": round(self.quantile(0.99), 3),
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable copy of a registry's contents."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramData] = field(default_factory=dict)
    #: name -> {canonical label tuple -> bucketed data}.
    labeled: Dict[str, Dict[LabelKey, BucketedData]] = field(
        default_factory=dict
    )

    @property
    def empty(self) -> bool:
        return not (
            self.counters or self.gauges or self.histograms or self.labeled
        )


class MetricsRegistry:
    """Counters, gauges and histograms under dotted names."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramData] = {}
        self._labeled: Dict[str, Dict[LabelKey, BucketedData]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            current = self._histograms.get(name, HistogramData())
            self._histograms[name] = current.observe(value)

    def observe_labeled(
        self, name: str, value: float, labels: Dict[str, str]
    ) -> None:
        """Record into the labeled (bucketed) histogram ``name``.

        One series per distinct label set — e.g.
        ``serve.request_ms{preset=improved,outcome=ok,rung=primary,
        cache=miss}``.  Labels are canonicalized (sorted by key) so
        caller dict order never splits a series.
        """
        key = label_key(labels)
        with self._lock:
            series = self._labeled.setdefault(name, {})
            series[key] = series.get(key, BucketedData()).observe(value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramData:
        with self._lock:
            return self._histograms.get(name, HistogramData())

    def labeled(self, name: str) -> Dict[LabelKey, BucketedData]:
        """The labeled histogram's series (a copy; empty if absent)."""
        with self._lock:
            return dict(self._labeled.get(name, {}))

    def labeled_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._labeled))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering, keys sorted for stable output."""
        with self._lock:
            return {
                "counters": {
                    k: self._counters[k] for k in sorted(self._counters)
                },
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].as_dict()
                    for k in sorted(self._histograms)
                },
                "labeled": {
                    name: {
                        render_labels(key) or "{}": data.as_dict()
                        for key, data in sorted(series.items())
                    }
                    for name, series in sorted(self._labeled.items())
                },
            }

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy safe to pickle across process boundaries."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms=dict(self._histograms),
                labeled={
                    name: dict(series)
                    for name, series in self._labeled.items()
                },
            )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot in: counters add, gauges overwrite,
        histograms (labeled or not) combine."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in snapshot.gauges.items():
                self._gauges[name] = value
            for name, data in snapshot.histograms.items():
                current = self._histograms.get(name, HistogramData())
                self._histograms[name] = current.merge(data)
            for name, series in getattr(snapshot, "labeled", {}).items():
                mine = self._labeled.setdefault(name, {})
                for key, data in series.items():
                    mine[key] = mine.get(key, BucketedData()).merge(data)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._labeled.clear()

    def rearm_after_fork(self) -> None:
        """Reset this registry in a freshly forked child process.

        A ``fork`` can happen while another parent thread holds this
        registry's lock; the child would then deadlock on its first
        metric.  Worker subprocesses call this before doing anything
        else: the child is single-threaded at that point, so replacing
        the lock is safe, and the inherited numbers belong to the
        parent's story, not the worker's.  *Every* store is replaced —
        plain and labeled histogram state included, so a forked
        worker's first ``/metrics`` view never double-reports the
        parent's latency distribution.
        """
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._labeled = {}


#: The process-global registry (parent-process aggregation point).
METRICS = MetricsRegistry()


def allocation_metrics(allocation) -> MetricsSnapshot:
    """Derive the metrics of one finished :class:`ProgramAllocation`.

    Reads only the allocation's own records and final code — spilled
    live ranges, frame slots, iterations, coalesces, analysis-cache
    traffic, and the overhead operations actually placed (spill
    reloads/stores, caller-save and callee-save save/restore ops) —
    so it is safe to call from worker processes and replaces the
    ad-hoc tallies experiments used to keep by hand.
    """
    from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore

    registry = MetricsRegistry()
    ops = {
        OverheadKind.SPILL: [0, 0],  # loads, stores
        OverheadKind.CALLER_SAVE: [0, 0],
        OverheadKind.CALLEE_SAVE: [0, 0],
    }
    for fa in allocation.functions.values():
        registry.inc("regalloc.spilled_ranges", len(fa.spilled))
        registry.inc("regalloc.frame_slots", fa.frame_slots)
        registry.inc("regalloc.coalesces", fa.stats.coalesces)
        registry.inc("analysis_cache.hits", fa.stats.cache_hits)
        registry.inc("analysis_cache.misses", fa.stats.cache_misses)
        registry.observe("regalloc.iterations", fa.iterations)
        for instr in fa.func.instructions():
            if isinstance(instr, SpillLoad):
                ops[instr.kind][0] += 1
            elif isinstance(instr, SpillStore):
                ops[instr.kind][1] += 1
    registry.inc(
        "regalloc.spill_loads", ops[OverheadKind.SPILL][0]
    )
    registry.inc(
        "regalloc.spill_stores", ops[OverheadKind.SPILL][1]
    )
    registry.inc(
        "regalloc.caller_save_ops", sum(ops[OverheadKind.CALLER_SAVE])
    )
    registry.inc(
        "regalloc.callee_save_ops", sum(ops[OverheadKind.CALLEE_SAVE])
    )
    return registry.snapshot()
