"""Exporters for traces and events.

* :func:`write_chrome_trace` — phase spans as Chrome trace-event JSON,
  loadable in ``chrome://tracing`` and Perfetto.  Each process becomes
  a trace *process* (so parallel sweep workers show up side by side)
  and each allocated function becomes a named *thread* track within
  it; spans are complete ("X") events in microseconds.
* :func:`write_events_jsonl` — the decision-event stream, one JSON
  object per line, in emission order (per-function streams are
  recovered by filtering on the ``function`` field).
* :func:`render_decision_log` — a plain-text, human-readable decision
  log; also the rendering the ``repro explain`` causal chain uses.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.obs.tracer import DecisionEvent, PhaseSpan

import json


def trace_epoch_base(spans: Sequence) -> float:
    """The common timestamp origin for one exported trace.

    Spans carry absolute epoch-seconds starts (``time.time()``), which
    is what lets spans from the parent process and supervisor-forked
    workers line up at all — but exported raw, epoch microseconds are
    ~1.7e15, large enough that the float64 ``ts`` values Chrome trace
    JSON uses lose sub-microsecond precision and viewers render each
    process's track mis-aligned by its own rounding.  Rebasing every
    span against the *earliest span in the export* keeps the
    cross-process alignment (one shared origin) while keeping ``ts``
    small and exact.
    """
    return min((span.start for span in spans), default=0.0)


def chrome_trace_events(
    spans: Sequence[PhaseSpan], base: float = None
) -> List[Dict[str, Any]]:
    """Chrome trace-event dicts (metadata plus "X" spans) for ``spans``.

    ``base`` is the epoch origin subtracted from every start; None
    (the default) rebases to the earliest span so parent-side and
    worker-side spans merge onto one precise timeline.  Pass ``0.0``
    to keep the pre-rebase absolute timestamps.
    """
    events: List[Dict[str, Any]] = []
    if base is None:
        base = trace_epoch_base(spans)
    #: (pid, function) -> tid; one thread track per function per process.
    tids: Dict[Tuple[int, str], int] = {}
    next_tid: Dict[int, int] = {}
    pids: List[int] = []
    for span in spans:
        if span.pid not in next_tid:
            next_tid[span.pid] = 1
            pids.append(span.pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": f"worker pid {span.pid}"},
                }
            )
        key = (span.pid, span.function)
        if key not in tids:
            tids[key] = next_tid[span.pid]
            next_tid[span.pid] += 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": tids[key],
                    "args": {"name": f"func {span.function}"},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": "regalloc",
                "ph": "X",
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": tids[key],
                "args": {
                    "function": span.function,
                    "iteration": span.iteration,
                },
            }
        )
    return events


def request_trace_events(
    span_dicts: Sequence[Dict[str, Any]], base: float = None
) -> List[Dict[str, Any]]:
    """Chrome trace events for one request's telemetry span dicts.

    Accepts the serialized spans the flight recorder retains (see
    :mod:`repro.obs.telemetry`).  Every process in the tree — the
    server parent and any supervisor-forked worker — becomes a trace
    process; within a process all spans share one thread track, where
    "X" events nest by time containment into a flame view.  All
    timestamps are rebased against the earliest span in the tree, so
    parent-side and worker-side spans land on one aligned timeline.
    """
    events: List[Dict[str, Any]] = []
    if base is None:
        base = min(
            (float(s.get("start", 0.0)) for s in span_dicts), default=0.0
        )
    seen_pids: Dict[int, None] = {}
    for span in span_dicts:
        pid = int(span.get("pid", 0))
        if pid not in seen_pids:
            seen_pids[pid] = None
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"pid {pid}"},
                }
            )
        args: Dict[str, Any] = {
            "span_id": span.get("span_id"),
            "parent_id": span.get("parent_id"),
        }
        args.update(span.get("attrs") or {})
        events.append(
            {
                "name": span.get("name", "span"),
                "cat": "request",
                "ph": "X",
                "ts": (float(span.get("start", 0.0)) - base) * 1e6,
                "dur": float(span.get("duration_ms", 0.0)) * 1000.0,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    return events


def request_chrome_trace(
    trace_id: str, span_dicts: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """A complete Chrome trace document for one request's span tree."""
    return {
        "traceEvents": request_trace_events(span_dicts),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "trace_id": trace_id},
    }


def write_chrome_trace(path, spans: Sequence[PhaseSpan]) -> int:
    """Write ``spans`` as a Chrome trace file; returns the span count."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    Path(path).write_text(json.dumps(payload) + "\n")
    return len(spans)


def write_events_jsonl(path, events: Iterable[DecisionEvent]) -> int:
    """Write decision events as JSONL; returns the event count."""
    count = 0
    lines: List[str] = []
    for event in events:
        lines.append(event.to_json())
        count += 1
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return count


# ----------------------------------------------------------------------
# the plain-text decision log
# ----------------------------------------------------------------------

def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


#: kind -> template; details not named by the template are appended.
_TEMPLATES = {
    "function_begin": "allocating under {allocator} (callee model {callee_model})",
    "iteration_begin": "iteration {n} begins",
    "coalesce": "coalesced {gone} into {kept} (copy eliminated)",
    "benefits": (
        "spill cost {spill_cost}, caller-save cost {caller_cost}, "
        "callee-save cost {callee_cost} => benefit_caller {benefit_caller}, "
        "benefit_callee {benefit_callee}"
    ),
    "preference_demote": (
        "preference decision: demoted to caller-save (penalty {penalty}) "
        "at call in {block}"
    ),
    "simplify_pop": "popped by simplification (degree {degree}, key {key})",
    "ordering_spill": (
        "simplification blocked: spilled ({metric} {value}, "
        "spill cost {spill_cost}, degree {degree})"
    ),
    "optimistic_push": (
        "simplification blocked: pushed optimistically ({metric} {value}, "
        "spill cost {spill_cost}, degree {degree})"
    ),
    "assign": (
        "assigned {register} ({storage_class}; benefit_caller "
        "{benefit_caller}, benefit_callee {benefit_callee})"
    ),
    "assign_spill": "no register free among {neighbors_colored} colored neighbors: spilled",
    "voluntary_spill": "spilled instead of {register}: {reason}",
    "shared_defer": "tentatively holds callee-save {register} (shared model, resolution deferred)",
    "shared_resolution": (
        "shared callee-save {register}: occupant spill costs {total_cost} "
        "vs save/restore cost {callee_cost} => {verdict}"
    ),
    "cbh_reserve": "callee-save register {register} stays untouched (pseudo colored)",
    "cbh_release": "callee-save register {register} released: save/restore charged",
    "spill_code": "spill code placed: {loads} reload(s), {stores} store(s), slot {slot}",
    "remat_code": "rematerialized: {loads} use(s) re-emit const {value}, no slot",
    "caller_save_site": "caller-save around call to {callee}: {registers}",
    "callee_save": "callee-save at entry/exits: {registers}",
    "spill_round": "iteration {n} spilled {count} live range(s): {spills}",
    "allocation_final": (
        "final: {assigned} live range(s) in registers, {spilled_total} "
        "spilled, {frame_slots} frame slot(s), {iterations} iteration(s)"
    ),
}


def describe_event(event: DecisionEvent) -> str:
    """One human-readable line for ``event`` (no function prefix)."""
    template = _TEMPLATES.get(event.kind)
    detail = {k: _fmt(v) for k, v in event.detail.items()}
    if template is None:
        body = ", ".join(f"{k}={v}" for k, v in detail.items())
        text = f"{event.kind}: {body}" if body else event.kind
    else:
        try:
            text = template.format(**detail)
        except KeyError:
            body = ", ".join(f"{k}={v}" for k, v in detail.items())
            text = f"{event.kind}: {body}"
    if event.lr is not None:
        return f"{event.lr}: {text}"
    return text


def render_decision_log(events: Iterable[DecisionEvent]) -> str:
    """The whole event stream as an indented plain-text log."""
    lines: List[str] = []
    current = None
    for event in events:
        if event.function != current:
            current = event.function
            lines.append(f"== function {current} ==")
        prefix = f"  [i{event.iteration}/{event.phase or '-'}] "
        lines.append(prefix + describe_event(event))
    return "\n".join(lines)
