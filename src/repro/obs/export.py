"""Exporters for traces and events.

* :func:`write_chrome_trace` — phase spans as Chrome trace-event JSON,
  loadable in ``chrome://tracing`` and Perfetto.  Each process becomes
  a trace *process* (so parallel sweep workers show up side by side)
  and each allocated function becomes a named *thread* track within
  it; spans are complete ("X") events in microseconds.
* :func:`write_events_jsonl` — the decision-event stream, one JSON
  object per line, in emission order (per-function streams are
  recovered by filtering on the ``function`` field).
* :func:`render_decision_log` — a plain-text, human-readable decision
  log; also the rendering the ``repro explain`` causal chain uses.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.obs.tracer import DecisionEvent, PhaseSpan

import json


def chrome_trace_events(spans: Sequence[PhaseSpan]) -> List[Dict[str, Any]]:
    """Chrome trace-event dicts (metadata plus "X" spans) for ``spans``."""
    events: List[Dict[str, Any]] = []
    #: (pid, function) -> tid; one thread track per function per process.
    tids: Dict[Tuple[int, str], int] = {}
    next_tid: Dict[int, int] = {}
    pids: List[int] = []
    for span in spans:
        if span.pid not in next_tid:
            next_tid[span.pid] = 1
            pids.append(span.pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": f"worker pid {span.pid}"},
                }
            )
        key = (span.pid, span.function)
        if key not in tids:
            tids[key] = next_tid[span.pid]
            next_tid[span.pid] += 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": tids[key],
                    "args": {"name": f"func {span.function}"},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": "regalloc",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": tids[key],
                "args": {
                    "function": span.function,
                    "iteration": span.iteration,
                },
            }
        )
    return events


def write_chrome_trace(path, spans: Sequence[PhaseSpan]) -> int:
    """Write ``spans`` as a Chrome trace file; returns the span count."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    Path(path).write_text(json.dumps(payload) + "\n")
    return len(spans)


def write_events_jsonl(path, events: Iterable[DecisionEvent]) -> int:
    """Write decision events as JSONL; returns the event count."""
    count = 0
    lines: List[str] = []
    for event in events:
        lines.append(event.to_json())
        count += 1
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return count


# ----------------------------------------------------------------------
# the plain-text decision log
# ----------------------------------------------------------------------

def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


#: kind -> template; details not named by the template are appended.
_TEMPLATES = {
    "function_begin": "allocating under {allocator} (callee model {callee_model})",
    "iteration_begin": "iteration {n} begins",
    "coalesce": "coalesced {gone} into {kept} (copy eliminated)",
    "benefits": (
        "spill cost {spill_cost}, caller-save cost {caller_cost}, "
        "callee-save cost {callee_cost} => benefit_caller {benefit_caller}, "
        "benefit_callee {benefit_callee}"
    ),
    "preference_demote": (
        "preference decision: demoted to caller-save (penalty {penalty}) "
        "at call in {block}"
    ),
    "simplify_pop": "popped by simplification (degree {degree}, key {key})",
    "ordering_spill": (
        "simplification blocked: spilled ({metric} {value}, "
        "spill cost {spill_cost}, degree {degree})"
    ),
    "optimistic_push": (
        "simplification blocked: pushed optimistically ({metric} {value}, "
        "spill cost {spill_cost}, degree {degree})"
    ),
    "assign": (
        "assigned {register} ({storage_class}; benefit_caller "
        "{benefit_caller}, benefit_callee {benefit_callee})"
    ),
    "assign_spill": "no register free among {neighbors_colored} colored neighbors: spilled",
    "voluntary_spill": "spilled instead of {register}: {reason}",
    "shared_defer": "tentatively holds callee-save {register} (shared model, resolution deferred)",
    "shared_resolution": (
        "shared callee-save {register}: occupant spill costs {total_cost} "
        "vs save/restore cost {callee_cost} => {verdict}"
    ),
    "cbh_reserve": "callee-save register {register} stays untouched (pseudo colored)",
    "cbh_release": "callee-save register {register} released: save/restore charged",
    "spill_code": "spill code placed: {loads} reload(s), {stores} store(s), slot {slot}",
    "remat_code": "rematerialized: {loads} use(s) re-emit const {value}, no slot",
    "caller_save_site": "caller-save around call to {callee}: {registers}",
    "callee_save": "callee-save at entry/exits: {registers}",
    "spill_round": "iteration {n} spilled {count} live range(s): {spills}",
    "allocation_final": (
        "final: {assigned} live range(s) in registers, {spilled_total} "
        "spilled, {frame_slots} frame slot(s), {iterations} iteration(s)"
    ),
}


def describe_event(event: DecisionEvent) -> str:
    """One human-readable line for ``event`` (no function prefix)."""
    template = _TEMPLATES.get(event.kind)
    detail = {k: _fmt(v) for k, v in event.detail.items()}
    if template is None:
        body = ", ".join(f"{k}={v}" for k, v in detail.items())
        text = f"{event.kind}: {body}" if body else event.kind
    else:
        try:
            text = template.format(**detail)
        except KeyError:
            body = ", ".join(f"{k}={v}" for k, v in detail.items())
            text = f"{event.kind}: {body}"
    if event.lr is not None:
        return f"{event.lr}: {text}"
    return text


def render_decision_log(events: Iterable[DecisionEvent]) -> str:
    """The whole event stream as an indented plain-text log."""
    lines: List[str] = []
    current = None
    for event in events:
        if event.function != current:
            current = event.function
            lines.append(f"== function {current} ==")
        prefix = f"  [i{event.iteration}/{event.phase or '-'}] "
        lines.append(prefix + describe_event(event))
    return "\n".join(lines)
