"""Prometheus text exposition of the metrics registry.

``GET /metrics?format=prometheus`` renders the same registry the JSON
view serves, in the text format (version 0.0.4) every Prometheus
scraper speaks:

* counters → ``repro_<name>_total``;
* gauges → ``repro_<name>``;
* plain histograms (summary-only :class:`HistogramData`) →
  ``_count`` / ``_sum`` / ``_min`` / ``_max`` gauges;
* labeled bucketed histograms → real Prometheus histograms with
  cumulative ``_bucket{le=...}`` series per label set, plus ``_sum``
  and ``_count``.

Dotted metric names become underscore-separated (Prometheus forbids
dots); label values are escaped per the exposition format rules.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
)

#: Prepended to every exported metric name.
NAMESPACE = "repro"


def _name(metric: str, suffix: str = "") -> str:
    cleaned = metric.replace(".", "_").replace("-", "_")
    return f"{NAMESPACE}_{cleaned}{suffix}"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _finite(value: float) -> float:
    # The exposition format has +Inf/-Inf literals but empty-histogram
    # sentinels (min=inf, max=-inf) would just confuse dashboards.
    if value in (float("inf"), float("-inf")) or value != value:
        return 0.0
    return value


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text exposition format."""
    data = registry.snapshot()
    lines: List[str] = []

    for metric in sorted(data.counters):
        name = _name(metric, "_total")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {data.counters[metric]:g}")

    for metric in sorted(data.gauges):
        name = _name(metric)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {data.gauges[metric]:g}")

    for metric in sorted(data.histograms):
        histogram = data.histograms[metric]
        base = _name(metric)
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count {histogram.count}")
        lines.append(f"{base}_sum {_finite(histogram.total):g}")
        lines.append(f"{base}_min {_finite(histogram.minimum):g}")
        lines.append(f"{base}_max {_finite(histogram.maximum):g}")

    for metric in sorted(data.labeled):
        base = _name(metric)
        lines.append(f"# TYPE {base} histogram")
        for key in sorted(data.labeled[metric]):
            bucketed = data.labeled[metric][key]
            cumulative = 0
            for bound, count in zip(
                LATENCY_BUCKETS_MS, bucketed.buckets
            ):
                cumulative += count
                le_pairs = tuple(key) + (("le", f"{bound:g}"),)
                lines.append(
                    f"{base}_bucket{_labels_text(le_pairs)} {cumulative}"
                )
            inf_pairs = tuple(key) + (("le", "+Inf"),)
            lines.append(
                f"{base}_bucket{_labels_text(inf_pairs)} {bucketed.count}"
            )
            lines.append(
                f"{base}_sum{_labels_text(key)} {_finite(bucketed.total):g}"
            )
            lines.append(
                f"{base}_count{_labels_text(key)} {bucketed.count}"
            )

    return "\n".join(lines) + "\n"


def render_slo_prometheus(slo_report: Dict) -> str:
    """SLO scorecard gauges appended to the exposition output."""
    lines: List[str] = []
    for field in (
        "requests", "unavailable", "throttled", "degraded",
        "availability", "availability_target",
        "p50_ms", "p50_target_ms", "p99_ms", "p99_target_ms",
        "error_budget_burned",
    ):
        name = _name(f"slo.{field}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {float(slo_report[field]):g}")
    for field in ("availability_met", "p50_met", "p99_met"):
        name = _name(f"slo.{field}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {1 if slo_report[field] else 0}")
    return "\n".join(lines) + "\n"
