"""Self-contained HTML campaign reports, rendered from the journal.

One file, no external assets, inline CSS: the report survives being
mailed around or attached to CI runs.  Everything in it comes from
:class:`~repro.campaign.executor.CampaignReport`, which is itself a
pure fold over ``journal.jsonl`` — so ``repro campaign report`` can
regenerate the page from a bare campaign directory at any time,
including one whose process was ``kill -9``'d mid-run.

Layout follows the paper's presentation: one table per workload with
the overhead components (spill / caller-save / callee-save / shuffle)
and cycle counts per allocator × register file, then the campaign's
failure and resume accounting (retries, quarantined poison points,
dead runs, corrupt journal records), then links to any Chrome trace
files captured alongside the journal.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign.executor import CampaignReport, PointOutcome

_STYLE = """
body { font-family: Georgia, 'Times New Roman', serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a1a; }
h1, h2 { font-weight: normal; border-bottom: 1px solid #888;
         padding-bottom: .2rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem;
        font-variant-numeric: tabular-nums; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: right; }
th { background: #f2f2ee; }
td.label, th.label { text-align: left; font-family: ui-monospace, monospace; }
.status-computed { color: #14600f; }
.status-failed { color: #8c1515; font-weight: bold; }
.status-interrupted, .status-pending { color: #8a6d00; }
.status-quarantined { color: #8c1515; font-style: italic; }
.summary { background: #f7f7f2; border: 1px solid #ccc; padding: .8rem 1rem; }
.summary dt { font-weight: bold; float: left; clear: left; width: 16rem; }
.summary dd { margin-left: 17rem; }
code { background: #eee; padding: 0 .2rem; }
"""


def _esc(value) -> str:
    return _html.escape(str(value))


def _fmt(value, digits: int = 0) -> str:
    if value is None:
        return "—"
    return f"{value:,.{digits}f}"


def _workload_table(workload: str, outcomes: List["PointOutcome"]) -> List[str]:
    rows = [
        f"<h2>{_esc(workload)}</h2>",
        "<table>",
        "<tr><th class=label>allocator</th><th class=label>config</th>"
        "<th class=label>info</th><th>spill</th><th>caller</th>"
        "<th>callee</th><th>shuffle</th><th>total</th><th>cycles</th>"
        "<th class=label>status</th></tr>",
    ]
    for outcome in outcomes:
        key = outcome.key
        options_label = outcome.label.split(":", 2)[1] if ":" in outcome.label else "?"
        overhead = outcome.overhead or {}
        total = sum(overhead.values()) if overhead else None
        status = _esc(outcome.status)
        detail = ""
        if outcome.error:
            detail = f' title="{_esc(outcome.error)}"'
        rows.append(
            "<tr>"
            f"<td class=label>{_esc(options_label)}</td>"
            f"<td class=label>{_esc(tuple(key['config']))}</td>"
            f"<td class=label>{_esc(key['info'])}</td>"
            f"<td>{_fmt(overhead.get('spill'))}</td>"
            f"<td>{_fmt(overhead.get('caller_save'))}</td>"
            f"<td>{_fmt(overhead.get('callee_save'))}</td>"
            f"<td>{_fmt(overhead.get('shuffle'))}</td>"
            f"<td>{_fmt(total)}</td>"
            f"<td>{_fmt(outcome.cycles)}</td>"
            f"<td class='label status-{status}'{detail}>{status}</td>"
            "</tr>"
        )
    rows.append("</table>")
    return rows


def render_campaign_html(report: "CampaignReport") -> str:
    """The whole report as one self-contained HTML document."""
    counts = report.counts()
    state = "checkpointed (resumable)" if report.interrupted else (
        "complete" if report.complete else "partial"
    )
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>campaign: {_esc(report.name)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Campaign report: {_esc(report.name)}</h1>",
        "<dl class=summary>",
        f"<dt>state</dt><dd>{_esc(state)}</dd>",
        "<dt>points</dt><dd>"
        + ", ".join(
            f"{counts.get(s, 0)} {s}"
            for s in ("computed", "failed", "interrupted", "quarantined", "pending")
            if counts.get(s)
        )
        + f" (of {len(report.outcomes)})</dd>",
        f"<dt>runs</dt><dd>{report.runs} total, "
        f"{report.dead_runs} died without checkpointing</dd>",
        f"<dt>resumed points</dt><dd>{report.resumed_points}</dd>",
        f"<dt>journal</dt><dd>{report.replayed_records} record(s) replayed, "
        f"{report.corrupt_records} corrupt (skipped and recomputed)</dd>",
        f"<dt>spec digest</dt><dd><code>{_esc(report.spec_digest)}</code></dd>",
        f"<dt>report digest</dt><dd><code>{_esc(report.digest)}</code></dd>",
        "</dl>",
    ]

    by_workload: Dict[str, List["PointOutcome"]] = {}
    for outcome in report.outcomes:
        by_workload.setdefault(outcome.key["workload"], []).append(outcome)
    for workload, outcomes in by_workload.items():
        parts.extend(_workload_table(workload, outcomes))

    troubled = [
        outcome
        for outcome in report.outcomes
        if outcome.status in ("failed", "quarantined", "interrupted")
    ]
    if troubled:
        parts.append("<h2>Failures and quarantine</h2><table>")
        parts.append(
            "<tr><th class=label>point</th><th class=label>status</th>"
            "<th>attempts</th><th class=label>error</th></tr>"
        )
        for outcome in troubled:
            parts.append(
                "<tr>"
                f"<td class=label>{_esc(outcome.label)}</td>"
                f"<td class='label status-{_esc(outcome.status)}'>"
                f"{_esc(outcome.status)}</td>"
                f"<td>{outcome.attempts}</td>"
                f"<td class=label>{_esc(outcome.error or '')}</td>"
                "</tr>"
            )
        parts.append("</table>")

    if report.traces:
        parts.append("<h2>Chrome traces</h2><ul>")
        for trace in report.traces:
            parts.append(
                f"<li><a href='{_esc(trace)}'>{_esc(trace)}</a> "
                "(load in chrome://tracing or Perfetto)</li>"
            )
        parts.append("</ul>")

    parts.append("</body></html>")
    return "\n".join(parts)
