"""The campaign executor: shard, journal, checkpoint, resume, report.

:func:`run_campaign` turns a :class:`~repro.campaign.spec.CampaignSpec`
plus an output directory into a finished (or checkpointed)
:class:`CampaignReport`.  The directory is the campaign's entire
durable state — ``journal.jsonl`` plus the atomically-published
``report.json`` / ``report.html`` — so "resume" is not a separate
command: running the same spec against the same directory *is* the
resume.  The executor replays the journal, decides per point whether
it is done, owed a retry, quarantined, or pending, and runs only what
is left.

Lifecycle of one invocation ("run" below means one process lifetime):

1. Replay the journal.  A header whose spec digest disagrees with the
   current spec is a hard error — silently mixing two campaigns' points
   in one journal would corrupt both reports.
2. Classify every spec point: ``computed`` stays done; ``failed``
   retries while journal-recorded failures are within the spec's
   retry budget; ``interrupted`` always reruns (a death is not a
   verdict); points struck by orphaned shard starts at or past
   ``poison_threshold`` are quarantined, below it they rerun in
   **singleton shards** so the next death convicts exactly one point.
3. Write ``shard_start`` before touching a shard, journal every
   computed point from ``run_grid``'s ``on_point`` hook the moment it
   merges, journal failures when the shard resolves.
4. SIGTERM and SIGINT both convert to ``KeyboardInterrupt``, which
   ``run_grid`` already absorbs into an interrupted report: the
   executor journals the cut-off points as ``interrupted``, writes
   ``run_end`` and returns a checkpointed report.  ``kill -9`` skips
   all of that by definition — then the *absence* of ``run_end`` is
   itself the durable record (orphaned shard starts, see step 2).
5. Rebuild the report purely from a fresh journal replay — never from
   in-memory state — so ``repro campaign report`` produces the
   identical artifact from the directory alone.

The report digest covers only deterministic outcomes (point status,
overhead components, cycles, error text) plus the spec digest: an
uninterrupted run and any kill/resume sequence that converges to the
same measurements produce byte-identical digests, which is exactly
what the campaign chaos test asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.eval.runner import (
    FailureRecord,
    Measurement,
    MeasureKey,
    ResultCache,
    describe_key,
    key_as_dict,
    run_grid,
)

from repro.campaign.journal import CampaignJournal, ReplayState
from repro.campaign.spec import CampaignSpec, point_id


class CampaignError(RuntimeError):
    """A campaign that cannot run (digest mismatch, unwritable dir)."""


@dataclass
class PointOutcome:
    """The report's view of one grid point."""

    point_id: str
    label: str
    key: dict
    #: computed | failed | interrupted | quarantined | pending
    status: str
    overhead: Optional[dict] = None
    cycles: Optional[float] = None
    #: Resilience rung that produced the numbers (resilient runs only).
    rung: Optional[str] = None
    error: Optional[str] = None
    attempts: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def digest_view(self) -> dict:
        """The deterministic slice that feeds the campaign digest.

        Attempts, rungs and run attribution vary with scheduling and
        kill timing; status and the measured numbers do not.
        """
        return {
            "point_id": self.point_id,
            "status": self.status,
            "overhead": self.overhead,
            "cycles": self.cycles,
            "error": self.error,
        }


@dataclass
class CampaignReport:
    """Everything a finished (or checkpointed) campaign knows."""

    name: str
    spec_digest: str
    outcomes: List[PointOutcome] = field(default_factory=list)
    #: True when this invocation checkpointed on a signal instead of
    #: finishing the point list.
    interrupted: bool = False
    runs: int = 0
    #: Runs that died without a ``run_end`` (kill -9, OOM, power).
    dead_runs: int = 0
    corrupt_records: int = 0
    replayed_records: int = 0
    #: Points recomputed this invocation because an earlier run only
    #: interrupted them.
    resumed_points: int = 0
    #: Chrome trace files written next to the journal, newest last.
    traces: List[str] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def complete(self) -> bool:
        return all(
            outcome.status in ("computed", "failed", "quarantined")
            for outcome in self.outcomes
        )

    @property
    def digest(self) -> str:
        """Digest of the deterministic campaign outcome.

        Covers the spec digest and every point's :meth:`digest_view`,
        in spec order.  Resume accounting (runs, corrupt records,
        attempts) is deliberately excluded: a campaign killed three
        times must converge to the same digest as one that never was.
        """
        doc = {
            "spec_digest": self.spec_digest,
            "points": [outcome.digest_view() for outcome in self.outcomes],
        }
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict:
        return {
            "campaign_schema": 1,
            "name": self.name,
            "spec_digest": self.spec_digest,
            "digest": self.digest,
            "complete": self.complete,
            "interrupted": self.interrupted,
            "counts": self.counts(),
            "runs": self.runs,
            "dead_runs": self.dead_runs,
            "corrupt_records": self.corrupt_records,
            "replayed_records": self.replayed_records,
            "resumed_points": self.resumed_points,
            "traces": list(self.traces),
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish ``path`` atomically: readers see old bytes or new bytes."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _measurement_payload(measurement: Measurement) -> dict:
    rung = None
    if measurement.resilience is not None:
        rung = measurement.resilience.get("rung")
    return {
        "overhead": asdict(measurement.overhead),
        "cycles": measurement.cycles,
        "rung": rung,
    }


def build_report(
    spec: CampaignSpec,
    state: ReplayState,
    interrupted: bool = False,
    resumed_points: int = 0,
    traces: Optional[List[str]] = None,
) -> CampaignReport:
    """Fold a journal replay into a :class:`CampaignReport`.

    Pure function of (spec, replay): ``repro campaign report`` calls
    it on a bare directory and gets the same artifact the executor
    published, which is what makes the HTML rebuildable offline.
    """
    report = CampaignReport(
        name=spec.name,
        spec_digest=spec.digest,
        interrupted=interrupted,
        runs=len(state.runs),
        dead_runs=len(state.dead_runs),
        corrupt_records=state.corrupt_records,
        replayed_records=state.replayed_records,
        resumed_points=resumed_points,
        traces=list(traces or ()),
    )
    for key in spec.points:
        pid = point_id(key)
        outcome = PointOutcome(
            point_id=pid,
            label=describe_key(key),
            key=key_as_dict(key),
            status="pending",
        )
        record = state.points.get(pid)
        if pid in state.quarantined:
            outcome.status = "quarantined"
            outcome.error = state.quarantined[pid].get("reason", "poison point")
            outcome.attempts = state.quarantined[pid].get("strikes", 0)
        elif record is not None:
            outcome.status = record.get("status", "pending")
            outcome.overhead = record.get("overhead")
            outcome.cycles = record.get("cycles")
            outcome.rung = record.get("rung")
            outcome.error = record.get("error")
            outcome.attempts = record.get("attempts", 0)
            if outcome.status == "failed":
                outcome.attempts = state.failed_attempts.get(pid, 1)
        report.outcomes.append(outcome)
    return report


def publish_report(report: CampaignReport, directory: Path) -> Path:
    """Atomically write ``report.json`` and ``report.html``."""
    from repro.campaign.html import render_campaign_html

    directory = Path(directory)
    payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    _atomic_write_text(directory / "report.json", payload)
    _atomic_write_text(directory / "report.html", render_campaign_html(report))
    return directory / "report.json"


@dataclass
class _PlannedPoint:
    key: MeasureKey
    pid: str
    #: Points with orphan strikes run alone for precise attribution.
    singleton: bool = False


def _plan(
    spec: CampaignSpec, state: ReplayState, journal: CampaignJournal
) -> Tuple[List[_PlannedPoint], int]:
    """Decide what this invocation must compute.

    Returns the pending plan and how many of those points are resumes
    of interrupted work (for the report's resume accounting).  Appends
    ``quarantine`` records for points that just struck out.
    """
    pending: List[_PlannedPoint] = []
    resumed = 0
    for key in spec.points:
        pid = point_id(key)
        if pid in state.quarantined:
            continue
        strikes = state.strikes.get(pid, 0)
        status = state.status_of(pid)
        if status == "computed":
            continue
        if strikes >= spec.poison_threshold:
            journal.append(
                "quarantine",
                {
                    "point_id": pid,
                    "label": describe_key(key),
                    "strikes": strikes,
                    "reason": (
                        f"killed {strikes} run(s) without completing "
                        f"(threshold {spec.poison_threshold})"
                    ),
                },
            )
            state.quarantined[pid] = {"strikes": strikes}
            continue
        if status == "failed":
            if state.failed_attempts.get(pid, 0) > spec.retries:
                continue  # budget exhausted: stays failed in the report
            pending.append(_PlannedPoint(key, pid, singleton=strikes > 0))
            continue
        if status == "interrupted":
            resumed += 1
        pending.append(_PlannedPoint(key, pid, singleton=strikes > 0))
    return pending, resumed


def _shards(
    plan: List[_PlannedPoint], shard_size: int
) -> List[List[_PlannedPoint]]:
    """Suspects first, each alone; then the innocent, ``shard_size`` at
    a time in spec order (which is workload-major, matching run_grid's
    chunking)."""
    shards: List[List[_PlannedPoint]] = []
    bulk: List[_PlannedPoint] = []
    for planned in plan:
        if planned.singleton:
            shards.append([planned])
        else:
            bulk.append(planned)
    for start in range(0, len(bulk), shard_size):
        shards.append(bulk[start : start + shard_size])
    return shards


class _SignalCheckpoint:
    """Route SIGTERM through the same checkpoint path as Ctrl-C.

    ``run_grid`` already turns ``KeyboardInterrupt`` into a clean
    interrupted report; re-raising it from the SIGTERM handler makes a
    polite ``kill`` indistinguishable from Ctrl-C — journal the cut
    points, write ``run_end``, publish the checkpointed report, exit.
    """

    def __init__(self) -> None:
        self.signaled: Optional[int] = None
        self._previous: Dict[int, object] = {}

    def __enter__(self) -> "_SignalCheckpoint":
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)

    def _handle(self, signum, frame) -> None:
        self.signaled = signum
        raise KeyboardInterrupt


def run_campaign(
    spec: CampaignSpec,
    out_dir,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run (or resume) ``spec`` against ``out_dir``; see module docs."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    journal = CampaignJournal(directory)
    state = journal.replay()

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    if state.header is not None:
        recorded = state.header.get("spec_digest")
        if recorded != spec.digest:
            raise CampaignError(
                f"journal in {directory} belongs to a different campaign "
                f"(spec digest {recorded}, current {spec.digest}); "
                f"use a fresh --out directory"
            )
        say(
            f"resuming {spec.name}: {state.replayed_records} record(s) "
            f"replayed, {state.corrupt_records} corrupt, "
            f"{len(state.dead_runs)} dead run(s)"
        )
    else:
        journal.append(
            "campaign",
            {
                "name": spec.name,
                "spec_digest": spec.digest,
                "points": len(spec.points),
            },
        )
    # Replay-derived seq continues after what's on disk so a resumed
    # journal keeps monotonically increasing sequence numbers.
    journal._seq = max(journal._seq, state.replayed_records + state.corrupt_records)

    plan, resumed_points = _plan(spec, state, journal)
    say(
        f"{spec.name}: {len(spec.points)} point(s), "
        f"{len(plan)} to compute ({resumed_points} resumed)"
    )

    run_id = f"run-{len(state.runs) + 1:03d}-{os.getpid()}-{int(time.time())}"
    traces = sorted(p.name for p in directory.glob("trace-*.json"))
    interrupted = False
    spans: list = []
    # A private cache per invocation: cross-run reuse is the journal's
    # job, and process-global cache state (a warm experiment driver in
    # the same interpreter) must not leak into campaign accounting.
    cache = ResultCache()

    with _SignalCheckpoint() as checkpoint:
        try:
            for shard in _shards(plan, spec.shard_size):
                keys = [planned.key for planned in shard]
                ids = {planned.key: planned.pid for planned in shard}
                journal.append(
                    "shard_start",
                    {"run_id": run_id, "points": [p.pid for p in shard]},
                )

                def on_point(key: MeasureKey, measurement: Measurement) -> None:
                    payload = {
                        "point_id": ids[key],
                        "run_id": run_id,
                        "key": key_as_dict(key),
                        "status": "computed",
                        "attempts": 1,
                    }
                    payload.update(_measurement_payload(measurement))
                    journal.append("point", payload)
                    if spec.trace:
                        spans.extend(measurement.spans)

                grid = run_grid(
                    keys,
                    jobs=spec.jobs,
                    cache=cache,
                    verify=spec.verify,
                    timeout=spec.timeout,
                    resilient=spec.resilient,
                    trace=spec.trace,
                    on_point=on_point,
                )
                # Spec points are deduplicated, so a cached resolution
                # should be impossible with the private cache — but if
                # one ever happens, journal it as computed anyway so
                # the journal alone reconstructs the report.
                for key in grid.cached:
                    measurement = cache.peek(key)
                    if measurement is None:  # pragma: no cover - defensive
                        continue
                    payload = {
                        "point_id": ids[key],
                        "run_id": run_id,
                        "key": key_as_dict(key),
                        "status": "computed",
                        "attempts": 1,
                    }
                    payload.update(_measurement_payload(measurement))
                    journal.append("point", payload)
                for record in grid.failed:
                    journal.append(
                        "point",
                        {
                            "point_id": ids[record.key],
                            "run_id": run_id,
                            "key": key_as_dict(record.key),
                            "status": (
                                "interrupted"
                                if record.interrupted
                                else "failed"
                            ),
                            "error": record.error,
                            "attempts": record.attempts,
                        },
                    )
                if grid.interrupted:
                    interrupted = True
                    break
        except KeyboardInterrupt:
            # Signal landed outside run_grid (between shards, or while
            # journaling): everything not yet journaled this shard is
            # simply absent, which replay treats as pending.
            interrupted = True

    if checkpoint.signaled is not None:
        interrupted = True
        say(f"checkpointing on signal {checkpoint.signaled}")

    if spec.trace and spans:
        from repro.obs import write_chrome_trace

        trace_name = f"trace-{run_id}.json"
        write_chrome_trace(directory / trace_name, spans)
        traces.append(trace_name)

    journal.append("run_end", {"run_id": run_id, "interrupted": interrupted})
    journal.close()

    final_state = journal.replay()
    report = build_report(
        spec,
        final_state,
        interrupted=interrupted,
        resumed_points=resumed_points,
        traces=traces,
    )
    publish_report(report, directory)
    say(
        f"{spec.name}: {report.counts()} — "
        + ("checkpointed" if interrupted else "complete")
        + f", digest {report.digest[:16]}"
    )
    return report


def report_from_directory(spec: CampaignSpec, out_dir) -> CampaignReport:
    """Rebuild the report for ``out_dir`` from its journal alone."""
    directory = Path(out_dir)
    journal = CampaignJournal(directory)
    state = journal.replay()
    if state.header is not None:
        recorded = state.header.get("spec_digest")
        if recorded != spec.digest:
            raise CampaignError(
                f"journal in {directory} belongs to a different campaign "
                f"(spec digest {recorded}, current {spec.digest})"
            )
    traces = sorted(p.name for p in directory.glob("trace-*.json"))
    return build_report(spec, state, traces=traces)
