"""Crash-safe, resumable experiment campaigns.

A campaign is the whole paper's measurement grid declared once in a
TOML file, compiled to a deterministic point list, executed in shards
through the fault-tolerant sweep executor, and checkpointed to an
append-only journal after every point.  Re-running the same spec
against the same output directory resumes: completed points are
skipped, interrupted points are retried, genuinely failed points get
a bounded retry budget, and points that keep killing the process are
quarantined as poison.  The report (JSON + self-contained HTML) is a
pure fold over the journal, so it can be rebuilt offline from the
campaign directory alone — including after ``kill -9``.

Layering::

    spec.py      TOML -> CampaignSpec (validated, deterministic points)
    journal.py   append-only checksummed JSONL, tolerant replay
    executor.py  shard / journal / checkpoint / resume / report
    html.py      self-contained HTML from a CampaignReport
"""

from repro.campaign.executor import (
    CampaignError,
    CampaignReport,
    PointOutcome,
    build_report,
    publish_report,
    report_from_directory,
    run_campaign,
)
from repro.campaign.html import render_campaign_html
from repro.campaign.journal import (
    JOURNAL_SCHEMA_VERSION,
    KILL_ENV_VAR,
    CampaignJournal,
    ReplayState,
)
from repro.campaign.spec import (
    CampaignSpec,
    SpecError,
    load_spec,
    parse_spec,
    point_id,
)

__all__ = [
    "CampaignError",
    "CampaignJournal",
    "CampaignReport",
    "CampaignSpec",
    "JOURNAL_SCHEMA_VERSION",
    "KILL_ENV_VAR",
    "PointOutcome",
    "ReplayState",
    "SpecError",
    "build_report",
    "load_spec",
    "parse_spec",
    "point_id",
    "publish_report",
    "render_campaign_html",
    "report_from_directory",
    "run_campaign",
]
