"""The durable campaign journal: append-only, checksummed, replayable.

One campaign directory holds one ``journal.jsonl``.  Every record is a
versioned envelope in the :mod:`repro.store` style::

    {"journal_schema": 1, "seq": N, "kind": "...",
     "checksum": sha256(canonical payload), "payload": {...}}

one per line.  Appends go through a single ``os.write`` on an
``O_APPEND`` descriptor followed by ``fsync`` — on POSIX a one-shot
append never interleaves with a concurrent writer, and once ``append``
returns the record survives ``kill -9``.  The only damage a crash can
leave is a *truncated final line* (the process died inside the write),
and replay is built around exactly that: any line that fails to parse,
carries the wrong schema, or fails its checksum is **counted and
skipped** — the point it described is simply recomputed, mirroring the
artifact store's degrade-to-miss discipline.  Derived artifacts that
are whole files rather than appended lines (``report.json``,
``report.html``, the resolved spec echo) are published atomically via
tmp+rename, so readers never observe a torn report.

Why not tmp+rename per record?  Rename replaces a whole file: turning
each append into read-modify-rename would make the journal O(n²) in
campaign size and — worse — a death mid-rewrite would lose the entire
history instead of one trailing line.  Append-only keeps every
already-acknowledged record immutable on disk.

Record kinds (see :mod:`repro.campaign.executor` for the semantics):

* ``campaign`` — header: spec name, digest, point count.  Always the
  logical first record; resume refuses a digest mismatch.
* ``shard_start`` — a run is about to compute these point ids.
  Orphaned shard starts (a ``run_id`` that never wrote ``run_end``)
  are how poison points are detected.
* ``point`` — terminal state of one point: ``computed`` (with its
  measurement payload), ``failed``, or ``interrupted``.
* ``quarantine`` — a point struck out and will not be retried.
* ``run_end`` — the run exited cleanly (finished or checkpointed).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Bump when a journal record would replay incorrectly under current
#: code; old journals then count as corrupt records and recompute.
JOURNAL_SCHEMA_VERSION = 1

#: Chaos hook: when set to an integer N, the journal SIGKILLs its own
#: process immediately after the Nth successful append.  This is how
#: the campaign chaos test murders a real campaign at seeded points —
#: deterministically, after a record is durable, exactly the moment a
#: hostile scheduler could.  Never set outside tests.
KILL_ENV_VAR = "REPRO_CAMPAIGN_KILL_AFTER"


def _checksum(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ReplayState:
    """Everything a resume (or a report rebuild) needs from the journal.

    ``points`` maps point id to its **latest** terminal record —
    last-writer-wins, so a retried point's newest outcome shadows the
    older ones while ``attempts_of`` still sees the full history.
    """

    header: Optional[dict] = None
    #: point id -> latest terminal payload (status computed/failed/
    #: interrupted), each carrying its serialized key.
    points: Dict[str, dict] = field(default_factory=dict)
    #: point id -> total *failed* attempts recorded across all runs.
    failed_attempts: Dict[str, int] = field(default_factory=dict)
    #: point id -> orphaned-shard strikes (possible poison).
    strikes: Dict[str, int] = field(default_factory=dict)
    #: point ids already quarantined by an earlier run.
    quarantined: Dict[str, dict] = field(default_factory=dict)
    #: run ids seen, in first-appearance order.
    runs: List[str] = field(default_factory=list)
    #: run ids that wrote a run_end record.
    ended_runs: List[str] = field(default_factory=list)
    #: records that failed to parse or verify, skipped at replay.
    corrupt_records: int = 0
    #: well-formed records replayed.
    replayed_records: int = 0

    @property
    def dead_runs(self) -> List[str]:
        """Runs that died without checkpointing (no ``run_end``)."""
        ended = set(self.ended_runs)
        return [run_id for run_id in self.runs if run_id not in ended]

    def status_of(self, pid: str) -> Optional[str]:
        record = self.points.get(pid)
        return record["status"] if record is not None else None


class CampaignJournal:
    """Append/replay access to one campaign's ``journal.jsonl``."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "journal.jsonl"
        self._fd: Optional[int] = None
        self._seq = 0
        self._appends = 0
        kill_after = os.environ.get(KILL_ENV_VAR)
        self._kill_after = int(kill_after) if kill_after else None

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def _ensure_open(self) -> int:
        if self._fd is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def append(self, kind: str, payload: dict) -> dict:
        """Durably append one record; returns the envelope written.

        The record is on disk (fsync'd) when this returns — a caller
        that hears back may be SIGKILLed immediately after and the
        record still replays.
        """
        self._seq += 1
        envelope = {
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "seq": self._seq,
            "kind": kind,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        line = json.dumps(envelope, sort_keys=True) + "\n"
        fd = self._ensure_open()
        os.write(fd, line.encode("utf-8"))
        os.fsync(fd)
        self._appends += 1
        if self._kill_after is not None and self._appends >= self._kill_after:
            os.kill(os.getpid(), signal.SIGKILL)  # chaos hook; see KILL_ENV_VAR
        return envelope

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def replay(self) -> ReplayState:
        """Fold the journal into a :class:`ReplayState`.

        Tolerant by construction: a record that cannot be parsed or
        verified increments ``corrupt_records`` and is skipped — its
        point (if any) simply looks not-yet-done and gets recomputed.
        Never raises on journal content.
        """
        state = ReplayState()
        try:
            raw = self.path.read_bytes()
        except OSError:
            return state
        shard_points: Dict[str, List[str]] = {}  # run_id -> point ids started
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                envelope = json.loads(line.decode("utf-8"))
                if envelope["journal_schema"] != JOURNAL_SCHEMA_VERSION:
                    raise ValueError("journal schema mismatch")
                kind = envelope["kind"]
                payload = envelope["payload"]
                if not isinstance(payload, dict):
                    raise ValueError("payload is not an object")
                if envelope["checksum"] != _checksum(payload):
                    raise ValueError("checksum mismatch")
            except Exception:  # noqa: BLE001 - corruption is a skip, never a crash
                state.corrupt_records += 1
                continue
            state.replayed_records += 1
            if kind == "campaign":
                if state.header is None:
                    state.header = payload
            elif kind == "shard_start":
                run_id = payload.get("run_id", "")
                if run_id not in state.runs:
                    state.runs.append(run_id)
                shard_points.setdefault(run_id, []).extend(
                    payload.get("points", [])
                )
            elif kind == "point":
                pid = payload.get("point_id", "")
                state.points[pid] = payload
                if payload.get("status") == "failed":
                    state.failed_attempts[pid] = (
                        state.failed_attempts.get(pid, 0) + 1
                    )
            elif kind == "quarantine":
                state.quarantined[payload.get("point_id", "")] = payload
            elif kind == "run_end":
                run_id = payload.get("run_id", "")
                if run_id not in state.runs:
                    state.runs.append(run_id)
                state.ended_runs.append(run_id)
            # Unknown kinds replay as no-ops: forward compatibility
            # within one schema version costs nothing here.

        # A dead run's started-but-unfinished points were in flight
        # when the process died: each earns a poison strike.  Points
        # that *did* reach a terminal record in some run are only
        # struck for the runs where they did not (they may have been
        # the chunk-mate of the killer, or the killer itself on a
        # retry — the executor decides at what strike count to
        # quarantine).
        for run_id in state.dead_runs:
            seen = set()
            for pid in shard_points.get(run_id, []):
                if pid in seen:
                    continue
                seen.add(pid)
                record = state.points.get(pid)
                if record is not None and record.get("run_id") == run_id:
                    continue  # finished inside that run before it died
                state.strikes[pid] = state.strikes.get(pid, 0) + 1
        return state
