"""TOML campaign specs and their compilation to a point list.

A campaign spec declares the whole experiment once — workloads,
presets, register-file sweeps, information sources, named experiment
grids, retry budgets — and :func:`load_spec` compiles it into a
**deterministic** list of grid points.  Determinism is the contract
everything downstream leans on: the journal identifies points by a
content digest of their full key, the executor shards the list in
order, and a resumed run must enumerate exactly the same points in
exactly the same order as the run that died.

::

    [campaign]
    name = "paper-sweep"

    [grid]
    workloads = ["compress", "li"]
    presets = ["base", "improved"]
    infos = ["dynamic"]
    configs = "mips"          # the canonical sweep; or [[6,4,2,2], ...]
    experiments = ["table4"]  # union in named experiment grids

    [run]
    jobs = 2
    shard_size = 8
    retries = 1
    poison_threshold = 2

Unknown keys anywhere in the document are an error — a typo'd budget
silently ignored would run the wrong campaign for hours.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.runner import MeasureKey, describe_key, key_as_dict
from repro.machine.mips import mips_sweep
from repro.machine.registers import RegisterConfig
from repro.regalloc.options import PRESETS


class SpecError(ValueError):
    """A campaign spec that cannot be compiled into a point list."""


def point_id(key: MeasureKey) -> str:
    """Stable content address of one grid point.

    The human label (:func:`describe_key`) elides option fields that
    do not show up in the allocator label (``bs_key``, ``spill_metric``
    — the ablation grids differ only there), so identity hashes the
    *full* key dict instead.
    """
    canonical = json.dumps(
        key_as_dict(key), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: metadata, budgets, and the point list."""

    name: str
    points: Tuple[MeasureKey, ...]
    jobs: int = 1
    shard_size: int = 8
    #: Extra tries a *genuinely failed* point gets across resumes
    #: (interrupted points are always retried and never consume this).
    retries: int = 1
    #: Orphaned-start strikes before a point is quarantined as poison.
    poison_threshold: int = 2
    timeout: Optional[float] = None
    verify: bool = False
    resilient: bool = False
    #: Capture phase spans and write one Chrome trace file per run.
    trace: bool = False
    #: The raw (normalized) spec document, for the journal header.
    raw: dict = field(default_factory=dict, compare=False)

    @property
    def digest(self) -> str:
        """Content digest of the compiled campaign.

        Hashes the *point list* plus the result-affecting flags — not
        the raw TOML — so cosmetic spec edits (reordered tables,
        comments, changed shard size or retry budgets) do not orphan
        an existing journal, while anything that changes what gets
        measured does.
        """
        doc = {
            "name": self.name,
            "points": [key_as_dict(key) for key in self.points],
            "verify": self.verify,
            "resilient": self.resilient,
        }
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def point_ids(self) -> Dict[str, MeasureKey]:
        return {point_id(key): key for key in self.points}

    def describe(self) -> List[str]:
        return [describe_key(key) for key in self.points]


def _require_table(doc: dict, name: str) -> dict:
    value = doc.get(name)
    if not isinstance(value, dict):
        raise SpecError(f"spec needs a [{name}] table")
    return value


def _check_keys(table: dict, name: str, allowed: Sequence[str]) -> None:
    unknown = sorted(set(table) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown key(s) in [{name}]: {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _parse_configs(value) -> List[RegisterConfig]:
    if value == "mips":
        return list(mips_sweep())
    if isinstance(value, dict):
        _check_keys(value, "grid.configs", ("sweep", "limit"))
        if value.get("sweep") != "mips":
            raise SpecError("grid.configs table supports sweep = 'mips' only")
        limit = value.get("limit")
        configs = list(mips_sweep())
        if limit is not None:
            if not isinstance(limit, int) or limit < 1:
                raise SpecError("grid.configs.limit must be a positive integer")
            configs = configs[:limit]
        return configs
    if isinstance(value, list) and value:
        configs = []
        for item in value:
            if (
                not isinstance(item, list)
                or len(item) != 4
                or not all(isinstance(n, int) and n >= 0 for n in item)
            ):
                raise SpecError(
                    f"each config must be four non-negative ints "
                    f"[Ri, Rf, Ei, Ef], got {item!r}"
                )
            configs.append(RegisterConfig(*item))
        return configs
    raise SpecError(
        "grid.configs must be 'mips', {sweep='mips', limit=N} or a "
        "non-empty list of [Ri, Rf, Ei, Ef] quadruples"
    )


def _parse_names(table: dict, key: str, valid: Optional[Sequence[str]] = None):
    value = table.get(key)
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SpecError(f"grid.{key} must be a list of strings")
    if valid is not None:
        unknown = sorted(set(value) - set(valid))
        if unknown:
            raise SpecError(
                f"unknown grid.{key}: {', '.join(unknown)} "
                f"(choose from: {', '.join(sorted(valid))})"
            )
    return value


def parse_spec(doc: dict, name_fallback: str = "campaign") -> CampaignSpec:
    """Compile a parsed TOML document into a :class:`CampaignSpec`."""
    if not isinstance(doc, dict):
        raise SpecError("spec must be a TOML document")
    _check_keys(doc, "spec", ("campaign", "grid", "run"))
    meta = doc.get("campaign", {})
    _check_keys(meta, "campaign", ("name", "description"))
    name = meta.get("name", name_fallback)
    if not isinstance(name, str) or not name:
        raise SpecError("campaign.name must be a non-empty string")

    grid = _require_table(doc, "grid")
    _check_keys(
        grid,
        "grid",
        ("workloads", "presets", "infos", "configs", "experiments"),
    )

    points: List[MeasureKey] = []
    if any(key in grid for key in ("workloads", "presets", "configs")):
        from repro.workloads import workload_names

        workloads = _parse_names(grid, "workloads", workload_names())
        presets = _parse_names(grid, "presets", sorted(PRESETS))
        infos = grid.get("infos", ["dynamic"])
        if not isinstance(infos, list) or not set(infos) <= {
            "static",
            "dynamic",
        }:
            raise SpecError("grid.infos must be a list drawn from static/dynamic")
        configs = _parse_configs(grid.get("configs", "mips"))
        # Workload-major order matches run_grid's chunk-by-workload
        # strategy: a shard tends to hold one workload's points.
        for workload in workloads:
            for info in infos:
                for preset in presets:
                    options = PRESETS[preset]()
                    for config in configs:
                        points.append((workload, options, config, info))

    experiments = grid.get("experiments", [])
    if experiments:
        from repro.eval.experiments import experiment_grid_by_name

        if not isinstance(experiments, list):
            raise SpecError("grid.experiments must be a list of names")
        for experiment in experiments:
            try:
                points.extend(experiment_grid_by_name(experiment))
            except ValueError as error:
                raise SpecError(str(error)) from None

    deduped: List[MeasureKey] = []
    seen = set()
    for key in points:
        if key not in seen:
            seen.add(key)
            deduped.append(key)
    if not deduped:
        raise SpecError("spec compiles to zero grid points")

    run = doc.get("run", {})
    _check_keys(
        run,
        "run",
        (
            "jobs",
            "shard_size",
            "retries",
            "poison_threshold",
            "timeout",
            "verify",
            "resilient",
            "trace",
        ),
    )

    def _int(key: str, default: int, floor: int) -> int:
        value = run.get(key, default)
        if not isinstance(value, int) or value < floor:
            raise SpecError(f"run.{key} must be an integer >= {floor}")
        return value

    timeout = run.get("timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float)) or timeout <= 0
    ):
        raise SpecError("run.timeout must be a positive number of seconds")
    for flag in ("verify", "resilient", "trace"):
        if not isinstance(run.get(flag, False), bool):
            raise SpecError(f"run.{flag} must be a boolean")

    return CampaignSpec(
        name=name,
        points=tuple(deduped),
        jobs=_int("jobs", 1, 1),
        shard_size=_int("shard_size", 8, 1),
        retries=_int("retries", 1, 0),
        poison_threshold=_int("poison_threshold", 2, 1),
        timeout=float(timeout) if timeout is not None else None,
        verify=bool(run.get("verify", False)),
        resilient=bool(run.get("resilient", False)),
        trace=bool(run.get("trace", False)),
        raw=doc,
    )


def _toml_loads(text: str) -> dict:
    """Parse TOML with whatever parser this interpreter has.

    ``tomllib`` is stdlib from 3.11; on older interpreters the
    ``tomli`` backport is accepted when present.  No parser at all is
    a :class:`SpecError` (not an ImportError) so the CLI reports it
    as a normal usage error instead of a traceback.
    """
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ModuleNotFoundError:
            raise SpecError(
                "campaign specs need a TOML parser: Python >= 3.11 "
                "(stdlib tomllib) or the tomli package"
            ) from None
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise SpecError(f"invalid TOML: {error}") from None


def load_spec(path) -> CampaignSpec:
    """Parse and compile a campaign spec from a TOML file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise SpecError(f"cannot read spec {path}: {error}") from None
    return parse_spec(_toml_loads(text), name_fallback=path.stem)
