"""Physical register file with caller-save / callee-save split.

The machine model follows the paper's MIPS target: two register banks
(integer and floating point), each divided into caller-save and
callee-save registers by the calling convention.  A configuration is
written ``(Ri, Rf, Ei, Ef)`` exactly as on the paper's x-axes: the
number of caller-save integer / caller-save float / callee-save
integer / callee-save float registers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, NamedTuple, Tuple

from repro.ir.types import FLOAT, INT, ValueType


class RegisterKind(enum.Enum):
    """Who is responsible for preserving the register across a call."""

    CALLER_SAVE = "caller"
    CALLEE_SAVE = "callee"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PhysReg(NamedTuple):
    """One physical register."""

    bank: ValueType
    kind: RegisterKind
    index: int
    name: str

    def __repr__(self) -> str:
        return self.name

    @property
    def is_callee_save(self) -> bool:
        return self.kind is RegisterKind.CALLEE_SAVE

    @property
    def is_caller_save(self) -> bool:
        return self.kind is RegisterKind.CALLER_SAVE


class RegisterConfig(NamedTuple):
    """A ``(Ri, Rf, Ei, Ef)`` register-file configuration."""

    caller_int: int
    caller_float: int
    callee_int: int
    callee_float: int

    def __str__(self) -> str:
        return (
            f"({self.caller_int},{self.caller_float},"
            f"{self.callee_int},{self.callee_float})"
        )

    def counts(self, bank: ValueType) -> Tuple[int, int]:
        """(caller-save count, callee-save count) for ``bank``."""
        if bank.is_float:
            return self.caller_float, self.callee_float
        return self.caller_int, self.callee_int

    @property
    def total(self) -> int:
        return sum(self)


@dataclass(frozen=True)
class RegisterBank:
    """All physical registers of one value type."""

    vtype: ValueType
    caller: Tuple[PhysReg, ...]
    callee: Tuple[PhysReg, ...]

    @property
    def registers(self) -> Tuple[PhysReg, ...]:
        return self.caller + self.callee

    @property
    def num_regs(self) -> int:
        return len(self.caller) + len(self.callee)

    def of_kind(self, kind: RegisterKind) -> Tuple[PhysReg, ...]:
        return self.caller if kind is RegisterKind.CALLER_SAVE else self.callee


class RegisterFile:
    """The complete register file for one configuration."""

    def __init__(self, config: RegisterConfig):
        for count in config:
            if count < 0:
                raise ValueError(f"negative register count in {config}")
        if config.caller_int + config.callee_int == 0:
            raise ValueError("register file needs at least one integer register")
        if config.caller_float + config.callee_float == 0:
            raise ValueError("register file needs at least one float register")
        self.config = config
        self._banks: Dict[ValueType, RegisterBank] = {
            INT: _make_bank(INT, *config.counts(INT)),
            FLOAT: _make_bank(FLOAT, *config.counts(FLOAT)),
        }

    def bank(self, vtype: ValueType) -> RegisterBank:
        return self._banks[vtype]

    @property
    def banks(self) -> Tuple[RegisterBank, ...]:
        return (self._banks[INT], self._banks[FLOAT])

    def all_registers(self) -> Tuple[PhysReg, ...]:
        return self._banks[INT].registers + self._banks[FLOAT].registers

    def __repr__(self) -> str:
        return f"<register file {self.config}>"


def _make_bank(vtype: ValueType, caller_count: int, callee_count: int) -> RegisterBank:
    prefix = "f" if vtype.is_float else "i"
    caller = tuple(
        PhysReg(vtype, RegisterKind.CALLER_SAVE, i, f"${prefix}c{i}")
        for i in range(caller_count)
    )
    callee = tuple(
        PhysReg(vtype, RegisterKind.CALLEE_SAVE, i, f"${prefix}s{i}")
        for i in range(callee_count)
    )
    return RegisterBank(vtype=vtype, caller=caller, callee=callee)
