"""MIPS-flavoured register-file constants and the canonical sweep.

The paper's measurements run on MIPS, whose standard calling
convention forces at least ``(6,4,0,0)``: four integer argument
registers plus two return registers, and two float argument plus two
float return registers, all caller-save.  The full usable file is 26
integer and 16 float registers, which we split (o32-style) into 17
caller-save + 9 callee-save integers and 10 caller-save + 6
callee-save floats.

``mips_sweep()`` is the register-pressure axis used by every figure:
it starts at the convention minimum and grows all four counts together
until the full file is reached, mirroring the ``(6,4,0,0) ...
(10,8,4,4) ...`` labels on the paper's x-axes.
"""

from __future__ import annotations

from typing import List

from repro.machine.registers import RegisterConfig, RegisterFile

#: The smallest file the calling convention permits.
MIN_CONFIG = RegisterConfig(6, 4, 0, 0)

#: The full MIPS file: 26 integer (17 caller + 9 callee) and
#: 16 float (10 caller + 6 callee) registers.
FULL_CONFIG = RegisterConfig(17, 10, 9, 6)


def mips_sweep() -> List[RegisterConfig]:
    """The canonical register-pressure sweep used on every x-axis.

    Step ``k`` is ``(6+k, 4+k, k, k)`` with each component clamped to
    its :data:`FULL_CONFIG` maximum; the sweep ends when every
    component has saturated.
    """
    configs: List[RegisterConfig] = []
    k = 0
    while True:
        config = RegisterConfig(
            min(MIN_CONFIG.caller_int + k, FULL_CONFIG.caller_int),
            min(MIN_CONFIG.caller_float + k, FULL_CONFIG.caller_float),
            min(k, FULL_CONFIG.callee_int),
            min(k, FULL_CONFIG.callee_float),
        )
        configs.append(config)
        if config == FULL_CONFIG:
            return configs
        k += 1


def register_file(config: RegisterConfig) -> RegisterFile:
    """Build a :class:`RegisterFile` for ``config``."""
    return RegisterFile(config)


def full_register_file() -> RegisterFile:
    """The complete MIPS file (used by the Table 4 speedup runs)."""
    return RegisterFile(FULL_CONFIG)
