"""Machine model: register banks, calling convention, sweep."""

from repro.machine.mips import (
    FULL_CONFIG,
    MIN_CONFIG,
    full_register_file,
    mips_sweep,
    register_file,
)
from repro.machine.registers import (
    PhysReg,
    RegisterBank,
    RegisterConfig,
    RegisterFile,
    RegisterKind,
)

__all__ = [
    "FULL_CONFIG",
    "MIN_CONFIG",
    "PhysReg",
    "RegisterBank",
    "RegisterConfig",
    "RegisterFile",
    "RegisterKind",
    "full_register_file",
    "mips_sweep",
    "register_file",
]
