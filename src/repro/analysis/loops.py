"""Natural-loop discovery and loop-nesting depth.

A back edge is a CFG edge ``tail -> head`` where ``head`` dominates
``tail``; its natural loop is ``head`` plus every block that can reach
``tail`` without passing through ``head``.  Nesting depth per block is
the number of distinct loop headers whose loops contain it, which feeds
the ``10^depth`` static frequency estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import reverse_postorder
from repro.analysis.dominators import dominates, immediate_dominators
from repro.ir.function import BasicBlock, Function


@dataclass
class Loop:
    """One natural loop: its header and member blocks (header included)."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:
        return f"<loop @{self.header.name}, {len(self.blocks)} blocks>"


def find_loops(func: Function) -> List[Loop]:
    """All natural loops of ``func``; loops sharing a header are merged."""
    idom = immediate_dominators(func)
    preds = func.predecessors()
    loops: Dict[BasicBlock, Loop] = {}
    for block in reverse_postorder(func):
        for succ in block.successors():
            if dominates(idom, succ, block):
                loop = loops.setdefault(succ, Loop(header=succ, blocks={succ}))
                _collect(loop, block, preds)
    return list(loops.values())


def _collect(loop: Loop, tail: BasicBlock, preds) -> None:
    """Add to ``loop`` every block reaching ``tail`` without the header."""
    worklist = [tail]
    while worklist:
        block = worklist.pop()
        if block in loop.blocks:
            continue
        loop.blocks.add(block)
        worklist.extend(preds[block])


def loop_depths(
    func: Function, loops: Optional[List[Loop]] = None
) -> Dict[BasicBlock, int]:
    """Loop-nesting depth of every reachable block (0 = not in a loop).

    ``loops`` lets a caller (the analysis manager) supply an already
    computed :func:`find_loops` result.
    """
    depths = {block: 0 for block in reverse_postorder(func)}
    if loops is None:
        loops = find_loops(func)
    for loop in loops:
        for block in loop.blocks:
            depths[block] += 1
    return depths
