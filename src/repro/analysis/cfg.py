"""Control-flow-graph helpers: orderings and reachability."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import BasicBlock, Function


def reverse_postorder(func: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder of a DFS from the entry.

    Unreachable blocks are omitted; most analyses iterate over this
    order because forward dataflow converges fastest on it.
    """
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to survive deep CFGs without hitting the
        # Python recursion limit.
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(func.entry)
    return list(reversed(postorder))


def reachable_blocks(func: Function) -> Set[BasicBlock]:
    """The set of blocks reachable from the entry."""
    return set(reverse_postorder(func))


def rpo_index(func: Function) -> Dict[BasicBlock, int]:
    """Map each reachable block to its reverse-postorder position."""
    return {block: i for i, block in enumerate(reverse_postorder(func))}


def remove_unreachable(func: Function) -> int:
    """Drop unreachable blocks from ``func``; returns how many."""
    reachable = reachable_blocks(func)
    before = len(func.blocks)
    func.blocks = [b for b in func.blocks if b in reachable]
    return before - len(func.blocks)
