"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

Used by the loop finder to recognize back edges (``head dominates
tail``) and hence natural loops, which in turn drive the static
execution-frequency estimate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function


def immediate_dominators(func: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Map each reachable block to its immediate dominator.

    The entry block maps to ``None``.  Implements the "engineered"
    iterative algorithm of Cooper, Harvey and Kennedy (2001), which is
    simple and fast on the CFG sizes this project sees.
    """
    rpo = reverse_postorder(func)
    index = {block: i for i, block in enumerate(rpo)}
    preds = func.predecessors()
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {func.entry: func.entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo[1:]:
            new_idom: Optional[BasicBlock] = None
            for pred in preds[block]:
                if pred in idom:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True

    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in rpo:
        result[block] = None if block is func.entry else idom[block]
    return result


def dominates(
    idom: Dict[BasicBlock, Optional[BasicBlock]],
    a: BasicBlock,
    b: BasicBlock,
) -> bool:
    """True when ``a`` dominates ``b`` under the given idom tree."""
    node: Optional[BasicBlock] = b
    while node is not None:
        if node is a:
            return True
        node = idom.get(node)
    return False
