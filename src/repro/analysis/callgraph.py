"""Call-graph construction, SCCs and bottom-up ordering.

Used by the interprocedural save-elision extension: functions are
allocated callees-first so each caller can consult its callees'
register-clobber summaries; functions in a call-graph cycle
(recursion) share conservative summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.function import Program
from repro.ir.instructions import Call


@dataclass
class CallGraph:
    """Who calls whom, plus the SCC condensation."""

    #: function name -> names of functions it calls (directly).
    callees: Dict[str, Set[str]] = field(default_factory=dict)
    #: function name -> names of its direct callers.
    callers: Dict[str, Set[str]] = field(default_factory=dict)
    #: strongly connected components, in reverse topological order
    #: (callees before callers).
    sccs: List[List[str]] = field(default_factory=list)

    def is_recursive(self, name: str) -> bool:
        """True when ``name`` sits on a call-graph cycle (incl. self)."""
        for scc in self.sccs:
            if name in scc:
                return len(scc) > 1 or name in self.callees.get(name, ())
        return False

    def bottom_up(self) -> List[str]:
        """Function names, every callee before any of its callers."""
        return [name for scc in self.sccs for name in scc]


def build_call_graph(program: Program) -> CallGraph:
    """Build the call graph of ``program`` (all callees are resolved)."""
    graph = CallGraph()
    for name, func in program.functions.items():
        graph.callees.setdefault(name, set())
        graph.callers.setdefault(name, set())
    for name, func in program.functions.items():
        for instr in func.instructions():
            if isinstance(instr, Call):
                graph.callees[name].add(instr.callee)
                graph.callers.setdefault(instr.callee, set()).add(name)
    graph.sccs = _tarjan_sccs(graph.callees)
    return graph


def _tarjan_sccs(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC algorithm (iterative); emits SCCs callees-first."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))

    for name in sorted(edges):
        if name not in index:
            strongconnect(name)
    return sccs
