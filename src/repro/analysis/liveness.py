"""Iterative backward liveness analysis.

Produces per-block live-in / live-out sets over virtual registers.
The interference-graph builder walks each block backwards from the
live-out set, which is the classic Chaitin construction.

The kernel runs on dense integer bitsets (see
:mod:`repro.analysis.bitset`): registers are numbered per function and
the per-block live sets are plain ``int`` masks.  The historical
frozenset API (``live_in``/``live_out`` dictionaries, the
``live_across`` walk) is preserved as a lazily materialized view, so
callers that want sets still get sets while the hot paths —
interference construction, reconstruction — read the masks directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.bitset import (
    VRegNumbering,
    liveness_fixed_point,
    number_vregs,
)
from repro.analysis.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.values import VReg


class LivenessInfo:
    """Result of liveness analysis for one function.

    ``numbering`` is the dense register numbering the masks are
    expressed in; ``live_in_bits``/``live_out_bits`` are the raw
    per-block masks.  ``live_in``/``live_out`` materialize the classic
    frozenset dictionaries on first access.
    """

    __slots__ = (
        "numbering",
        "live_in_bits",
        "live_out_bits",
        "_live_in",
        "_live_out",
    )

    def __init__(
        self,
        numbering: VRegNumbering,
        live_in_bits: Dict[BasicBlock, int],
        live_out_bits: Dict[BasicBlock, int],
    ) -> None:
        self.numbering = numbering
        self.live_in_bits = live_in_bits
        self.live_out_bits = live_out_bits
        self._live_in: Optional[Dict[BasicBlock, FrozenSet[VReg]]] = None
        self._live_out: Optional[Dict[BasicBlock, FrozenSet[VReg]]] = None

    @property
    def live_in(self) -> Dict[BasicBlock, FrozenSet[VReg]]:
        if self._live_in is None:
            freeze = self.numbering.frozenset_of
            self._live_in = {
                block: freeze(mask) for block, mask in self.live_in_bits.items()
            }
        return self._live_in

    @property
    def live_out(self) -> Dict[BasicBlock, FrozenSet[VReg]]:
        if self._live_out is None:
            freeze = self.numbering.frozenset_of
            self._live_out = {
                block: freeze(mask)
                for block, mask in self.live_out_bits.items()
            }
        return self._live_out

    def live_across(self, block: BasicBlock) -> Iterator[Tuple[Instr, Set[VReg]]]:
        """Yield ``(instr, live_after)`` pairs walking ``block`` backwards.

        ``live_after`` is the set of registers live immediately *after*
        each instruction; mutating the yielded set is not allowed (a
        fresh copy is yielded each step).
        """
        numbering = self.numbering
        instr_info = numbering.instr_info
        materialize = numbering.set_of
        live = self.live_out_bits[block]
        for instr in reversed(block.instrs):
            yield instr, materialize(live)
            _, dmask, _, umask = instr_info[instr]
            live = (live & ~dmask) | umask

    def live_across_bits(self, block: BasicBlock) -> Iterator[Tuple[Instr, int]]:
        """Like :meth:`live_across` but yields raw masks (hot path)."""
        instr_info = self.numbering.instr_info
        live = self.live_out_bits[block]
        for instr in reversed(block.instrs):
            yield instr, live
            _, dmask, _, umask = instr_info[instr]
            live = (live & ~dmask) | umask


def compute_liveness(
    func: Function, blocks: Optional[List[BasicBlock]] = None
) -> LivenessInfo:
    """Run the standard backward dataflow to a fixed point.

    ``blocks`` lets a caller (the analysis manager) supply an already
    computed reverse postorder; instruction-level rewrites invalidate
    liveness but not the block order, so the order is reusable.
    """
    if blocks is None:
        blocks = reverse_postorder(func)
    numbering = number_vregs(func, blocks)
    live_in_bits, live_out_bits = liveness_fixed_point(blocks, numbering)
    return LivenessInfo(numbering, live_in_bits, live_out_bits)


def compute_liveness_sets(
    func: Function, blocks: Optional[List[BasicBlock]] = None
) -> Tuple[
    Dict[BasicBlock, FrozenSet[VReg]], Dict[BasicBlock, FrozenSet[VReg]]
]:
    """Reference kernel: the original set-of-objects fixed point.

    Kept verbatim as the differential-testing oracle for the bitset
    kernel; returns plain ``(live_in, live_out)`` frozenset
    dictionaries.  Not used by the allocation pipeline.
    """
    if blocks is None:
        blocks = reverse_postorder(func)
    use_sets: Dict[BasicBlock, Set[VReg]] = {}
    def_sets: Dict[BasicBlock, Set[VReg]] = {}
    for block in blocks:
        uses: Set[VReg] = set()
        defs: Set[VReg] = set()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in defs:
                    uses.add(reg)
            defs.update(instr.defs())
        use_sets[block] = uses
        def_sets[block] = defs

    live_in: Dict[BasicBlock, Set[VReg]] = {b: set() for b in blocks}
    live_out: Dict[BasicBlock, Set[VReg]] = {b: set() for b in blocks}
    # Iterate in postorder (reverse of RPO) for fast convergence of the
    # backward problem.
    order: List[BasicBlock] = list(reversed(blocks))
    changed = True
    while changed:
        changed = False
        for block in order:
            out: Set[VReg] = set()
            for succ in block.successors():
                out |= live_in[succ]
            new_in = use_sets[block] | (out - def_sets[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True

    return (
        {b: frozenset(s) for b, s in live_in.items()},
        {b: frozenset(s) for b, s in live_out.items()},
    )
