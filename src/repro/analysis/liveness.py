"""Iterative backward liveness analysis.

Produces per-block live-in / live-out sets over virtual registers.
The interference-graph builder walks each block backwards from the
live-out set, which is the classic Chaitin construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.values import VReg


@dataclass
class LivenessInfo:
    """Result of liveness analysis for one function."""

    live_in: Dict[BasicBlock, FrozenSet[VReg]]
    live_out: Dict[BasicBlock, FrozenSet[VReg]]

    def live_across(self, block: BasicBlock) -> Iterator[Tuple[Instr, Set[VReg]]]:
        """Yield ``(instr, live_after)`` pairs walking ``block`` backwards.

        ``live_after`` is the set of registers live immediately *after*
        each instruction; mutating the yielded set is not allowed (a
        fresh copy is yielded each step).
        """
        live: Set[VReg] = set(self.live_out[block])
        for instr in reversed(block.instrs):
            yield instr, set(live)
            live.difference_update(instr.defs())
            live.update(instr.uses())


def compute_liveness(
    func: Function, blocks: Optional[List[BasicBlock]] = None
) -> LivenessInfo:
    """Run the standard backward dataflow to a fixed point.

    ``blocks`` lets a caller (the analysis manager) supply an already
    computed reverse postorder; instruction-level rewrites invalidate
    liveness but not the block order, so the order is reusable.
    """
    if blocks is None:
        blocks = reverse_postorder(func)
    use_sets: Dict[BasicBlock, Set[VReg]] = {}
    def_sets: Dict[BasicBlock, Set[VReg]] = {}
    for block in blocks:
        uses: Set[VReg] = set()
        defs: Set[VReg] = set()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in defs:
                    uses.add(reg)
            defs.update(instr.defs())
        use_sets[block] = uses
        def_sets[block] = defs

    live_in: Dict[BasicBlock, Set[VReg]] = {b: set() for b in blocks}
    live_out: Dict[BasicBlock, Set[VReg]] = {b: set() for b in blocks}
    # Iterate in postorder (reverse of RPO) for fast convergence of the
    # backward problem.
    order: List[BasicBlock] = list(reversed(blocks))
    changed = True
    while changed:
        changed = False
        for block in order:
            out: Set[VReg] = set()
            for succ in block.successors():
                out |= live_in[succ]
            new_in = use_sets[block] | (out - def_sets[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True

    return LivenessInfo(
        live_in={b: frozenset(s) for b, s in live_in.items()},
        live_out={b: frozenset(s) for b, s in live_out.items()},
    )
