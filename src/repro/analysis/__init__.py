"""Dataflow and control-flow analyses over the repro IR."""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import (
    reachable_blocks,
    remove_unreachable,
    reverse_postorder,
    rpo_index,
)
from repro.analysis.dominators import dominates, immediate_dominators
from repro.analysis.frequency import LOOP_MULTIPLIER, BlockWeights, static_weights
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import Loop, find_loops, loop_depths
from repro.analysis.manager import (
    ALL_KEYS,
    CALL_GRAPH,
    DOMINATORS,
    INSTRUCTION_KEYS,
    KEY_CALLS,
    KEY_CFG,
    KEY_INSTRUCTIONS,
    LIVENESS,
    LOOP_DEPTHS,
    LOOPS,
    RPO,
    RPO_INDEX,
    STATIC_WEIGHTS,
    AnalysisCache,
    CacheStats,
    FunctionAnalysis,
    ProgramAnalysis,
)
from repro.analysis.reaching import DefSite, ReachingDefs, UseSite, compute_reaching_defs

__all__ = [
    "ALL_KEYS",
    "AnalysisCache",
    "BlockWeights",
    "CALL_GRAPH",
    "CacheStats",
    "CallGraph",
    "build_call_graph",
    "DefSite",
    "DOMINATORS",
    "FunctionAnalysis",
    "INSTRUCTION_KEYS",
    "KEY_CALLS",
    "KEY_CFG",
    "KEY_INSTRUCTIONS",
    "LIVENESS",
    "LOOPS",
    "LOOP_DEPTHS",
    "LOOP_MULTIPLIER",
    "LivenessInfo",
    "Loop",
    "ProgramAnalysis",
    "RPO",
    "RPO_INDEX",
    "ReachingDefs",
    "STATIC_WEIGHTS",
    "UseSite",
    "compute_liveness",
    "compute_reaching_defs",
    "dominates",
    "find_loops",
    "immediate_dominators",
    "loop_depths",
    "reachable_blocks",
    "remove_unreachable",
    "reverse_postorder",
    "rpo_index",
    "static_weights",
]
