"""Pass-manager style analysis caching (the LLVM analysis-manager idea).

The allocation pipeline and the experiment drivers both re-derive the
same per-function facts over and over: liveness for every interference
rebuild, loop depths for every static-weight estimate, the call graph
for every IPRA run.  ``AnalysisCache`` memoizes those facts per
function (or per program) and invalidates them *by key*, so a
mutation only throws away what it can actually change:

* ``KEY_INSTRUCTIONS`` — instructions were added, removed or renamed
  inside existing blocks (spill code, save/restore code, coalescing).
  Liveness dies; the CFG shape — and everything derived from it —
  survives.
* ``KEY_CFG`` — blocks or edges changed (the optimizer's
  simplify-cfg, unreachable-block removal).  Everything dies.
* ``KEY_CALLS`` — call sites were added or removed.  Only the program
  call graph cares; register-allocation rewrites never do this.

Analyses are declared as :class:`FunctionAnalysis` /
:class:`ProgramAnalysis` descriptors whose ``compute`` receives the
cache itself, so composite analyses (liveness wants the block order,
static weights want loop depths) reuse cached sub-results instead of
recomputing them.

Functions and programs are held through weak references: allocation
clones die with their :class:`ProgramAllocation`, and the cache must
not keep them alive across a sweep.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable

from repro.analysis.callgraph import build_call_graph
from repro.analysis.cfg import reverse_postorder, rpo_index
from repro.analysis.dominators import immediate_dominators
from repro.analysis.frequency import static_weights
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops, loop_depths
from repro.ir.function import Function, Program

#: Invalidation keys; see the module docstring for what each covers.
KEY_CFG = "cfg"
KEY_INSTRUCTIONS = "instructions"
KEY_CALLS = "calls"

ALL_KEYS: FrozenSet[str] = frozenset((KEY_CFG, KEY_INSTRUCTIONS, KEY_CALLS))
#: What spill insertion, save/restore emission and coalescing change:
#: instructions inside existing blocks, never the CFG or a call site.
INSTRUCTION_KEYS: FrozenSet[str] = frozenset((KEY_INSTRUCTIONS,))


@dataclass(frozen=True)
class FunctionAnalysis:
    """One cacheable per-function analysis."""

    name: str
    compute: Callable[[Function, "AnalysisCache"], Any]
    #: Invalidation keys that destroy this analysis' result.
    depends: FrozenSet[str]


@dataclass(frozen=True)
class ProgramAnalysis:
    """One cacheable whole-program analysis."""

    name: str
    compute: Callable[[Program, "AnalysisCache"], Any]
    depends: FrozenSet[str]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class AnalysisCache:
    """Keyed, invalidatable store of analysis results.

    ``get(func, LIVENESS)`` computes on a miss, returns the memoized
    result on a hit; ``invalidate(func, keys)`` drops exactly the
    analyses whose ``depends`` intersect ``keys``.  One cache may span
    many functions and programs (a whole experiment sweep); entries
    vanish automatically when their function is garbage-collected.
    """

    def __init__(self) -> None:
        self._functions: "weakref.WeakKeyDictionary[Function, Dict[str, Any]]" = (
            weakref.WeakKeyDictionary()
        )
        self._programs: "weakref.WeakKeyDictionary[Program, Dict[str, Any]]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def get(self, func: Function, analysis: FunctionAnalysis) -> Any:
        """The result of ``analysis`` on ``func``, computing on a miss."""
        entries = self._functions.setdefault(func, {})
        if analysis.name in entries:
            self.hits += 1
            return entries[analysis.name]
        self.misses += 1
        result = analysis.compute(func, self)
        entries[analysis.name] = result
        return result

    def get_program(self, program: Program, analysis: ProgramAnalysis) -> Any:
        """The result of ``analysis`` on ``program``, computing on a miss."""
        entries = self._programs.setdefault(program, {})
        if analysis.name in entries:
            self.hits += 1
            return entries[analysis.name]
        self.misses += 1
        result = analysis.compute(program, self)
        entries[analysis.name] = result
        return result

    def prime(
        self, func: Function, analysis: FunctionAnalysis, value: Any
    ) -> None:
        """Seed a known result without computing (the warm-start path).

        The artifact store rehydrates persisted analyses through here;
        an entry that is already cached wins, so priming can never
        clobber a result this process computed itself.  Primed entries
        obey the same invalidation keys as computed ones.
        """
        entries = self._functions.setdefault(func, {})
        entries.setdefault(analysis.name, value)

    def prime_program(
        self, program: Program, analysis: ProgramAnalysis, value: Any
    ) -> None:
        """Program-level :meth:`prime`."""
        entries = self._programs.setdefault(program, {})
        entries.setdefault(analysis.name, value)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate(
        self, func: Function, keys: Iterable[str] = ALL_KEYS
    ) -> None:
        """Drop ``func``'s analyses whose dependencies intersect ``keys``."""
        keys = frozenset(keys)
        entries = self._functions.get(func)
        if entries:
            for name in [
                name
                for name in entries
                if _FUNCTION_ANALYSES[name].depends & keys
            ]:
                del entries[name]

    def invalidate_program(
        self, program: Program, keys: Iterable[str] = ALL_KEYS
    ) -> None:
        """Drop ``program``'s analyses whose dependencies intersect ``keys``."""
        keys = frozenset(keys)
        entries = self._programs.get(program)
        if entries:
            for name in [
                name
                for name in entries
                if _PROGRAM_ANALYSES[name].depends & keys
            ]:
                del entries[name]

    def clear(self) -> None:
        """Drop every entry (counters survive; see ``reset_stats``)."""
        self._functions.clear()
        self._programs.clear()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def cached_analyses(self, func: Function) -> FrozenSet[str]:
        """Names of the analyses currently cached for ``func``."""
        return frozenset(self._functions.get(func, ()))


# ----------------------------------------------------------------------
# the analysis registry
# ----------------------------------------------------------------------

RPO = FunctionAnalysis(
    "rpo",
    lambda func, cache: reverse_postorder(func),
    depends=frozenset((KEY_CFG,)),
)

RPO_INDEX = FunctionAnalysis(
    "rpo_index",
    lambda func, cache: rpo_index(func),
    depends=frozenset((KEY_CFG,)),
)

DOMINATORS = FunctionAnalysis(
    "dominators",
    lambda func, cache: immediate_dominators(func),
    depends=frozenset((KEY_CFG,)),
)

LOOPS = FunctionAnalysis(
    "loops",
    lambda func, cache: find_loops(func),
    depends=frozenset((KEY_CFG,)),
)

LOOP_DEPTHS = FunctionAnalysis(
    "loop_depths",
    lambda func, cache: loop_depths(func, loops=cache.get(func, LOOPS)),
    depends=frozenset((KEY_CFG,)),
)

#: Loop-depth static frequency estimates; purely CFG-shaped, so one
#: computation serves every allocation of every clone-free caller.
STATIC_WEIGHTS = FunctionAnalysis(
    "static_weights",
    lambda func, cache: static_weights(
        func,
        depths=cache.get(func, LOOP_DEPTHS),
        order=cache.get(func, RPO),
    ),
    depends=frozenset((KEY_CFG,)),
)

LIVENESS = FunctionAnalysis(
    "liveness",
    lambda func, cache: compute_liveness(func, blocks=cache.get(func, RPO)),
    depends=frozenset((KEY_CFG, KEY_INSTRUCTIONS)),
)

CALL_GRAPH = ProgramAnalysis(
    "call_graph",
    lambda program, cache: build_call_graph(program),
    depends=frozenset((KEY_CFG, KEY_CALLS)),
)

_FUNCTION_ANALYSES: Dict[str, FunctionAnalysis] = {
    a.name: a
    for a in (
        RPO,
        RPO_INDEX,
        DOMINATORS,
        LOOPS,
        LOOP_DEPTHS,
        STATIC_WEIGHTS,
        LIVENESS,
    )
}

_PROGRAM_ANALYSES: Dict[str, ProgramAnalysis] = {CALL_GRAPH.name: CALL_GRAPH}
