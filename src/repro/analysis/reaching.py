"""Reaching definitions and def-use chains.

The register allocator's live ranges are *webs*: maximal groups of
definitions and uses connected through def-use chains.  This module
supplies the chains; web construction itself (a union-find over them)
lives in :mod:`repro.regalloc.liverange`.

A definition site is identified as ``(block, index)`` where ``index``
is the instruction's position in the block; function parameters are
modelled as definitions at the virtual site ``(entry, -1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.values import VReg

#: A definition site: (block, instruction index); index -1 means
#: "parameter, defined at function entry".
DefSite = Tuple[BasicBlock, int]
#: A use site: (block, instruction index).
UseSite = Tuple[BasicBlock, int]


@dataclass
class ReachingDefs:
    """Reaching-definition information for one function.

    ``def_sites``  — every definition site of every register.
    ``use_chains`` — for every use site and register, the definition
    sites that reach it.
    """

    def_sites: Dict[VReg, List[DefSite]]
    use_chains: Dict[Tuple[UseSite, VReg], FrozenSet[DefSite]]


def compute_reaching_defs(func: Function) -> ReachingDefs:
    """Standard forward may-analysis over definition sites."""
    blocks = reverse_postorder(func)

    def_sites: Dict[VReg, List[DefSite]] = {}
    # Per-block: the final definition site of each register defined in
    # the block (gen after kill), used for the block-level dataflow.
    gen: Dict[BasicBlock, Dict[VReg, DefSite]] = {}
    for block in blocks:
        last: Dict[VReg, DefSite] = {}
        for i, instr in enumerate(block.instrs):
            for reg in instr.defs():
                site = (block, i)
                def_sites.setdefault(reg, []).append(site)
                last[reg] = site
        gen[block] = last
    for param in func.params:
        def_sites.setdefault(param, []).insert(0, (func.entry, -1))

    # in_defs[b][reg] = set of def sites of reg reaching entry of b.
    in_defs: Dict[BasicBlock, Dict[VReg, Set[DefSite]]] = {b: {} for b in blocks}
    for param in func.params:
        in_defs[func.entry].setdefault(param, set()).add((func.entry, -1))

    changed = True
    while changed:
        changed = False
        for block in blocks:
            out: Dict[VReg, Set[DefSite]] = {
                reg: set(sites) for reg, sites in in_defs[block].items()
            }
            for reg, site in gen[block].items():
                out[reg] = {site}
            for succ in block.successors():
                succ_in = in_defs[succ]
                for reg, sites in out.items():
                    have = succ_in.setdefault(reg, set())
                    if not sites <= have:
                        have |= sites
                        changed = True

    use_chains: Dict[Tuple[UseSite, VReg], FrozenSet[DefSite]] = {}
    for block in blocks:
        current: Dict[VReg, Set[DefSite]] = {
            reg: set(sites) for reg, sites in in_defs[block].items()
        }
        for i, instr in enumerate(block.instrs):
            for reg in instr.uses():
                use_chains[((block, i), reg)] = frozenset(current.get(reg, ()))
            for reg in instr.defs():
                current[reg] = {(block, i)}

    return ReachingDefs(def_sites=def_sites, use_chains=use_chains)
