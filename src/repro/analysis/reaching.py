"""Reaching definitions and def-use chains.

The register allocator's live ranges are *webs*: maximal groups of
definitions and uses connected through def-use chains.  This module
supplies the chains; web construction itself (a union-find over them)
lives in :mod:`repro.regalloc.liverange`.

A definition site is identified as ``(block, index)`` where ``index``
is the instruction's position in the block; function parameters are
modelled as definitions at the virtual site ``(entry, -1)``.

The kernel numbers definition sites densely and runs the classic
forward may-analysis (``OUT = GEN | (IN & ~KILL)``) on integer
bitsets, one mask per block, instead of one set of sites per
``(block, register)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.values import VReg

#: A definition site: (block, instruction index); index -1 means
#: "parameter, defined at function entry".
DefSite = Tuple[BasicBlock, int]
#: A use site: (block, instruction index).
UseSite = Tuple[BasicBlock, int]


@dataclass
class ReachingDefs:
    """Reaching-definition information for one function.

    ``def_sites``  — every definition site of every register.
    ``use_chains`` — for every use site and register, the definition
    sites that reach it.

    The remaining fields are the kernel's dense site numbering, kept
    so web construction can run its union-find over small integers
    instead of ``(block, index, reg)`` tuples: ``site_ids`` maps each
    definition site (including the parameter pseudo-sites) to its
    index, ``def_site_ids`` parallels ``def_sites``, ``use_masks``
    holds each use's reaching sites as a bitset, and ``num_sites`` is
    the total site count.
    """

    def_sites: Dict[VReg, List[DefSite]]
    use_chains: Dict[Tuple[UseSite, VReg], FrozenSet[DefSite]]
    site_ids: Dict[Tuple[BasicBlock, int, VReg], int] = field(
        default_factory=dict, repr=False, compare=False
    )
    def_site_ids: Dict[VReg, List[int]] = field(
        default_factory=dict, repr=False, compare=False
    )
    use_masks: Dict[Tuple[BasicBlock, int, VReg], int] = field(
        default_factory=dict, repr=False, compare=False
    )
    num_sites: int = field(default=0, repr=False, compare=False)


def compute_reaching_defs(func: Function) -> ReachingDefs:
    """Standard forward may-analysis over definition sites."""
    blocks = reverse_postorder(func)

    # Number every definition site; parameters claim the first
    # indices so a register's pseudo-site sorts before its real defs.
    # (``def_sites`` keeps the historical key order: registers appear
    # when first defined, parameters without a real definition last —
    # web construction iterates it to mint fresh registers, so the
    # order is id-assignment-visible.)
    def_sites: Dict[VReg, List[DefSite]] = {}
    def_site_ids: Dict[VReg, List[int]] = {}
    sites: List[DefSite] = []
    #: All sites defining one register, as a mask (the KILL set).
    reg_sites: Dict[VReg, int] = {}
    #: Just the parameter pseudo-sites (what reaches function entry).
    entry_in = 0
    site_ids: Dict[Tuple[BasicBlock, int, VReg], int] = {}
    for param in func.params:
        site_ids[(func.entry, -1, param)] = len(sites)
        reg_sites[param] = 1 << len(sites)
        entry_in |= 1 << len(sites)
        sites.append((func.entry, -1))
    # One walk over the instructions both numbers the definition
    # sites and caches, per block, each instruction's uses and
    # (register, site) definition pairs — the later passes replay the
    # cache instead of re-dispatching ``defs()``/``uses()``.
    block_ops: List[
        List[Tuple[int, Tuple[VReg, ...], Tuple[Tuple[VReg, int], ...]]]
    ] = []
    for block in blocks:
        ops: List[
            Tuple[int, Tuple[VReg, ...], Tuple[Tuple[VReg, int], ...]]
        ] = []
        for i, instr in enumerate(block.instrs):
            uses = instr.uses()
            defs = instr.defs()
            def_pairs: Tuple[Tuple[VReg, int], ...] = ()
            if defs:
                pairs = []
                for reg in defs:
                    sid = len(sites)
                    site_ids[(block, i, reg)] = sid
                    reg_sites[reg] = reg_sites.get(reg, 0) | (1 << sid)
                    def_sites.setdefault(reg, []).append((block, i))
                    def_site_ids.setdefault(reg, []).append(sid)
                    sites.append((block, i))
                    pairs.append((reg, sid))
                def_pairs = tuple(pairs)
            if uses or def_pairs:
                ops.append((i, uses, def_pairs))
        block_ops.append(ops)
    for param in func.params:
        def_sites.setdefault(param, []).insert(0, (func.entry, -1))
        def_site_ids.setdefault(param, []).insert(
            0, site_ids[(func.entry, -1, param)]
        )

    # Per-block GEN (downward-exposed def sites) and KILL (every site
    # of every register the block defines).
    nblocks = len(blocks)
    gen = [0] * nblocks
    kill = [0] * nblocks
    for bi in range(nblocks):
        g = 0
        k = 0
        for _, _, def_pairs in block_ops[bi]:
            for reg, sid in def_pairs:
                mask = reg_sites[reg]
                g = (g & ~mask) | (1 << sid)
                k |= mask
        gen[bi] = g
        kill[bi] = k

    block_idx = {b: i for i, b in enumerate(blocks)}
    preds: List[List[int]] = [[] for _ in range(nblocks)]
    for bi, block in enumerate(blocks):
        for succ in block.successors():
            si = block_idx.get(succ)
            if si is not None:
                preds[si].append(bi)

    entry_idx = block_idx[func.entry]
    in_defs = [0] * nblocks
    out_defs = [0] * nblocks
    in_defs[entry_idx] = entry_in
    changed = True
    while changed:
        changed = False
        for bi in range(nblocks):
            incoming = entry_in if bi == entry_idx else 0
            for pi in preds[bi]:
                incoming |= out_defs[pi]
            out = gen[bi] | (incoming & ~kill[bi])
            if incoming != in_defs[bi] or out != out_defs[bi]:
                in_defs[bi] = incoming
                out_defs[bi] = out
                changed = True

    # Materialized chains are cached per mask: distinct uses reached
    # by the same definitions (the common case) share one frozenset.
    chain_cache: Dict[int, FrozenSet[DefSite]] = {}

    def materialize(mask: int) -> FrozenSet[DefSite]:
        cached = chain_cache.get(mask)
        if cached is not None:
            return cached
        chain = []
        rest = mask
        while rest:
            low = rest & -rest
            chain.append(sites[low.bit_length() - 1])
            rest ^= low
        result = frozenset(chain)
        chain_cache[mask] = result
        return result

    use_chains: Dict[Tuple[UseSite, VReg], FrozenSet[DefSite]] = {}
    use_masks: Dict[Tuple[BasicBlock, int, VReg], int] = {}
    for bi, block in enumerate(blocks):
        current = in_defs[bi]
        for i, uses, def_pairs in block_ops[bi]:
            for reg in uses:
                mask = current & reg_sites.get(reg, 0)
                use_masks[(block, i, reg)] = mask
                use_chains[((block, i), reg)] = materialize(mask)
            for reg, sid in def_pairs:
                current = (current & ~reg_sites[reg]) | (1 << sid)

    return ReachingDefs(
        def_sites=def_sites,
        use_chains=use_chains,
        site_ids=site_ids,
        def_site_ids=def_site_ids,
        use_masks=use_masks,
        num_sites=len(sites),
    )
