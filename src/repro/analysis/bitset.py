"""Dense integer-bitset kernels for the dataflow analyses.

Python's arbitrary-precision integers make excellent bit vectors: a
set of virtual registers becomes one ``int`` with bit *i* set when
register number *i* is a member.  Union is ``|``, difference is
``& ~``, and the fixed-point loops of liveness reduce to a handful of
machine-word operations per block instead of hash-set churn per
element.

The numbering is per-function: :func:`number_vregs` walks a function
once (parameters first, then every definition and use in block order)
and assigns each distinct :class:`~repro.ir.values.VReg` a small dense
index.  The numbering also caches, per instruction, the def/use
register tuples and their masks — the inner-loop data every backward
walk needs — and a per-type mask used by the interference builder to
restrict edges to registers of the same bank.

Iteration over a mask uses the lowest-set-bit trick::

    low = mask & -mask          # isolate lowest set bit
    index = low.bit_length() - 1
    mask ^= low                 # clear it

which visits members in ascending index order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.types import ValueType
from repro.ir.values import VReg

try:  # Python >= 3.10
    _bit_count = int.bit_count

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask``."""
        return _bit_count(mask)

except AttributeError:  # pragma: no cover - exercised on 3.9 in CI

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask`` (3.9 fallback)."""
        return bin(mask).count("1")


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class VRegNumbering:
    """Dense per-function numbering of virtual registers.

    ``regs[i]`` is the register with index ``i`` and ``index[reg]``
    its inverse.  ``instr_info[instr]`` caches
    ``(defs, def_mask, uses, use_mask)`` for every instruction seen
    during numbering, and ``type_masks[vtype]`` is the mask of all
    registers of one value type (one register bank).
    """

    __slots__ = ("regs", "index", "instr_info", "type_masks")

    def __init__(self) -> None:
        self.regs: List[VReg] = []
        self.index: Dict[VReg, int] = {}
        self.instr_info: Dict[
            Instr, Tuple[Tuple[VReg, ...], int, Tuple[VReg, ...], int]
        ] = {}
        self.type_masks: Dict[ValueType, int] = {}

    def __len__(self) -> int:
        return len(self.regs)

    def _number(self, reg: VReg) -> int:
        idx = self.index.get(reg)
        if idx is None:
            idx = len(self.regs)
            self.index[reg] = idx
            self.regs.append(reg)
            self.type_masks[reg.vtype] = self.type_masks.get(
                reg.vtype, 0
            ) | (1 << idx)
        return idx

    def bit(self, reg: VReg) -> int:
        """The single-bit mask of ``reg``."""
        return 1 << self.index[reg]

    def mask_of(self, regs) -> int:
        """The mask with every register of ``regs`` set."""
        mask = 0
        index = self.index
        for reg in regs:
            mask |= 1 << index[reg]
        return mask

    def set_of(self, mask: int) -> Set[VReg]:
        """Materialize ``mask`` as a plain set of registers."""
        regs = self.regs
        out: Set[VReg] = set()
        while mask:
            low = mask & -mask
            out.add(regs[low.bit_length() - 1])
            mask ^= low
        return out

    def frozenset_of(self, mask: int) -> "frozenset[VReg]":
        """Materialize ``mask`` as a frozenset of registers."""
        regs = self.regs
        return frozenset(
            regs[i] for i in iter_bits(mask)
        )


def number_vregs(
    func: Function, blocks: Optional[List[BasicBlock]] = None
) -> VRegNumbering:
    """Number every register of ``func``: parameters, then each
    definition and use in block/instruction order over ``blocks``
    (the function's blocks by default)."""
    numbering = VRegNumbering()
    for param in func.params:
        numbering._number(param)
    if blocks is None:
        blocks = func.blocks
    # The numbering loop is inlined (rather than calling ``_number``
    # per occurrence): it runs once per def/use in the function on
    # every liveness recomputation.
    instr_info = numbering.instr_info
    index = numbering.index
    regs = numbering.regs
    type_masks = numbering.type_masks
    index_get = index.get
    for block in blocks:
        for instr in block.instrs:
            defs = instr.defs()
            uses = instr.uses()
            dmask = 0
            for reg in defs:
                idx = index_get(reg)
                if idx is None:
                    idx = len(regs)
                    index[reg] = idx
                    regs.append(reg)
                    type_masks[reg.vtype] = type_masks.get(
                        reg.vtype, 0
                    ) | (1 << idx)
                dmask |= 1 << idx
            umask = 0
            for reg in uses:
                idx = index_get(reg)
                if idx is None:
                    idx = len(regs)
                    index[reg] = idx
                    regs.append(reg)
                    type_masks[reg.vtype] = type_masks.get(
                        reg.vtype, 0
                    ) | (1 << idx)
                umask |= 1 << idx
            instr_info[instr] = (defs, dmask, uses, umask)
    return numbering


def liveness_fixed_point(
    blocks: List[BasicBlock], numbering: VRegNumbering
) -> Tuple[Dict[BasicBlock, int], Dict[BasicBlock, int]]:
    """The classic backward liveness fixed point over bit vectors.

    ``blocks`` must be a reverse postorder (iteration runs in
    postorder for fast convergence).  Returns ``(live_in, live_out)``
    masks per block.
    """
    instr_info = numbering.instr_info
    n = len(blocks)
    block_idx = {b: i for i, b in enumerate(blocks)}
    use_masks = [0] * n
    def_masks = [0] * n
    for bi, block in enumerate(blocks):
        uses = 0
        defs = 0
        for instr in block.instrs:
            _, dmask, _, umask = instr_info[instr]
            uses |= umask & ~defs
            defs |= dmask
        use_masks[bi] = uses
        def_masks[bi] = defs

    # Successor index lists, hoisted out of the iteration loop.
    succs = [
        [block_idx[s] for s in block.successors()] for block in blocks
    ]

    live_in = [0] * n
    live_out = [0] * n
    order = range(n - 1, -1, -1)
    changed = True
    while changed:
        changed = False
        for bi in order:
            out = 0
            for si in succs[bi]:
                out |= live_in[si]
            new_in = use_masks[bi] | (out & ~def_masks[bi])
            if out != live_out[bi] or new_in != live_in[bi]:
                live_out[bi] = out
                live_in[bi] = new_in
                changed = True
    return (
        {b: live_in[i] for i, b in enumerate(blocks)},
        {b: live_out[i] for i, b in enumerate(blocks)},
    )
