"""Execution-frequency estimates.

The paper evaluates every allocator twice: with *static* information
(compiler-estimated execution frequencies) and with *dynamic*
information (profiles).  Both are expressed here as a
:class:`BlockWeights` mapping blocks to non-negative weights.

The static estimator is the classic one used by priority-based
coloring: a block nested ``d`` loops deep weighs ``10**d``, the entry
weighs 1.  Dynamic weights come from :mod:`repro.profile` and are
exact execution counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cfg import reverse_postorder
from repro.analysis.loops import loop_depths
from repro.ir.function import BasicBlock, Function

#: Multiplier per loop-nesting level for static estimates.
LOOP_MULTIPLIER = 10.0


@dataclass
class BlockWeights:
    """Per-block execution weights for one function.

    ``entry_weight`` is the weight of one function invocation; for
    static estimates it is 1.0, for profiles it is the call count.
    The callee-save cost of a register is ``2 * entry_weight`` (one
    save at entry, one restore at exit, per invocation).
    """

    weights: Dict[BasicBlock, float] = field(default_factory=dict)
    entry_weight: float = 1.0

    def weight(self, block: BasicBlock) -> float:
        return self.weights.get(block, 0.0)


def static_weights(
    func: Function,
    depths: Optional[Dict[BasicBlock, int]] = None,
    order: Optional[List[BasicBlock]] = None,
) -> BlockWeights:
    """Loop-depth based static estimate: ``10 ** depth`` per block.

    ``depths``/``order`` let the analysis manager supply cached
    :func:`loop_depths` / reverse-postorder results.
    """
    if depths is None:
        depths = loop_depths(func)
    if order is None:
        order = reverse_postorder(func)
    weights = {block: LOOP_MULTIPLIER ** depths[block] for block in order}
    return BlockWeights(weights=weights, entry_weight=1.0)
