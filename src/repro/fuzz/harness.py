"""Differential fuzzing of the whole allocation pipeline.

One fuzz case drives a seeded random mini-C program (from
:mod:`repro.workloads.generator`) through every allocator preset and
checks, per preset:

1. the allocation **verifies** (:func:`repro.regalloc.verify_allocation`
   accepts it),
2. the allocated code **behaves identically** to the source program —
   the :class:`~repro.profile.machine_interp.MachineInterpreter` run
   produces the same global-array state and ``main`` return value as
   the source-level interpreter.

The source-level run itself is also checked: the generator promises
terminating, runtime-error-free programs, so an interpreter error on
the unallocated program is a bug too (stage ``baseline`` — this is
exactly how the ``ftoi(inf)`` overflow was found).

Failures are :class:`FuzzFailure` records carrying everything needed
to reproduce (seed, allocator, config, stage, error text, source);
:mod:`repro.fuzz.reduce` shrinks them and :mod:`repro.fuzz.corpus`
quarantines the minimized reproducers.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.machine.registers import RegisterConfig
from repro.obs.metrics import METRICS
from repro.machine.mips import register_file
from repro.profile.interp import InterpreterError, run_program
from repro.profile.machine_interp import run_allocated
from repro.regalloc.errors import AllocationError
from repro.regalloc.framework import allocate_program
from repro.regalloc.options import PRESETS
from repro.workloads.generator import random_source

#: Register files the harness rotates through, seed by seed: the
#: convention minimum, a balanced small file, and a starved one.
FUZZ_CONFIGS: Tuple[RegisterConfig, ...] = (
    RegisterConfig(6, 4, 0, 0),
    RegisterConfig(4, 3, 2, 2),
    RegisterConfig(3, 2, 1, 1),
)

#: Interpreter fuel for the baseline run; generated programs are
#: terminating but unbounded, so over-budget seeds are skipped (a
#: property of the input, not of the system under test).
BASELINE_FUEL = 3_000_000

#: The machine run executes the same work plus overhead operations.
MACHINE_FUEL = 10 * BASELINE_FUEL


@dataclass
class FuzzFailure:
    """One reproducible pipeline failure."""

    seed: int
    allocator: str
    config: Tuple[int, int, int, int]
    #: Which check failed: ``compile``, ``baseline``, ``allocate``,
    #: ``verify``, ``execute``, ``differential`` or ``chaos``.
    stage: str
    error: str
    source: str
    #: For ``chaos``-stage failures: the fallback rung whose result the
    #: failing check ran against (None when no rung was reached).
    rung: Optional[str] = None

    def describe(self) -> str:
        rung = f" (rung={self.rung})" if self.rung is not None else ""
        return (
            f"seed {self.seed} [{self.allocator} @ {self.config}] "
            f"{self.stage}{rung}: {self.error}"
        )


@dataclass
class FuzzReport:
    """Outcome of a fuzzing run."""

    seeds_run: int = 0
    #: Allocations checked (seeds x presets, minus skipped seeds).
    checked: int = 0
    #: Seeds skipped because the baseline run exceeded its fuel.
    skipped: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0
    #: True when a time budget stopped the run before every seed ran.
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "FuzzReport") -> None:
        self.seeds_run += other.seeds_run
        self.checked += other.checked
        self.skipped += other.skipped
        self.failures.extend(other.failures)


def config_for_seed(seed: int) -> RegisterConfig:
    """The register file a given seed is checked under (deterministic)."""
    return FUZZ_CONFIGS[seed % len(FUZZ_CONFIGS)]


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # NaN == NaN
    return a == b


def _same_state(base, mech) -> Optional[str]:
    """None when the two executions agree, else a description."""
    if not _values_equal(base.return_value, mech.return_value):
        return (
            f"return value {base.return_value!r} (source) != "
            f"{mech.return_value!r} (machine)"
        )
    for name in base.globals_state:
        va = base.globals_state[name]
        vb = mech.globals_state[name]
        for i, (x, y) in enumerate(zip(va, vb)):
            if not _values_equal(x, y):
                return f"@{name}[{i}]: {x!r} (source) != {y!r} (machine)"
    return None


def check_source(
    source: str,
    seed: int,
    config: Optional[RegisterConfig] = None,
    presets: Optional[Sequence[str]] = None,
    chaos: bool = False,
) -> Tuple[List[FuzzFailure], int, bool]:
    """Run every check on one source program.

    Returns ``(failures, allocations checked, skipped)`` where
    ``skipped`` is True when the baseline run ran out of fuel and the
    source was not checked at all.  With ``chaos`` set, each preset is
    additionally run through the fallback chain under a seeded fault
    plan (stage ``chaos``): the surviving allocation must verify and
    behave identically to the source program, whichever rung produced
    it.
    """
    from repro.lang.lower import compile_source
    from repro.regalloc.verify import verify_allocation

    if config is None:
        config = config_for_seed(seed)
    names = list(presets) if presets is not None else list(PRESETS)
    failures: List[FuzzFailure] = []

    def failure(
        allocator: str, stage: str, error: str, rung: Optional[str] = None
    ) -> None:
        failures.append(
            FuzzFailure(
                seed=seed,
                allocator=allocator,
                config=tuple(config),
                stage=stage,
                error=error,
                source=source,
                rung=rung,
            )
        )

    try:
        program = compile_source(source, name=f"fuzz{seed}")
    except Exception as error:  # compile errors: generator bug
        failure("*", "compile", f"{type(error).__name__}: {error}")
        return failures, 0, False

    try:
        baseline = run_program(program, fuel=BASELINE_FUEL)
    except InterpreterError as error:
        if "fuel" in str(error):
            return failures, 0, True
        failure("*", "baseline", f"{type(error).__name__}: {error}")
        return failures, 0, False
    except Exception as error:  # pragma: no cover - hard interpreter bug
        failure("*", "baseline", f"{type(error).__name__}: {error}")
        return failures, 0, False

    checked = 0
    regfile = register_file(config)
    for name in names:
        options = PRESETS[name]()
        checked += 1
        try:
            allocation = allocate_program(
                program, regfile, options, baseline.profile.weights
            )
        except AllocationError as error:
            failure(name, "allocate", f"{type(error).__name__}: {error}")
            continue
        except Exception as error:
            failure(name, "allocate", f"{type(error).__name__}: {error}")
            continue
        try:
            verify_allocation(allocation)
        except AllocationError as error:
            failure(name, "verify", f"{type(error).__name__}: {error}")
            continue
        try:
            mech = run_allocated(allocation, fuel=MACHINE_FUEL)
        except Exception as error:
            failure(name, "execute", f"{type(error).__name__}: {error}")
            continue
        mismatch = _same_state(baseline, mech)
        if mismatch is not None:
            failure(name, "differential", mismatch)

    if chaos:
        from repro.chaos import Corruptor, FaultInjector, FaultPlan, composite_seed
        from repro.resilience import resilient_allocate_program

        for name in names:
            options = PRESETS[name]()
            plan = FaultPlan.from_seed(
                composite_seed(f"fuzz{seed}", name, seed)
            )
            injector = FaultInjector(plan)
            corruptor = Corruptor(plan)
            checked += 1
            rung: Optional[str] = None
            try:
                allocation, resilience = resilient_allocate_program(
                    program,
                    regfile,
                    options,
                    baseline.profile.weights,
                    injector=injector,
                    corrupt=corruptor,
                )
                rung = resilience.rung
                verify_allocation(allocation)
            except Exception as error:
                failure(
                    name, "chaos", f"{type(error).__name__}: {error}", rung=rung
                )
                continue
            try:
                mech = run_allocated(allocation, fuel=MACHINE_FUEL)
            except Exception as error:
                failure(
                    name, "chaos", f"{type(error).__name__}: {error}", rung=rung
                )
                continue
            mismatch = _same_state(baseline, mech)
            if mismatch is not None:
                failure(name, "chaos", mismatch, rung=rung)
    return failures, checked, False


def check_seed(seed: int, **kwargs) -> Tuple[List[FuzzFailure], int, bool]:
    """Generate seed's program and run every check on it."""
    return check_source(random_source(seed), seed, **kwargs)


# ----------------------------------------------------------------------
# the fuzzing loop
# ----------------------------------------------------------------------


def _fuzz_chunk(seeds: Sequence[int], chaos: bool = False) -> FuzzReport:
    """Worker entry point: check a chunk of seeds."""
    report = FuzzReport()
    for seed in seeds:
        failures, checked, skipped = check_seed(seed, chaos=chaos)
        report.seeds_run += 1
        report.checked += checked
        report.skipped += int(skipped)
        report.failures.extend(failures)
    return report


def _record_metrics(report: FuzzReport) -> None:
    """Fold a finished fuzz run's verdicts into the metrics registry.

    Called once per ``run_fuzz`` in the parent process only, so
    worker processes never touch the global registry.
    """
    METRICS.inc("fuzz.checked", report.checked)
    METRICS.inc("fuzz.skipped", report.skipped)
    METRICS.inc("fuzz.failures", len(report.failures))
    for failure in report.failures:
        METRICS.inc(f"fuzz.failures.{failure.stage}")


def run_fuzz(
    seeds: Sequence[int],
    jobs: int = 1,
    time_budget: Optional[float] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    chaos: bool = False,
) -> FuzzReport:
    """Fuzz ``seeds``, optionally in parallel, within ``time_budget``.

    ``progress`` (seeds done, seeds total) is called from the parent
    as chunks complete.  When the budget runs out, remaining seeds are
    abandoned and the report's ``budget_exhausted`` flag is set — a
    bounded smoke run in CI is still a meaningful pass.
    """
    started = time.perf_counter()
    deadline = None if time_budget is None else started + time_budget
    total = len(seeds)
    report = FuzzReport()

    if jobs <= 1 or total <= 1:
        for seed in seeds:
            if deadline is not None and time.perf_counter() > deadline:
                report.budget_exhausted = True
                break
            report.merge(_fuzz_chunk([seed], chaos=chaos))
            if progress is not None:
                progress(report.seeds_run, total)
        report.elapsed = time.perf_counter() - started
        _record_metrics(report)
        return report

    chunk_size = max(1, min(8, total // (jobs * 4) or 1))
    chunks = [
        list(seeds[i : i + chunk_size]) for i in range(0, total, chunk_size)
    ]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)), mp_context=context
    )
    abandoned = False
    try:
        futures = {pool.submit(_fuzz_chunk, chunk, chaos) for chunk in chunks}
        while futures:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            done, futures = wait(
                futures, timeout=remaining, return_when=FIRST_COMPLETED
            )
            for future in done:
                report.merge(future.result())
                if progress is not None:
                    progress(report.seeds_run, total)
            if deadline is not None and time.perf_counter() > deadline:
                report.budget_exhausted = bool(futures)
                for future in futures:
                    future.cancel()
                abandoned = bool(futures)
                break
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    report.elapsed = time.perf_counter() - started
    _record_metrics(report)
    return report
