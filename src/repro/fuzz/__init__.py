"""Differential fuzzing: harness, reducer and quarantine corpus.

The fuzzing loop (`repro fuzz` on the command line) is the
reproduction's standing robustness check: random programs through all
six allocator presets, each allocation independently verified and
executed against the source-level interpreter, failures shrunk to
minimal reproducers and quarantined under ``tests/fuzz_corpus/``.
"""

from repro.fuzz.corpus import (
    DEFAULT_CORPUS,
    load_corpus,
    quarantine,
    replay_case,
    replay_corpus,
)
from repro.fuzz.harness import (
    BASELINE_FUEL,
    FUZZ_CONFIGS,
    FuzzFailure,
    FuzzReport,
    check_seed,
    check_source,
    config_for_seed,
    run_fuzz,
)
from repro.fuzz.reduce import reduce_failure, reduce_source

__all__ = [
    "BASELINE_FUEL",
    "DEFAULT_CORPUS",
    "FUZZ_CONFIGS",
    "FuzzFailure",
    "FuzzReport",
    "check_seed",
    "check_source",
    "config_for_seed",
    "load_corpus",
    "quarantine",
    "reduce_failure",
    "reduce_source",
    "replay_case",
    "replay_corpus",
    "run_fuzz",
]
