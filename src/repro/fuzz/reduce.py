"""Greedy statement-deleting reducer for fuzz reproducers.

The generator emits one statement per line, with compound statements
opening a brace at end-of-line and closing it on a dedicated line, so
line-oriented deletion *is* statement deletion: the candidate units
are single lines and balanced brace regions (a header line through
its matching close).  The reducer greedily deletes any unit whose
removal keeps the failure alive — candidates that no longer compile
are simply rejected by the oracle — and repeats until no unit can be
removed (a 1-minimal reproducer with respect to statement deletion).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


def _brace_delta(line: str) -> int:
    return line.count("{") - line.count("}")


def _regions(lines: List[str]) -> List[Tuple[int, int]]:
    """Deletable units as half-open line ranges, largest first.

    For a line that opens a brace the unit runs through the matching
    close; other non-empty lines are single-line units.  Largest-first
    ordering lets the greedy loop drop whole loops/ifs/functions
    before nibbling at their bodies.
    """
    regions: List[Tuple[int, int]] = []
    for start, line in enumerate(lines):
        if not line.strip():
            continue
        if _brace_delta(line) > 0:
            depth = 0
            for end in range(start, len(lines)):
                depth += _brace_delta(lines[end])
                if depth <= 0:
                    regions.append((start, end + 1))
                    break
        else:
            regions.append((start, start + 1))
    regions.sort(key=lambda r: r[0] - r[1])  # widest first
    return regions


def reduce_source(
    source: str,
    still_fails: Callable[[str], bool],
    max_checks: Optional[int] = None,
) -> str:
    """Shrink ``source`` while ``still_fails`` keeps returning True.

    ``still_fails`` is the reproduction oracle: it must return True
    exactly when the candidate source still exhibits the original
    failure (and False for anything else, including sources that no
    longer compile).  ``max_checks`` bounds the number of oracle
    calls; the best reduction found so far is returned when the
    budget runs out.
    """
    lines = source.splitlines()
    checks = 0
    progress = True
    while progress:
        progress = False
        for start, end in _regions(lines):
            if max_checks is not None and checks >= max_checks:
                return "\n".join(lines)
            candidate = lines[:start] + lines[end:]
            checks += 1
            if still_fails("\n".join(candidate)):
                lines = candidate
                progress = True
                break  # region indexes are stale; recompute
    return "\n".join(lines)


def reduce_failure(failure, max_checks: Optional[int] = 2000):
    """Shrink a :class:`~repro.fuzz.harness.FuzzFailure` in place.

    The oracle re-runs the failing preset under the failing register
    configuration and accepts any failure of the same stage — drifting
    to a different same-stage bug during reduction still yields a
    valid reproducer.  Returns the (possibly updated) failure.
    """
    from dataclasses import replace

    from repro.fuzz.harness import check_source
    from repro.machine.registers import RegisterConfig

    config = RegisterConfig(*failure.config)
    presets = None if failure.allocator == "*" else [failure.allocator]

    def still_fails(candidate: str) -> bool:
        failures, _, _ = check_source(
            candidate, failure.seed, config=config, presets=presets
        )
        return any(f.stage == failure.stage for f in failures)

    minimized = reduce_source(failure.source, still_fails, max_checks)
    if minimized == failure.source:
        return failure
    # Re-derive the error text from the minimized program so the
    # quarantined record describes what the committed source does.
    failures, _, _ = check_source(
        minimized, failure.seed, config=config, presets=presets
    )
    for fresh in failures:
        if fresh.stage == failure.stage:
            return replace(
                failure, source=minimized, error=fresh.error
            )
    return replace(failure, source=minimized)
