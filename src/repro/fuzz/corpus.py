"""Quarantine corpus for minimized fuzz reproducers.

Every bug the fuzzer ever found lives on as a JSON record under
``tests/fuzz_corpus/`` carrying the seed, the minimized source, the
compiled IR text, the allocator preset and register configuration,
and the failure stage/error observed when the bug was alive.  The
test suite and CI replay the whole corpus on every run: a quarantined
case passing means the bug stays fixed; a replay failure is a
regression with a ready-made minimal reproducer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.fuzz.harness import FuzzFailure, check_source
from repro.machine.registers import RegisterConfig

#: Corpus location relative to a repository checkout.
DEFAULT_CORPUS = Path("tests") / "fuzz_corpus"


def case_name(failure: FuzzFailure) -> str:
    allocator = failure.allocator.replace("*", "any")
    return f"seed{failure.seed:05d}_{allocator}_{failure.stage}.json"


def quarantine(failure: FuzzFailure, corpus_dir: Path) -> Path:
    """Write one minimized reproducer into the corpus; returns its path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    record = {
        "seed": failure.seed,
        "allocator": failure.allocator,
        "config": list(failure.config),
        "stage": failure.stage,
        "error": failure.error,
        "source": failure.source,
        "ir": _ir_text(failure),
        "rung": failure.rung,
    }
    path = corpus_dir / case_name(failure)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def _ir_text(failure: FuzzFailure) -> Optional[str]:
    """The reproducer's compiled IR, or None when it does not compile."""
    from repro.ir.printer import format_program
    from repro.lang.lower import compile_source

    try:
        program = compile_source(failure.source, name=f"fuzz{failure.seed}")
    except Exception:
        return None
    return format_program(program)


def load_corpus(corpus_dir: Path = DEFAULT_CORPUS) -> List[Dict]:
    """All quarantined cases, sorted by file name."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    cases = []
    for path in sorted(corpus_dir.glob("*.json")):
        record = json.loads(path.read_text())
        record["path"] = str(path)
        cases.append(record)
    return cases


def replay_case(record: Dict) -> List[FuzzFailure]:
    """Re-run every check a quarantined case encodes.

    Returns the failures the case *still* produces — an empty list
    means the bug remains fixed.  The case's own allocator preset is
    checked when it names one; records with allocator ``*`` (bugs
    below the allocator, e.g. interpreter defects) re-check every
    preset.
    """
    presets = None if record["allocator"] == "*" else [record["allocator"]]
    failures, _, skipped = check_source(
        record["source"],
        record["seed"],
        config=RegisterConfig(*record["config"]),
        presets=presets,
        chaos=record.get("stage") == "chaos",
    )
    if skipped:
        return [
            FuzzFailure(
                seed=record["seed"],
                allocator=record["allocator"],
                config=tuple(record["config"]),
                stage="baseline",
                error="corpus case exceeded the baseline fuel budget",
                source=record["source"],
            )
        ]
    return failures


def replay_corpus(corpus_dir: Path = DEFAULT_CORPUS) -> Dict[str, List[FuzzFailure]]:
    """Replay every case; maps case path -> surviving failures."""
    results: Dict[str, List[FuzzFailure]] = {}
    for record in load_corpus(corpus_dir):
        results[record["path"]] = replay_case(record)
    return results
