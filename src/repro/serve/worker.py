"""The worker subprocess: one isolated `AllocationEngine` per process.

``worker_main`` is the entry point the supervisor spawns.  The worker
owns a private engine (its own compile/profile and result caches) and
speaks a tiny pickled-tuple protocol over a duplex pipe:

parent -> worker::

    ("job", job_id, (AllocationRequest, ...), chaos_or_None)
    ("stop",)

worker -> parent::

    ("ready", pid)                       # once, after engine construction
    ("ok", job_id, [outcome, ...])       # one outcome per request, in order

where each ``outcome`` is ``{"status_code": int, "body": dict}`` —
the same wire shape the HTTP layer emits, built from
:meth:`~repro.engine.AllocationResult.to_wire` /
:func:`~repro.engine.error_wire`.  Only JSON-safe dicts ever cross
the pipe; allocations, IR and interference graphs stay inside the
worker, which is what makes killing it cheap.

**Process isolation is the contract.**  Anything that goes wrong in
here — an interpreter crash, a hung fixed point, unbounded memory —
dies with this process; the supervisor sees EOF or a watchdog timeout
and recycles.  Request-level failures (bad source, unknown preset, a
blown budget on a non-resilient request) are *not* process failures:
they travel back as error outcomes in-slot and cost nothing.

The ``chaos`` slot on a job is the service-level fault-injection
hook: a :class:`~repro.chaos.plan.ServiceFault` dict telling this
worker to die (``SIGKILL`` itself), hang past the watchdog, sleep an
injected latency, or answer with a malformed reply.  Faults are
injected *here*, in a real subprocess, precisely so the supervisor's
recovery machinery is exercised against genuine process death rather
than simulated exceptions.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional, Sequence

from repro.engine import AllocationEngine, AllocationRequest, error_wire
from repro.schema import stamp

#: How long a chaos ``hang`` sleeps: far past any sane watchdog, so
#: the only way out is the supervisor's SIGKILL.
HANG_SECONDS = 3600.0


def run_requests(
    engine: AllocationEngine, requests: Sequence[AllocationRequest]
) -> list:
    """Run a job's requests in order; failures stay in-slot.

    Telemetered requests (``request.trace_id`` set) get a
    ``worker-exec`` span around their engine submit, with the engine's
    phase spans hung below it; the span dicts travel back inside the
    wire body (``body["telemetry"]["spans"]``) with parent_id ``None``
    on the root, and the supervisor reparents them under the dispatch
    attempt that ran this job.  Untraced requests skip every telemetry
    branch — the guard is ``trace_id is None``, nothing else.
    """
    outcomes = []
    for request in requests:
        clock = None
        token = None
        if request.trace_id is not None:
            from repro.obs.telemetry import SpanClock

            clock = SpanClock(request.trace_id)
            token = clock.begin("worker-exec")
        try:
            result = engine.submit(request)
            body = stamp(result.to_wire())
            if clock is not None:
                from repro.obs.telemetry import spans_from_phases

                exec_span = clock.end(
                    token,
                    cache=("hit" if result.cache_hit else "miss"),
                    preset=result.preset,
                )
                spans = [exec_span.to_dict()]
                spans.extend(
                    span.to_dict()
                    for span in spans_from_phases(
                        request.trace_id,
                        exec_span.span_id,
                        result.phase_spans,
                    )
                )
                body["telemetry"] = {
                    "trace_id": request.trace_id,
                    "spans": spans,
                }
            outcomes.append({"status_code": 200, "body": body})
        except Exception as error:  # noqa: BLE001 - travels in-slot
            status, body = error_wire(error)
            body = stamp(body)
            if clock is not None:
                exec_span = clock.end(
                    token, error=type(error).__name__
                )
                body["telemetry"] = {
                    "trace_id": request.trace_id,
                    "spans": [exec_span.to_dict()],
                }
            outcomes.append({"status_code": status, "body": body})
    return outcomes


def _apply_pre_chaos(chaos: Optional[dict]) -> None:
    """Faults that fire before the job runs (kill / hang / latency)."""
    if not chaos:
        return
    action = chaos.get("action")
    if action == "kill":
        # A real, uncatchable death — not an exception the engine
        # could absorb.  The supervisor must notice EOF and recover.
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        time.sleep(chaos.get("hang_seconds", HANG_SECONDS))
    elif action == "latency":
        time.sleep(chaos.get("latency_ms", 0.0) / 1000.0)


def worker_main(conn, worker_config: Optional[dict] = None) -> None:
    """The subprocess main loop (target of ``multiprocessing.Process``).

    Blocks on the pipe for jobs until a ``stop`` message or EOF.  The
    parent owns this process's lifetime entirely: SIGINT is ignored so
    a Ctrl+C aimed at the server races nothing — shutdown is always
    the supervisor's explicit ``stop``/SIGKILL.
    """
    worker_config = worker_config or {}
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # Under the fork start method this process may have inherited the
    # metrics registry's lock in a held state (another parent thread
    # was mid-increment at fork time); rearm it before any engine work
    # can touch a metric.
    from repro.obs.metrics import METRICS

    METRICS.rearm_after_fork()
    engine = AllocationEngine(
        cache_size=int(worker_config.get("cache_size", 64)),
        program_cache_size=int(worker_config.get("program_cache_size", 16)),
    )
    # Warm start: a respawned (or recycled, or SIGKILLed-and-replaced)
    # worker re-reads its predecessors' published artifacts before
    # taking traffic, so process death never forfeits warm state.
    # Runs before the ready handshake: the supervisor only dispatches
    # to workers that are already warm.  Advisory — any failure here
    # just means a cold first request.
    store_dir = worker_config.get("store_dir")
    if store_dir:
        from repro.store import configure_store

        configure_store(store_dir, export_env=False)
        for name in worker_config.get("warm_workloads", ()):
            try:
                from repro.workloads.registry import compile_workload

                compile_workload(name)
                METRICS.inc("store.warm_start")
            except Exception:  # noqa: BLE001 - warm start is advisory
                continue
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:  # pragma: no cover - belt and braces
            return
        if not isinstance(message, tuple) or not message:
            continue
        if message[0] == "stop":
            return
        if message[0] != "job":
            continue
        _, job_id, requests, chaos = message
        _apply_pre_chaos(chaos)
        outcomes = run_requests(engine, requests)
        try:
            if chaos and chaos.get("action") == "garbage":
                # Deliberately violate the protocol: not a tuple, not a
                # reply — the supervisor must treat this worker as
                # compromised and recycle it.
                conn.send("\x00garbage-reply\x00")
            else:
                conn.send(("ok", job_id, outcomes))
        except (BrokenPipeError, OSError):
            return
