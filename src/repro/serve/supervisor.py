"""The supervised worker pool: process isolation for engine work.

PR 5 made *allocation* total (the resilience ladder); this module
makes the *serving process* total.  Engine work runs in worker
subprocesses (:mod:`repro.serve.worker`), each a private
:class:`~repro.engine.AllocationEngine` over a pipe protocol, and the
supervisor guarantees that no worker-level disaster — a hung fixed
point, an interpreter crash, a memory blowup — ever surfaces as a
failed client request:

* **Hard watchdogs.**  Every dispatched job gets a wall-clock budget
  derived from its requests' deadlines (or the configured default);
  a worker that blows it is SIGKILLed.  This is *independent* of the
  cooperative :class:`~repro.regalloc.budget.AllocationBudget` checks:
  the budget asks nicely at phase boundaries, the watchdog does not
  ask at all.
* **Recycling.**  Workers retire gracefully after ``recycle_after``
  jobs or when their RSS crosses ``max_rss_mb`` (slow leaks die young),
  and are killed outright on crash, hang or protocol violation.
* **Respawn with backoff.**  A dying worker slot respawns with
  exponential backoff (reset on the first healthy job), so a
  crash-looping environment degrades to slow instead of burning CPU
  on fork loops.
* **Retry, then degrade.**  A job interrupted by worker death re-runs
  on a fresh worker up to ``retries`` times; past that the supervisor
  itself answers with an inline resilient spill-everywhere allocation
  — mirroring :mod:`repro.resilience.chain`, where the final rung is
  sacrosanct — and attributes every worker fault in a structured
  ``supervisor`` record on the response.
* **Circuit breakers.**  Worker-fatal failures are charged to the
  request's preset (:mod:`repro.serve.breaker`); a preset that keeps
  killing workers gets fast 503s with ``Retry-After`` instead of a
  worker apiece, with half-open probes to recover.
* **Bulkheads.**  ``/allocate`` (interactive) and ``/batch`` traffic
  run on separate queues with separate worker allotments, so a batch
  campaign can saturate its own bulkhead without adding a millisecond
  to interactive latency.

The supervisor also hosts the service-level chaos hook: an armed
:class:`~repro.chaos.plan.ServiceFaultPlan` tags dispatches with
kill/hang/latency/garbage directives that the *worker* executes, so
chaos exercises real process death end to end.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import (
    AllocationEngine,
    AllocationRequest,
    ContentCache,
    EngineError,
    error_wire,
    fingerprint_text,
)
from repro.obs.metrics import METRICS
from repro.schema import stamp
from repro.serve.breaker import BreakerBoard
from repro.serve.worker import worker_main

INTERACTIVE = "interactive"
BATCH = "batch"


class SupervisorError(EngineError):
    """A supervisor-level refusal; ``status`` hints the HTTP mapping."""

    status = 500


class AdmissionFull(SupervisorError):
    """The target bulkhead's queue is full — back off and retry."""

    status = 429

    def __init__(self, bulkhead: str, retry_after: float) -> None:
        self.bulkhead = bulkhead
        self.retry_after = retry_after
        super().__init__(f"{bulkhead} queue full")


class BreakerOpen(SupervisorError):
    """The preset's circuit is open — it has been killing workers."""

    status = 503

    def __init__(self, preset: str, retry_after: float) -> None:
        self.preset = preset
        self.retry_after = retry_after
        super().__init__(
            f"circuit open for preset {preset!r} "
            f"(recent requests killed workers); retry in {retry_after:.1f}s"
        )


class SupervisorStopped(SupervisorError):
    """The supervisor is shutting down; queued work is refused."""

    status = 503

    def __init__(self, message: str = "server shutting down") -> None:
        super().__init__(message)


@dataclass
class SupervisorConfig:
    """Tunables of one supervisor instance."""

    #: Worker processes on the interactive bulkhead.
    workers: int = 2
    #: Worker processes reserved for ``/batch`` traffic.
    batch_workers: int = 1
    #: Interactive bulkhead queue bound (full queue answers 429).
    queue_size: int = 64
    #: Batch bulkhead queue bound.
    batch_queue_size: int = 16
    #: Default per-request hard wall clock (seconds) when the request
    #: carries no deadline of its own.
    watchdog_seconds: float = 30.0
    #: Slack added on top of a request's cooperative deadline before
    #: the SIGKILL fires (the resilience ladder's final rung runs
    #: unbudgeted and needs room to finish).
    watchdog_grace: float = 2.0
    #: Re-runs on a fresh worker after worker death, before degrading.
    retries: int = 2
    #: Graceful worker retirement after this many completed jobs.
    recycle_after: int = 200
    #: Recycle a worker whose RSS crosses this bound (MiB); None
    #: disables the check (it is also skipped where /proc is absent).
    max_rss_mb: Optional[float] = 1024.0
    #: First respawn backoff after a worker death (doubles per
    #: consecutive death, resets on a healthy job).
    respawn_backoff: float = 0.05
    respawn_backoff_cap: float = 2.0
    #: Spawn attempts per needed worker before the job degrades.
    spawn_attempts: int = 3
    #: Seconds to wait for a fresh worker's ``ready`` handshake.
    spawn_timeout: float = 30.0
    #: Consecutive worker-fatal failures per preset before its
    #: circuit opens.
    breaker_threshold: int = 5
    #: Seconds an open circuit waits before admitting a probe.
    breaker_cooldown: float = 30.0
    #: Parent-side wire-result cache entries (0 disables — the chaos
    #: campaign does, so every request genuinely dispatches).
    result_cache_size: int = 256
    #: Worker-side engine result cache entries.
    worker_cache_size: int = 64
    #: ``multiprocessing`` start method; None picks ``fork`` when
    #: available (workers inherit warm imports) else the default.
    mp_start_method: Optional[str] = None
    #: Artifact store root for worker warm starts; None disables.
    #: Every spawned/respawned/recycled worker configures the store
    #: before its ready handshake, so process death never forfeits
    #: compiled-program warm state (profiles, static weights).
    store_dir: Optional[str] = None
    #: Workload names each fresh worker pre-compiles from the store
    #: before taking traffic (source/ir requests warm lazily through
    #: the engine's own store reads).
    warm_workloads: Tuple[str, ...] = ()
    #: Single-flight coalescing of identical in-flight requests.
    #: Off in the chaos campaign, whose fault plan indexes dispatches
    #: and therefore needs every request to genuinely dispatch.
    coalesce: bool = True


@dataclass
class _Job:
    """One queued unit: N requests, one future, one hard budget."""

    id: int
    requests: Tuple[AllocationRequest, ...]
    future: Future
    hard_timeout: float
    presets: Tuple[str, ...]
    cache_key: Optional[tuple] = None
    #: The shared trace identity of the job's requests (the server
    #: stamps one trace ID per HTTP request, batches included); None
    #: for untraced jobs, which then skip every telemetry branch.
    trace_id: Optional[str] = None
    #: Admission timestamps backing the queue-wait span (wall clock
    #: for the span start, perf_counter for its duration).
    enqueued_wall: float = 0.0
    enqueued_perf: float = 0.0


@dataclass
class _WorkerHandle:
    process: object
    conn: object
    pid: int
    jobs_done: int = 0
    busy: bool = False


@dataclass
class _Slot:
    """One dispatcher thread's worker seat."""

    name: str
    worker: Optional[_WorkerHandle] = None
    backoff: float = 0.0
    ever_spawned: bool = False


@dataclass
class _Bulkhead:
    name: str
    queue: "queue.Queue[_Job]"
    slots: List[_Slot] = field(default_factory=list)


def _rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MiB, or None where unknowable."""
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


class Supervisor:
    """Owns the worker processes and every recovery decision."""

    def __init__(self, config: Optional[SupervisorConfig] = None) -> None:
        self.config = config or SupervisorConfig()
        method = self.config.mp_start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._mp = multiprocessing.get_context(method)
        self._job_ids = itertools.count(1)
        self._stats_lock = threading.Lock()
        self.counters: Dict[str, int] = {}
        self.breaker_transitions: List[dict] = []
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            on_transition=self._on_breaker_transition,
        )
        self._cache = (
            ContentCache(
                self.config.result_cache_size,
                metric_prefix="supervisor.cache",
            )
            if self.config.result_cache_size > 0
            else None
        )
        #: The inline last resort: spill-everywhere through the
        #: resilience ladder, in *this* process — nothing to kill.
        self._fallback_engine = AllocationEngine(
            cache_size=32, program_cache_size=8
        )
        self.degraded_log: List[dict] = []
        self.all_worker_pids: List[int] = []
        # Single-flight coalescing: cache key -> the in-flight leader
        # job currently computing that key's answer.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[tuple, _Job] = {}
        # chaos
        self._chaos_lock = threading.Lock()
        self._chaos_by_dispatch: Dict[int, dict] = {}
        self._dispatch_count = 0
        self.chaos_armed = 0
        self.chaos_fired: List[dict] = []
        # bulkheads + dispatcher threads
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self.bulkheads: Dict[str, _Bulkhead] = {
            INTERACTIVE: _Bulkhead(
                INTERACTIVE, queue.Queue(maxsize=self.config.queue_size)
            ),
            BATCH: _Bulkhead(
                BATCH, queue.Queue(maxsize=self.config.batch_queue_size)
            ),
        }
        for index in range(max(1, self.config.workers)):
            self.bulkheads[INTERACTIVE].slots.append(
                _Slot(name=f"{INTERACTIVE}-{index}")
            )
        for index in range(max(1, self.config.batch_workers)):
            self.bulkheads[BATCH].slots.append(_Slot(name=f"{BATCH}-{index}"))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start one dispatcher thread per worker slot."""
        for bulkhead in self.bulkheads.values():
            for slot in bulkhead.slots:
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    args=(bulkhead, slot),
                    name=f"repro-supervisor-{slot.name}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def stop(self, grace: float = 5.0) -> None:
        """Refuse new work, 503 the queues, drain or kill in-flight.

        Queued jobs fail cleanly with :class:`SupervisorStopped` (the
        HTTP layer renders 503 and the connection is answered, not
        reset).  In-flight jobs get ``grace`` seconds to complete;
        whatever is still running then loses its worker to SIGKILL and
        also fails with a clean 503.  No worker subprocess survives
        this call.
        """
        self._stopping = True
        for bulkhead in self.bulkheads.values():
            while True:
                try:
                    job = bulkhead.queue.get_nowait()
                except queue.Empty:
                    break
                self._fail_job(job, SupervisorStopped())
        deadline = time.monotonic() + grace
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        # Anything still busy: take its worker away; the dispatcher
        # observes the death, sees _stopping, and 503s the job.
        for bulkhead in self.bulkheads.values():
            for slot in bulkhead.slots:
                worker = slot.worker
                if worker is not None:
                    self._kill_worker(worker)
        for thread in self._threads:
            thread.join(2.0)
        for bulkhead in self.bulkheads.values():
            for slot in bulkhead.slots:
                if slot.worker is not None:
                    self._kill_worker(slot.worker)
                    slot.worker = None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def submit(
        self,
        requests: Sequence[AllocationRequest],
        bulkhead: str = INTERACTIVE,
        retry_after: float = 1.0,
    ) -> "Future[List[dict]]":
        """Queue a job; returns a future of per-request wire outcomes.

        Raises :class:`SupervisorStopped` during shutdown,
        :class:`BreakerOpen` when any requested preset's circuit is
        open, and :class:`AdmissionFull` when the bulkhead queue is at
        capacity — all *before* any work is accepted, so refusal is
        always cheap.
        """
        if self._stopping:
            raise SupervisorStopped()
        presets = tuple(sorted({request.preset for request in requests}))
        probed: List[str] = []
        for preset in presets:
            allowed, wait = self.breakers.allow(preset)
            probed.append(preset)
            if not allowed:
                for name in probed:
                    self.breakers._get(name).release_probe()
                self._count("supervisor.breaker.rejected")
                raise BreakerOpen(preset, wait)
        cache_key = (
            self._cache_key(requests[0]) if len(requests) == 1 else None
        )
        trace_id = requests[0].trace_id
        if cache_key is not None and self._cache is not None:
            cached = self._cache.get(cache_key)
            if cached is not None:
                for name in probed:
                    self.breakers._get(name).release_probe()
                body = dict(cached)
                body["cache"] = "hit"
                if trace_id is not None:
                    from repro.obs.telemetry import SpanClock

                    clock = SpanClock(trace_id)
                    span = clock.end(
                        clock.begin("engine-cache"), layer="supervisor"
                    )
                    body["telemetry"] = {
                        "trace_id": trace_id,
                        "spans": [span.to_dict()],
                    }
                future: "Future[List[dict]]" = Future()
                future.set_result([{"status_code": 200, "body": body}])
                return future
        job = _Job(
            id=next(self._job_ids),
            requests=tuple(requests),
            future=Future(),
            hard_timeout=self._hard_timeout(requests),
            presets=presets,
            cache_key=cache_key,
            trace_id=trace_id,
            enqueued_wall=time.time() if trace_id is not None else 0.0,
            enqueued_perf=(
                time.perf_counter() if trace_id is not None else 0.0
            ),
        )
        if cache_key is not None and self.config.coalesce:
            # Single flight: if a job with this exact cache key is
            # already in flight, ride it instead of queueing a twin —
            # the follower's future resolves off the leader's, marked
            # ``coalesced``, with its own trace identity.  Check and
            # leader registration are one atomic step, so identical
            # concurrent requests elect exactly one leader.
            with self._inflight_lock:
                leader = self._inflight.get(cache_key)
                if leader is not None and not leader.future.done():
                    for name in probed:
                        self.breakers._get(name).release_probe()
                    return self._coalesce(leader, trace_id)
                self._inflight[cache_key] = job
            job.future.add_done_callback(
                lambda _f, key=cache_key, job=job: self._inflight_done(
                    key, job
                )
            )
        try:
            self.bulkheads[bulkhead].queue.put_nowait(job)
        except queue.Full:
            if cache_key is not None:
                self._inflight_done(cache_key, job)
            for name in probed:
                self.breakers._get(name).release_probe()
            self._count("supervisor.admission_full")
            raise AdmissionFull(bulkhead, retry_after) from None
        return job.future

    def _inflight_done(self, key: tuple, job: _Job) -> None:
        with self._inflight_lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    def _coalesce(
        self, leader: _Job, trace_id: Optional[str]
    ) -> "Future[List[dict]]":
        """A follower future that resolves off ``leader``'s result.

        The follower shares the leader's engine execution but nothing
        else: its body is a copy marked ``coalesced`` and its
        telemetry is its *own* — a single ``coalesced-wait`` span
        under its own trace ID, spanning exactly the time it waited.
        Leader failures (shutdown, degraded errors) propagate as-is.
        """
        self._count("serve.coalesced")
        follower: "Future[List[dict]]" = Future()
        clock = None
        token = None
        if trace_id is not None:
            from repro.obs.telemetry import SpanClock

            clock = SpanClock(trace_id)
            token = clock.begin("coalesced-wait")

        def fan_out(done: "Future[List[dict]]") -> None:
            if follower.done():
                return
            error = done.exception()
            if error is not None:
                follower.set_exception(error)
                return
            copied = []
            for outcome in done.result():
                body = {
                    key: value
                    for key, value in outcome["body"].items()
                    if key != "telemetry"
                }
                body["coalesced"] = True
                if clock is not None:
                    span = clock.end(
                        token, layer="supervisor", leader_job=leader.id
                    )
                    body["telemetry"] = {
                        "trace_id": trace_id,
                        "spans": [span.to_dict()],
                    }
                copied.append(
                    {"status_code": outcome["status_code"], "body": body}
                )
            follower.set_result(copied)

        leader.future.add_done_callback(fan_out)
        return follower

    def _hard_timeout(self, requests: Sequence[AllocationRequest]) -> float:
        total = 0.0
        for request in requests:
            if request.deadline_seconds is not None:
                total += request.deadline_seconds + self.config.watchdog_grace
            else:
                total += self.config.watchdog_seconds
        return total

    def _cache_key(self, request: AllocationRequest) -> Optional[tuple]:
        if request.trace:
            return None
        try:
            kind, text = request.program_spec()
        except EngineError:
            return None
        return (
            kind,
            fingerprint_text(text),
            request.preset,
            request.config,
            request.info,
            request.optimize,
            request.resilient,
            request.fuel,
            request.deadline_seconds,
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch_loop(self, bulkhead: _Bulkhead, slot: _Slot) -> None:
        while True:
            try:
                job = bulkhead.queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopping:
                    break
                continue
            if self._stopping:
                self._fail_job(job, SupervisorStopped())
                continue
            try:
                self._run_job(bulkhead, slot, job)
            except Exception as error:  # noqa: BLE001 - never lose a future
                self._fail_job(job, error)
        self._retire_worker(slot, graceful=True)

    def _run_job(self, bulkhead: _Bulkhead, slot: _Slot, job: _Job) -> None:
        faults: List[dict] = []
        attempts = 0
        clock = None
        job_spans: List[dict] = []
        success_span: Optional[str] = None
        if job.trace_id is not None:
            from repro.obs.telemetry import SpanClock

            clock = SpanClock(job.trace_id)
            job_spans.append(
                clock.point(
                    "queue-wait",
                    start=job.enqueued_wall,
                    duration=time.perf_counter() - job.enqueued_perf,
                    bulkhead=bulkhead.name,
                ).to_dict()
            )
        while attempts <= self.config.retries:
            if self._stopping:
                self._fail_job(job, SupervisorStopped())
                return
            attempts += 1
            worker = self._ensure_worker(slot)
            if worker is None:
                faults.append(
                    {"reason": "spawn-failed", "worker_pid": None, "chaos": None}
                )
                break
            chaos = self._take_chaos()
            self._count("supervisor.dispatches")
            # One dispatch span PER ATTEMPT, tagged with the attempt
            # number and outcome — a request that survives a worker
            # kill keeps the failed attempt visible in its span tree.
            token = clock.begin("dispatch") if clock is not None else None
            try:
                worker.conn.send(("job", job.id, job.requests, chaos))
            except (BrokenPipeError, OSError):
                if clock is not None:
                    job_spans.append(
                        clock.end(
                            token,
                            outcome="send-failed",
                            attempt=attempts,
                            worker_pid=worker.pid,
                        ).to_dict()
                    )
                faults.append(self._fault_record(worker, "crash", chaos))
                self._worker_fatal(slot, job, "crash")
                continue
            worker.busy = True
            try:
                ok, outcomes, reason = self._await_reply(worker, job)
            finally:
                worker.busy = False
            if not ok:
                if clock is not None:
                    job_spans.append(
                        clock.end(
                            token,
                            outcome=reason,
                            attempt=attempts,
                            worker_pid=worker.pid,
                        ).to_dict()
                    )
                faults.append(self._fault_record(worker, reason, chaos))
                self._worker_fatal(slot, job, reason)
                if attempts <= self.config.retries:
                    self._count("supervisor.retries")
                continue
            if clock is not None:
                span = clock.end(
                    token,
                    outcome="ok",
                    attempt=attempts,
                    worker_pid=worker.pid,
                )
                job_spans.append(span.to_dict())
                success_span = span.span_id
            worker.jobs_done += 1
            slot.backoff = 0.0
            for preset in job.presets:
                self.breakers.record_success(preset)
            self._maybe_recycle(slot, worker)
            self._finish_job(
                job, outcomes, faults, attempts, job_spans, success_span
            )
            return
        self._degrade_job(job, faults, attempts, clock, job_spans)

    def _await_reply(self, worker: _WorkerHandle, job: _Job):
        """Wait for the worker's reply under the hard watchdog."""
        if not worker.conn.poll(job.hard_timeout):
            return False, None, "watchdog"
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            return False, None, "crash"
        if (
            not isinstance(message, tuple)
            or len(message) != 3
            or message[0] != "ok"
            or message[1] != job.id
            or not isinstance(message[2], list)
        ):
            return False, None, "garbage"
        return True, message[2], None

    def _worker_fatal(self, slot: _Slot, job: _Job, reason: str) -> None:
        """Account one worker death: kill, backoff, breaker charge."""
        worker = slot.worker
        if worker is not None:
            self._kill_worker(worker)
        slot.worker = None
        slot.backoff = (
            self.config.respawn_backoff
            if slot.backoff == 0.0
            else min(slot.backoff * 2.0, self.config.respawn_backoff_cap)
        )
        self._count(f"supervisor.kills.{reason}")
        self._count("supervisor.kills")
        for preset in job.presets:
            self.breakers.record_failure(preset)

    def _fault_record(
        self, worker: _WorkerHandle, reason: str, chaos: Optional[dict]
    ) -> dict:
        return {"reason": reason, "worker_pid": worker.pid, "chaos": chaos}

    def _finish_job(
        self,
        job: _Job,
        outcomes: List[dict],
        faults: List[dict],
        attempts: int,
        job_spans: Optional[List[dict]] = None,
        parent_span_id: Optional[str] = None,
    ) -> None:
        if job.trace_id is not None:
            from repro.obs.telemetry import reparent

            # Merge worker-side spans parent-side: the worker's roots
            # (its worker-exec spans) hang under the dispatch attempt
            # that ran the job.  Job-level spans (queue-wait, every
            # dispatch attempt) are echoed on every outcome so no
            # single body of a batch is privileged; the HTTP layer
            # dedupes them by span_id when it rebuilds the tree.
            for outcome in outcomes:
                body = outcome["body"]
                telemetry = body.get("telemetry")
                worker_spans = (
                    list(telemetry.get("spans", []))
                    if isinstance(telemetry, dict)
                    else []
                )
                if parent_span_id is not None:
                    worker_spans = reparent(worker_spans, parent_span_id)
                body["telemetry"] = {
                    "trace_id": job.trace_id,
                    "spans": list(job_spans or []) + worker_spans,
                }
        if faults:
            # The job survived worker deaths on the way: attribute them.
            for outcome in outcomes:
                outcome["body"]["supervisor"] = {
                    "degraded": False,
                    "attempts": attempts,
                    "faults": faults,
                }
        elif (
            job.cache_key is not None
            and self._cache is not None
            and len(outcomes) == 1
            and outcomes[0]["status_code"] == 200
        ):
            # Telemetry is per-request state; caching it would replay
            # one request's spans into another's tree.  Hits get a
            # fresh engine-cache span at admission instead.
            cached_body = {
                key: value
                for key, value in outcomes[0]["body"].items()
                if key != "telemetry"
            }
            self._cache.put(job.cache_key, cached_body)
        if not job.future.done():
            job.future.set_result(outcomes)

    def _degrade_job(
        self,
        job: _Job,
        faults: List[dict],
        attempts: int,
        clock=None,
        job_spans: Optional[List[dict]] = None,
    ) -> None:
        """Retries exhausted: answer from the inline last resort.

        Mirrors the resilience chain's sacrosanct final rung —
        spill-everywhere through the verified ladder, run in the
        supervisor process itself where no worker fault can reach it —
        so the client still gets a correct (degraded, fully
        attributed) allocation instead of an error.
        """
        self._count("supervisor.degraded")
        record = {
            "degraded": True,
            "rung": "spillall-inline",
            "attempts": attempts,
            "faults": faults,
        }
        outcomes = []
        for request in job.requests:
            # ``replace`` keeps trace_id/telemetry, so the degraded
            # answer stays traceable under the SAME trace ID: the
            # fallback engine's phase spans hang under a
            # degrade-inline span next to the failed dispatch attempts.
            fallback = replace(
                request,
                preset="spillall",
                resilient=True,
                trace=False,
                deadline_seconds=None,
            )
            token = (
                clock.begin("degrade-inline") if clock is not None else None
            )
            try:
                result = self._fallback_engine.submit(fallback)
                body = stamp(result.to_wire())
                body["supervisor"] = {
                    **record,
                    "requested_preset": request.preset,
                }
                if clock is not None:
                    from repro.obs.telemetry import spans_from_phases

                    span = clock.end(
                        token,
                        rung="spillall-inline",
                        requested_preset=request.preset,
                    )
                    spans = list(job_spans or []) + [span.to_dict()]
                    spans.extend(
                        child.to_dict()
                        for child in spans_from_phases(
                            job.trace_id, span.span_id, result.phase_spans
                        )
                    )
                    body["telemetry"] = {
                        "trace_id": job.trace_id,
                        "spans": spans,
                    }
                outcomes.append({"status_code": 200, "body": body})
            except Exception as error:  # noqa: BLE001 - last-ditch
                status, body = error_wire(error)
                body["supervisor"] = {
                    **record,
                    "requested_preset": request.preset,
                }
                if clock is not None:
                    span = clock.end(
                        token,
                        rung="spillall-inline",
                        error=type(error).__name__,
                    )
                    body["telemetry"] = {
                        "trace_id": job.trace_id,
                        "spans": list(job_spans or []) + [span.to_dict()],
                    }
                outcomes.append({"status_code": status, "body": stamp(body)})
        with self._stats_lock:
            self.degraded_log.append(
                {
                    "job": job.id,
                    "presets": list(job.presets),
                    "names": [request.name for request in job.requests],
                    "attempts": attempts,
                    "faults": faults,
                }
            )
        if not job.future.done():
            job.future.set_result(outcomes)

    def _fail_job(self, job: _Job, error: BaseException) -> None:
        if not job.future.done():
            job.future.set_exception(error)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------

    def _ensure_worker(self, slot: _Slot) -> Optional[_WorkerHandle]:
        worker = slot.worker
        if worker is not None and worker.process.is_alive():
            return worker
        slot.worker = None
        for _ in range(max(1, self.config.spawn_attempts)):
            if self._stopping:
                return None
            if slot.backoff > 0.0:
                time.sleep(min(slot.backoff, self.config.respawn_backoff_cap))
            try:
                slot.worker = self._spawn(slot)
            except Exception:  # noqa: BLE001 - spawn failure feeds backoff
                self._count("supervisor.spawn_failures")
                slot.backoff = (
                    self.config.respawn_backoff
                    if slot.backoff == 0.0
                    else min(
                        slot.backoff * 2.0, self.config.respawn_backoff_cap
                    )
                )
                continue
            self._count("supervisor.spawns")
            if self.config.store_dir is not None:
                self._count("supervisor.warm_starts")
            if slot.ever_spawned:
                self._count("supervisor.respawns")
            slot.ever_spawned = True
            return slot.worker
        return None

    def _spawn(self, slot: _Slot) -> _WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe()
        worker_config = {"cache_size": self.config.worker_cache_size}
        if self.config.store_dir is not None:
            worker_config["store_dir"] = str(self.config.store_dir)
            worker_config["warm_workloads"] = tuple(
                self.config.warm_workloads
            )
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, worker_config),
            name=f"repro-worker-{slot.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.config.spawn_timeout):
            process.kill()
            process.join(1.0)
            parent_conn.close()
            raise RuntimeError(f"worker {slot.name} never became ready")
        message = parent_conn.recv()
        if not (isinstance(message, tuple) and message[0] == "ready"):
            process.kill()
            process.join(1.0)
            parent_conn.close()
            raise RuntimeError(f"worker {slot.name} sent a bad handshake")
        handle = _WorkerHandle(
            process=process, conn=parent_conn, pid=process.pid
        )
        with self._stats_lock:
            self.all_worker_pids.append(process.pid)
        return handle

    def _kill_worker(self, worker: _WorkerHandle) -> None:
        try:
            worker.process.kill()
        except Exception:  # noqa: BLE001 - already dead
            pass
        worker.process.join(2.0)
        try:
            worker.conn.close()
        except Exception:  # noqa: BLE001
            pass

    def _retire_worker(self, slot: _Slot, graceful: bool = False) -> None:
        worker = slot.worker
        if worker is None:
            return
        slot.worker = None
        if graceful and worker.process.is_alive():
            try:
                worker.conn.send(("stop",))
                worker.process.join(1.0)
            except (BrokenPipeError, OSError):
                pass
        self._kill_worker(worker)

    def _maybe_recycle(self, slot: _Slot, worker: _WorkerHandle) -> None:
        reason = None
        if worker.jobs_done >= self.config.recycle_after:
            reason = "requests"
        elif self.config.max_rss_mb is not None:
            rss = _rss_mb(worker.pid)
            if rss is not None and rss > self.config.max_rss_mb:
                reason = "oom"
        if reason is None:
            return
        self._count("supervisor.recycled")
        self._count(f"supervisor.recycled.{reason}")
        self._retire_worker(slot, graceful=True)

    # ------------------------------------------------------------------
    # chaos
    # ------------------------------------------------------------------

    def arm_chaos(self, plan) -> None:
        """Install a service fault plan: faults fire by dispatch index.

        ``plan`` is a :class:`~repro.chaos.plan.ServiceFaultPlan` (or
        anything with a ``faults`` list of objects carrying ``after``
        and ``as_dict()``).  The Nth dispatch to a worker — retries
        included — triggers the fault armed for index N.
        """
        with self._chaos_lock:
            for fault in plan.faults:
                self._chaos_by_dispatch[fault.after] = fault.as_dict()
            self.chaos_armed += len(plan.faults)

    def _take_chaos(self) -> Optional[dict]:
        with self._chaos_lock:
            if not self._chaos_by_dispatch and not self.chaos_fired:
                return None
            self._dispatch_count += 1
            fault = self._chaos_by_dispatch.pop(self._dispatch_count, None)
            if fault is None:
                return None
            fired = {**fault, "dispatch": self._dispatch_count}
            self.chaos_fired.append(fired)
        self._count("supervisor.chaos.injected")
        return fault

    # ------------------------------------------------------------------
    # accounting / introspection
    # ------------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        with self._stats_lock:
            self.counters[name] = self.counters.get(name, 0) + value
        METRICS.inc(name, value)

    def _on_breaker_transition(self, preset: str, old: str, new: str) -> None:
        with self._stats_lock:
            self.breaker_transitions.append(
                {"preset": preset, "from": old, "to": new}
            )
        METRICS.inc(f"supervisor.breaker.{new.replace('-', '_')}")

    def live_workers(self) -> List[int]:
        """PIDs of currently-alive worker processes."""
        pids = []
        for bulkhead in self.bulkheads.values():
            for slot in bulkhead.slots:
                worker = slot.worker
                if worker is not None and worker.process.is_alive():
                    pids.append(worker.pid)
        return pids

    def health(self) -> dict:
        """JSON-ready live state for ``GET /healthz``."""
        live = 0
        busy = 0
        bulkheads = {}
        for bulkhead in self.bulkheads.values():
            for slot in bulkhead.slots:
                worker = slot.worker
                if worker is not None and worker.process.is_alive():
                    live += 1
                    if worker.busy:
                        busy += 1
            bulkheads[bulkhead.name] = {
                "queue_depth": bulkhead.queue.qsize(),
                "queue_capacity": bulkhead.queue.maxsize,
                "workers": len(bulkhead.slots),
            }
        with self._stats_lock:
            counters = dict(sorted(self.counters.items()))
            chaos_fired = len(self.chaos_fired)
        with self._chaos_lock:
            chaos_armed = len(self._chaos_by_dispatch)
        return {
            "workers": {
                "live": live,
                "busy": busy,
                "configured": sum(
                    len(b.slots) for b in self.bulkheads.values()
                ),
            },
            "bulkheads": bulkheads,
            "breakers": self.breakers.states(),
            "counters": counters,
            "chaos": {"pending": chaos_armed, "fired": chaos_fired},
            "cache": self._cache.stats() if self._cache is not None else None,
        }

    def report(self) -> dict:
        """The structured post-run supervisor story (campaign artifact).

        Everything the chaos-serve acceptance bar needs: per-counter
        totals, every degraded response with its attributed worker
        faults, breaker transitions, the chaos firing log, and every
        worker PID ever spawned (so a harness can assert none leaked).
        """
        with self._stats_lock:
            return stamp(
                {
                    "counters": dict(sorted(self.counters.items())),
                    "degraded": list(self.degraded_log),
                    "breaker_transitions": list(self.breaker_transitions),
                    "chaos": {
                        "armed": self.chaos_armed,
                        "fired": list(self.chaos_fired),
                    },
                    "worker_pids": list(self.all_worker_pids),
                }
            )
