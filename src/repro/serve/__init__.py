"""Allocation-as-a-service: async HTTP front end over the engine.

:class:`AllocationServer` serves allocation work over HTTP/JSON with
bounded-queue backpressure, per-request deadlines and — by default —
**process isolation**: engine work runs in supervised worker
subprocesses (:mod:`repro.serve.supervisor` / :mod:`repro.serve.worker`)
with hard watchdogs, crash recovery, per-preset circuit breakers
(:mod:`repro.serve.breaker`) and bulkhead queues, so no engine
disaster ever takes the serving process down.
:mod:`repro.serve.loadgen` is the bundled client, latency benchmark
and chaos-survival harness.  Every request carries an end-to-end
trace ID (:mod:`repro.obs.telemetry`): responses echo a compact
latency breakdown, ``/debug/requests`` resolves full cross-process
span trees from the flight recorder, and ``/metrics`` scores the SLO.
Stdlib only (asyncio + multiprocessing), by design.
"""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from repro.serve.loadgen import (
    DEFAULT_PROGRAMS,
    LoadgenConfig,
    LoadgenReport,
    http_get_json,
    http_post_json,
    run_loadgen,
    run_loadgen_async,
)
from repro.serve.server import (
    AllocationServer,
    ServerConfig,
    ServerThread,
    ServiceUnavailable,
    request_from_payload,
    result_payload,
    serve_forever,
)
from repro.serve.supervisor import (
    BATCH,
    INTERACTIVE,
    AdmissionFull,
    BreakerOpen,
    Supervisor,
    SupervisorConfig,
    SupervisorError,
    SupervisorStopped,
)

__all__ = [
    "AdmissionFull",
    "AllocationServer",
    "BATCH",
    "BreakerBoard",
    "BreakerOpen",
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_PROGRAMS",
    "HALF_OPEN",
    "INTERACTIVE",
    "LoadgenConfig",
    "LoadgenReport",
    "OPEN",
    "ServerConfig",
    "ServerThread",
    "ServiceUnavailable",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorError",
    "SupervisorStopped",
    "http_get_json",
    "http_post_json",
    "request_from_payload",
    "result_payload",
    "run_loadgen",
    "run_loadgen_async",
    "serve_forever",
]
