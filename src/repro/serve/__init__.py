"""Allocation-as-a-service: async HTTP front end over the engine.

:class:`AllocationServer` serves the engine's
:meth:`~repro.engine.AllocationEngine.submit` path over HTTP/JSON
with bounded-queue backpressure, request batching and per-request
deadlines; :mod:`repro.serve.loadgen` is the bundled client and
latency benchmark.  Stdlib only (asyncio), by design.
"""

from repro.serve.loadgen import (
    DEFAULT_PROGRAMS,
    LoadgenConfig,
    LoadgenReport,
    http_get_json,
    http_post_json,
    run_loadgen,
    run_loadgen_async,
)
from repro.serve.server import (
    AllocationServer,
    ServerConfig,
    ServerThread,
    ServiceUnavailable,
    request_from_payload,
    result_payload,
    serve_forever,
)

__all__ = [
    "AllocationServer",
    "DEFAULT_PROGRAMS",
    "LoadgenConfig",
    "LoadgenReport",
    "ServerConfig",
    "ServerThread",
    "ServiceUnavailable",
    "http_get_json",
    "http_post_json",
    "request_from_payload",
    "result_payload",
    "run_loadgen",
    "run_loadgen_async",
    "serve_forever",
]
