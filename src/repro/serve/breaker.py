"""Per-preset circuit breakers for the supervised serving path.

A worker-fatal failure (crash, watchdog kill, garbage reply) costs a
worker process: the supervisor pays a respawn and the client pays a
retry.  When one preset keeps killing workers — a pathological
configuration, a bug tripped only by that code path — letting every
request for it burn a worker in turn melts the whole pool.  The
breaker is the standard answer: after ``threshold`` *consecutive*
worker-fatal failures for a key, the circuit **opens** and requests
for that key are refused instantly with ``503 Retry-After`` instead
of being dispatched.  After ``cooldown`` seconds the circuit goes
**half-open**: exactly one probe request is let through; if it
succeeds the circuit closes, if it dies the circuit re-opens for
another cooldown.

State machine::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN --(cooldown elapsed, one probe admitted)--> HALF_OPEN
    HALF_OPEN --(probe succeeds)--> CLOSED
    HALF_OPEN --(probe fails)--> OPEN

Request-level errors (a 400 for bad source, a budget blow inside a
healthy worker) never count: the breaker watches *worker fatalities*,
not request outcomes.  Thread-safe; the supervisor calls it from the
admission path and from every dispatcher thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One key's breaker: consecutive-failure counting + probe logic."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.transitions = 0

    # ------------------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state:
            self.transitions += 1
            if self._on_transition is not None:
                self._on_transition(old, new_state)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> Tuple[bool, float]:
        """May a request for this key be dispatched right now?

        Returns ``(allowed, retry_after_seconds)``; ``retry_after`` is
        meaningful only when refused.  The call that finds an open
        circuit past its cooldown flips it half-open and is admitted
        as the probe; until that probe resolves, everyone else is
        refused.
        """
        with self._lock:
            if self._state == CLOSED:
                return True, 0.0
            if self._state == OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                if elapsed < self.cooldown:
                    return False, max(self.cooldown - elapsed, 0.0)
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return True, 0.0
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                return False, self.cooldown
            self._probe_in_flight = True
            return True, 0.0

    def release_probe(self) -> None:
        """Abort an admitted probe that was never dispatched.

        The supervisor calls this when admission fails *after*
        ``allow()`` (queue full, a sibling preset refused): the probe
        slot must be returned or a half-open circuit would wait on a
        resolution that is never coming.
        """
        with self._lock:
            self._probe_in_flight = False

    def record_success(self) -> None:
        """A dispatched request finished on a healthy worker."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A dispatched request cost a worker (crash/hang/garbage)."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == HALF_OPEN:
                # The probe died: straight back to open.
                self._opened_at = self._clock()
                self._transition(OPEN)
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": self.transitions,
            }


class BreakerBoard:
    """The supervisor's breakers, one per key (preset), created lazily."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def _get(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                callback = None
                if self._on_transition is not None:
                    outer = self._on_transition

                    def callback(old: str, new: str, _key: str = key) -> None:
                        outer(_key, old, new)

                breaker = CircuitBreaker(
                    threshold=self.threshold,
                    cooldown=self.cooldown,
                    clock=self._clock,
                    on_transition=callback,
                )
                self._breakers[key] = breaker
            return breaker

    def allow(self, key: str) -> Tuple[bool, float]:
        return self._get(key).allow()

    def record_success(self, key: str) -> None:
        self._get(key).record_success()

    def record_failure(self, key: str) -> None:
        self._get(key).record_failure()

    def state(self, key: str) -> str:
        return self._get(key).state

    def states(self) -> Dict[str, dict]:
        """JSON-ready per-key snapshots (for ``/healthz``)."""
        with self._lock:
            keys = list(self._breakers)
        return {key: self._breakers[key].snapshot() for key in sorted(keys)}
