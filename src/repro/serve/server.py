"""Allocation-as-a-service: the async HTTP/JSON front end.

A stdlib-only asyncio server.  In the default **supervised** mode the
request path runs through process-isolated workers::

    connection -> parse HTTP -> validate JSON
        -> Supervisor.submit (bulkhead queue, circuit breakers)
        -> worker subprocess (own AllocationEngine)
        -> JSON response

so a crash, hang or memory blowup inside engine work kills a worker
subprocess — never this server (see :mod:`repro.serve.supervisor`).
The pre-supervisor in-process path (a bounded :class:`asyncio.Queue`
feeding ``engine.submit_batch`` on a thread pool) survives behind
``ServerConfig(supervised=False)`` for embedding and tests.

Design points, each load-bearing:

* **Backpressure, not collapse.**  Admission queues are bounded; a
  full queue answers ``429`` with ``Retry-After`` instead of
  accepting work the server cannot finish.  Clients (the bundled
  loadgen does this) back off and retry.
* **Failure domains.**  Supervised engine work runs in subprocesses
  with hard wall-clock watchdogs and crash/hang recovery; a request
  that keeps killing workers trips its preset's circuit breaker and
  is refused fast (``503 Retry-After``) until a half-open probe
  proves the path healthy again.
* **Bulkheads.**  ``/allocate`` and ``/batch`` run on separate queues
  with separate worker allotments, so batch campaigns cannot starve
  interactive traffic.
* **Bounded input.**  Request bodies are size-capped (``413`` past
  ``max_body_bytes``); malformed or truncated JSON gets a structured
  ``400`` carrying ``schema_version``, never a connection reset.
* **Resilient by default.**  Requests run through the fallback ladder
  unless they explicitly opt out, and a job that exhausts its worker
  retries is answered by the supervisor's inline spill-everywhere
  fallback with full fault attribution — no request fails hard.

* **Telemetry end to end.**  Every request is minted a trace ID at
  ingress (or adopts one from ``X-Repro-Trace-Id``) that travels
  through the admission queue, the supervisor pipe and into worker
  subprocesses; the response echoes the ID plus a compact latency
  breakdown, the flight recorder retains the full cross-process span
  tree for the requests worth asking about later, and an SLO tracker
  scores availability and latency against configured targets.

Endpoints:

* ``POST /allocate`` — one allocation request.
* ``POST /batch`` — ``{"requests": [...]}``, answered as one body.
* ``GET /healthz`` — liveness, queues, workers, breakers, caches.
* ``GET /metrics`` — the process-global metrics registry plus the SLO
  scorecard; ``?format=prometheus`` for text exposition.
* ``GET /debug/requests`` — the flight recorder's index.
* ``GET /debug/requests/<trace_id>`` — one request's full span tree;
  ``?format=chrome`` for a Perfetto-loadable trace document.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Set, Tuple

from repro.engine import (
    AllocationEngine,
    AllocationRequest,
    AllocationResult,
    EngineError,
    RequestError,
)
from repro.machine.registers import RegisterConfig
from repro.obs.export import request_chrome_trace
from repro.obs.flight import FlightEntry, FlightRecorder
from repro.obs.logs import open_access_log
from repro.obs.metrics import METRICS
from repro.obs.promtext import render_prometheus, render_slo_prometheus
from repro.obs.slo import SLOTargets, SLOTracker
from repro.obs.telemetry import (
    TRACE_HEADER,
    SpanClock,
    breakdown as span_breakdown,
    dedupe_spans,
    mint_trace_id,
    reparent,
    spans_from_phases,
)
from repro.schema import stamp
from repro.serve.supervisor import (
    BATCH,
    INTERACTIVE,
    AdmissionFull,
    BreakerOpen,
    Supervisor,
    SupervisorConfig,
    SupervisorError,
    SupervisorStopped,
)

#: Default bound on accepted request bodies; allocation requests are
#: small, and an unbounded read is a trivial way to take the server
#: down.  Configurable per server via ``ServerConfig.max_body_bytes``.
MAX_BODY_BYTES = 1024 * 1024

#: Sentinel markers ``_read_request`` returns in place of a body when
#: the body could not be read in full.
_TOO_LARGE = b"\x00toolarge"
_TRUNCATED = b"\x00truncated"

class ServiceUnavailable(EngineError):
    """The server is shutting down; queued work is refused."""

    status = 503


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServerConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8377
    #: Bounded admission queue; a full queue answers 429.
    queue_size: int = 64
    #: Worker threads running the (CPU-bound) engine.
    workers: int = 2
    #: Jobs drained per dispatch round and handed to the engine as one
    #: fingerprint-grouped batch.
    batch_size: int = 8
    #: Default per-request allocation deadline (ms); None disables.
    default_deadline_ms: Optional[float] = 10_000.0
    #: Serve through the resilience ladder unless a request opts out.
    resilient: bool = True
    #: Content-addressed result cache bound (entries).
    cache_size: int = 256
    #: Retry-After seconds suggested on 429.
    retry_after: float = 1.0
    #: Run engine work in supervised worker subprocesses (the default);
    #: False keeps the old in-process thread-pool path.
    supervised: bool = True
    #: Largest accepted request body (bytes); beyond it the server
    #: answers 413 without reading the payload.
    max_body_bytes: int = MAX_BODY_BYTES
    #: Supervised mode: worker processes reserved for /batch.
    batch_workers: int = 1
    #: Supervised mode: default per-request hard wall clock (seconds)
    #: for requests that carry no deadline of their own.
    watchdog_seconds: float = 30.0
    #: Supervised mode: re-runs on a fresh worker after worker death.
    worker_retries: int = 2
    #: Supervised mode: graceful worker retirement after N jobs.
    recycle_after: int = 200
    #: Supervised mode: recycle a worker whose RSS crosses this (MiB).
    max_rss_mb: Optional[float] = 1024.0
    #: Supervised mode: consecutive worker-fatal failures per preset
    #: before its circuit opens.
    breaker_threshold: int = 5
    #: Supervised mode: seconds an open circuit waits before probing.
    breaker_cooldown: float = 30.0
    #: Supervised mode: parent-side wire-result cache entries; None
    #: follows ``cache_size``, 0 disables (the chaos campaign does, so
    #: every request genuinely reaches a worker).
    supervisor_cache_size: Optional[int] = None
    #: Request telemetry: trace IDs on every response, span trees in
    #: the flight recorder, SLO accounting.  Off restores the
    #: pre-telemetry wire shape and skips all per-request span work.
    telemetry: bool = True
    #: Flight recorder retention bounds (entries per view).
    flight_recent: int = 256
    flight_slowest: int = 32
    flight_degraded: int = 64
    flight_faulted: int = 64
    #: JSONL access-log path; None disables access logging.
    access_log: Optional[str] = None
    access_log_max_bytes: int = 5 * 1024 * 1024
    access_log_backups: int = 2
    #: SLO targets the tracker scores this server against.
    slo_availability: float = 0.999
    slo_p50_ms: float = 50.0
    slo_p99_ms: float = 500.0
    #: Count 429/breaker-503 self-protection against availability.
    slo_strict: bool = False
    #: Artifact store root (supervised mode): spawned and respawned
    #: workers warm-start from it, and engine work inside them reads
    #: and publishes program artifacts there.  None disables.
    store_dir: Optional[str] = None
    #: Workload names fresh workers pre-compile from the store.
    store_warm: Tuple[str, ...] = ()
    #: Single-flight coalescing of identical in-flight requests.
    coalesce: bool = True

    def slo_targets(self) -> SLOTargets:
        return SLOTargets(
            availability=self.slo_availability,
            p50_ms=self.slo_p50_ms,
            p99_ms=self.slo_p99_ms,
            strict=self.slo_strict,
        )

    def supervisor_config(self) -> SupervisorConfig:
        """The supervisor tunables this server config implies."""
        return SupervisorConfig(
            workers=self.workers,
            batch_workers=self.batch_workers,
            queue_size=self.queue_size,
            watchdog_seconds=self.watchdog_seconds,
            retries=self.worker_retries,
            recycle_after=self.recycle_after,
            max_rss_mb=self.max_rss_mb,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown=self.breaker_cooldown,
            result_cache_size=(
                self.cache_size
                if self.supervisor_cache_size is None
                else self.supervisor_cache_size
            ),
            store_dir=self.store_dir,
            warm_workloads=tuple(self.store_warm),
            coalesce=self.coalesce,
        )


def parse_config_value(value) -> RegisterConfig:
    """``(Ri, Rf, Ei, Ef)`` from ``"6,4,2,2"`` or ``[6, 4, 2, 2]``."""
    if isinstance(value, str):
        parts = [
            p for p in value.replace("(", "").replace(")", "").split(",") if p
        ]
    elif isinstance(value, (list, tuple)):
        parts = list(value)
    else:
        raise RequestError(f"config must be a string or list, got {value!r}")
    try:
        numbers = [int(p) for p in parts]
    except (TypeError, ValueError):
        raise RequestError(f"config components must be integers: {value!r}")
    if len(numbers) != 4:
        raise RequestError(f"config must have 4 components, got {value!r}")
    return RegisterConfig(*numbers)


_ALLOWED_KEYS = frozenset(
    {
        "source", "ir", "workload", "preset", "config", "info", "optimize",
        "resilient", "trace", "deadline_ms", "name",
    }
)


def request_from_payload(
    payload: dict, config: ServerConfig
) -> AllocationRequest:
    """Validate one JSON request object into an engine request."""
    if not isinstance(payload, dict):
        raise RequestError("request must be a JSON object")
    unknown = sorted(set(payload) - _ALLOWED_KEYS)
    if unknown:
        raise RequestError(f"unknown request field(s): {', '.join(unknown)}")
    deadline_ms = payload.get("deadline_ms", config.default_deadline_ms)
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
    ):
        raise RequestError(f"deadline_ms must be a positive number, got {deadline_ms!r}")
    for key in ("source", "ir", "workload"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            raise RequestError(f"{key} must be a string")
    request = AllocationRequest(
        source=payload.get("source"),
        ir=payload.get("ir"),
        workload=payload.get("workload"),
        preset=payload.get("preset", "improved"),
        config=(
            parse_config_value(payload["config"])
            if "config" in payload
            else RegisterConfig(6, 4, 2, 2)
        ),
        info=payload.get("info", "dynamic"),
        optimize=bool(payload.get("optimize", False)),
        resilient=bool(payload.get("resilient", config.resilient)),
        trace=bool(payload.get("trace", False)),
        deadline_seconds=(
            deadline_ms / 1000.0 if deadline_ms is not None else None
        ),
        name=str(payload.get("name", "request")),
    )
    request.program_spec()  # validates exactly-one-of early, pre-queue
    return request


def result_payload(result: AllocationResult) -> dict:
    """The JSON body for one successful allocation."""
    body = {
        "status": "ok",
        "cache": "hit" if result.cache_hit else "miss",
        "elapsed_ms": round(result.elapsed_seconds * 1000.0, 3),
        "fingerprint": result.fingerprint,
        "preset": result.preset,
        "report": result.report,
    }
    if result.trace_events:
        body["trace"] = [event.to_dict() for event in result.trace_events]
    return stamp(body)


def error_payload(error: BaseException) -> Tuple[int, dict]:
    """``(HTTP status, JSON body)`` for a failed allocation."""
    status = error.status if isinstance(error, EngineError) else 500
    return status, stamp(
        {
            "status": "error",
            "error_type": type(error).__name__,
            "error": str(error),
        }
    )


class _Job:
    """One queued unit of work: N requests, one response future."""

    __slots__ = ("requests", "future")

    def __init__(self, requests: Sequence[AllocationRequest], future):
        self.requests = list(requests)
        self.future = future


class AllocationServer:
    """The asyncio HTTP server over one shared engine."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.engine = AllocationEngine(
            cache_size=self.config.cache_size,
            resilient_default=False,  # per-request flag decides
        )
        self.supervisor: Optional[Supervisor] = (
            Supervisor(self.config.supervisor_config())
            if self.config.supervised
            else None
        )
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Set[asyncio.Task] = set()
        self.served = 0
        self.throttled = 0
        self.telemetry = self.config.telemetry
        self.flight = FlightRecorder(
            recent=self.config.flight_recent,
            slowest=self.config.flight_slowest,
            degraded=self.config.flight_degraded,
            faulted=self.config.flight_faulted,
        )
        self.slo = SLOTracker(self.config.slo_targets())
        self.access_log = open_access_log(
            self.config.access_log,
            max_bytes=self.config.access_log_max_bytes,
            backups=self.config.access_log_backups,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, start dispatchers; returns the bound (host, port)."""
        self._loop = asyncio.get_running_loop()
        if self.supervisor is not None:
            self.supervisor.start()
        else:
            self._queue = asyncio.Queue(maxsize=self.config.queue_size)
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serve",
            )
            self._dispatchers = [
                self._loop.create_task(self._dispatch_loop())
                for _ in range(self.config.workers)
            ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, tear down.

        Ordering is the point: first stop accepting, then fail queued
        work (clients get an *answered* 503, never a reset), then wait
        for every open connection handler to flush its response.  In
        supervised mode the supervisor's own ``stop`` kills whatever
        workers remain — no subprocess outlives this call.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.supervisor is not None:
            # Joins dispatcher threads; run off-loop so the loop stays
            # free to write the resulting 503s while it happens.
            assert self._loop is not None
            await self._loop.run_in_executor(None, self.supervisor.stop)
        if self._queue is not None:
            while not self._queue.empty():
                job = self._queue.get_nowait()
                if not job.future.done():
                    job.future.set_exception(
                        ServiceUnavailable("server shutting down")
                    )
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        pending = [
            task
            for task in self._connections
            if not task.done() and task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.wait(pending, timeout=5.0)

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # dispatch: bounded queue -> engine batches
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            jobs = [await self._queue.get()]
            # Opportunistically drain a batch: whatever is already
            # queued (up to batch_size requests) travels together so
            # the engine can group it by program.
            count = len(jobs[0].requests)
            while count < self.config.batch_size:
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                jobs.append(job)
                count += len(job.requests)
            if len(jobs) > 1:
                METRICS.inc("serve.batches")
            requests: List[AllocationRequest] = []
            spans: List[Tuple[_Job, int, int]] = []
            for job in jobs:
                spans.append((job, len(requests), len(job.requests)))
                requests.extend(job.requests)
            try:
                results = await self._loop.run_in_executor(
                    self._executor, self.engine.submit_batch, requests
                )
            except Exception as error:  # noqa: BLE001 - travels to client
                for job in jobs:
                    if not job.future.done():
                        job.future.set_exception(error)
                continue
            for job, start, length in spans:
                if not job.future.done():
                    job.future.set_result(results[start : start + length])

    async def _run_requests(
        self, requests: Sequence[AllocationRequest]
    ) -> List[object]:
        """Enqueue requests; raises ``asyncio.QueueFull`` when loaded."""
        assert self._queue is not None and self._loop is not None
        future = self._loop.create_future()
        self._queue.put_nowait(_Job(requests, future))
        return await future

    async def _run_supervised(
        self, requests: Sequence[AllocationRequest], path: str
    ) -> List[dict]:
        """Submit to the supervisor's bulkhead; returns wire outcomes."""
        assert self.supervisor is not None
        future = self.supervisor.submit(
            requests,
            bulkhead=BATCH if path == "/batch" else INTERACTIVE,
            retry_after=self.config.retry_after,
        )
        return await asyncio.wrap_future(future)

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            # Tracked so graceful shutdown can wait for the response
            # to flush instead of resetting the connection.
            self._connections.add(task)
        trace_id = None
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, target, body, req_headers = parsed
            ingress = None
            if self.telemetry:
                trace_id = req_headers.get(TRACE_HEADER) or mint_trace_id()
                clock = SpanClock(trace_id)
                ingress = (clock, clock.begin("ingress"))
            status, payload, headers = await self._route(
                method, target, body, trace_id
            )
            if trace_id is not None:
                if isinstance(payload, dict):
                    payload = self._finalize_telemetry(
                        trace_id, ingress, method, target, status, payload
                    )
                headers = tuple(headers) + (
                    ("X-Repro-Trace-Id", trace_id),
                )
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 - last-ditch 500
            try:
                status, payload = error_payload(error)
                headers: Sequence[Tuple[str, str]] = ()
                if trace_id is not None:
                    payload["trace_id"] = trace_id
                    headers = (("X-Repro-Trace-Id", trace_id),)
                self._write_response(writer, status, payload, headers)
                await writer.drain()
            except Exception:  # noqa: BLE001 - connection already gone
                pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        if length > self.config.max_body_bytes:
            return method, target, _TOO_LARGE, headers
        if length <= 0:
            return method, target, b"", headers
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            # The client promised more bytes than it sent; answer a
            # structured 400 rather than dropping the connection.
            return method, target, _TRUNCATED, headers
        return method, target, body, headers

    async def _route(
        self, method: str, target: str, body: bytes,
        trace_id: Optional[str] = None,
    ) -> Tuple[int, object, Sequence[Tuple[str, str]]]:
        METRICS.inc("serve.requests")
        path, _, query = target.partition("?")
        if body == _TOO_LARGE:
            METRICS.inc("serve.rejected_body")
            return (
                413,
                stamp(
                    {
                        "status": "error",
                        "error_type": "PayloadTooLarge",
                        "error": (
                            "body exceeds the "
                            f"{self.config.max_body_bytes}-byte limit"
                        ),
                        "max_body_bytes": self.config.max_body_bytes,
                    }
                ),
                (),
            )
        if body == _TRUNCATED:
            METRICS.inc("serve.rejected_body")
            return (
                400,
                stamp(
                    {
                        "status": "error",
                        "error_type": "TruncatedBody",
                        "error": "body shorter than its Content-Length",
                    }
                ),
                (),
            )
        wants_prometheus = "format=prometheus" in query.split("&")
        wants_chrome = "format=chrome" in query.split("&")
        if path == "/healthz" and method == "GET":
            return 200, self._health_payload(), ()
        if path == "/metrics" and method == "GET":
            if wants_prometheus:
                text = render_prometheus(METRICS) + render_slo_prometheus(
                    self.slo.report()
                )
                return 200, text, ()
            return (
                200,
                stamp({**METRICS.as_dict(), "slo": self.slo.report()}),
                (),
            )
        if path == "/debug/requests" and method == "GET":
            return 200, stamp(self.flight.index()), ()
        if path.startswith("/debug/requests/") and method == "GET":
            wanted = path.rsplit("/", 1)[1]
            entry = self.flight.lookup(wanted)
            if entry is None:
                return (
                    404,
                    stamp(
                        {
                            "status": "error",
                            "error_type": "UnknownTrace",
                            "error": (
                                f"trace {wanted!r} not in the flight "
                                "recorder (expired or never recorded)"
                            ),
                        }
                    ),
                    (),
                )
            if wants_chrome:
                return 200, request_chrome_trace(wanted, entry.spans), ()
            return 200, stamp(entry.full()), ()
        if path in ("/allocate", "/batch"):
            if method != "POST":
                return (
                    405,
                    stamp({"status": "error", "error": "POST required"}),
                    (("Allow", "POST"),),
                )
            return await self._handle_allocate(path, body, trace_id)
        return 404, stamp({"status": "error", "error": f"no route {path}"}), ()

    async def _handle_allocate(
        self, path: str, body: bytes, trace_id: Optional[str] = None
    ) -> Tuple[int, dict, Sequence[Tuple[str, str]]]:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            METRICS.inc("serve.rejected_body")
            return (
                400,
                stamp(
                    {
                        "status": "error",
                        "error_type": "BadJSON",
                        "error": f"bad JSON: {error}",
                    }
                ),
                (),
            )
        try:
            if path == "/batch":
                if (
                    not isinstance(payload, dict)
                    or not isinstance(payload.get("requests"), list)
                    or not payload["requests"]
                ):
                    raise RequestError(
                        'batch body must be {"requests": [...]} (non-empty)'
                    )
                requests = [
                    request_from_payload(item, self.config)
                    for item in payload["requests"]
                ]
            else:
                requests = [request_from_payload(payload, self.config)]
        except RequestError as error:
            status, body_out = error_payload(error)
            return status, body_out, ()

        if trace_id is not None:
            # The trace identity rides the request itself — frozen
            # dataclasses pickle whole over the supervisor pipe, so
            # this is the entire cross-process propagation mechanism.
            requests = [
                replace(request, trace_id=trace_id, telemetry=True)
                for request in requests
            ]

        if self.supervisor is not None:
            return await self._allocate_supervised(path, requests)

        try:
            results = await self._run_requests(requests)
        except asyncio.QueueFull:
            self.throttled += 1
            METRICS.inc("serve.throttled")
            retry_after = self.config.retry_after
            return (
                429,
                stamp(
                    {
                        "status": "throttled",
                        "error": "request queue full",
                        "retry_after": retry_after,
                    }
                ),
                (("Retry-After", f"{retry_after:g}"),),
            )
        except EngineError as error:
            status, body_out = error_payload(error)
            return status, body_out, ()

        self.served += len(results)
        bodies = []
        for outcome in results:
            if isinstance(outcome, AllocationResult):
                METRICS.inc("serve.ok")
                METRICS.observe(
                    "serve.latency_ms", outcome.elapsed_seconds * 1000.0
                )
                body_out = result_payload(outcome)
                if trace_id is not None:
                    clock = SpanClock(trace_id)
                    if outcome.cache_hit:
                        spans = [
                            clock.point(
                                "engine-cache",
                                start=time.time(),
                                duration=outcome.elapsed_seconds,
                                layer="engine",
                            ).to_dict()
                        ]
                    else:
                        spans = [
                            span.to_dict()
                            for span in spans_from_phases(
                                trace_id, None, outcome.phase_spans
                            )
                        ]
                    body_out["telemetry"] = {
                        "trace_id": trace_id,
                        "spans": spans,
                    }
                bodies.append(body_out)
            else:
                METRICS.inc("serve.errors")
                _, body_out = error_payload(outcome)
                bodies.append(body_out)
        if path == "/batch":
            return 200, stamp({"status": "ok", "results": bodies}), ()
        only = bodies[0]
        status = 200
        if only.get("status") == "error":
            outcome = results[0]
            status = (
                outcome.status
                if isinstance(outcome, EngineError)
                else 500
            )
        return status, only, ()

    async def _allocate_supervised(
        self, path: str, requests: Sequence[AllocationRequest]
    ) -> Tuple[int, dict, Sequence[Tuple[str, str]]]:
        """The supervised request path: bulkheads, breakers, workers."""
        try:
            outcomes = await self._run_supervised(requests, path)
        except AdmissionFull as error:
            self.throttled += 1
            METRICS.inc("serve.throttled")
            return (
                429,
                stamp(
                    {
                        "status": "throttled",
                        "error": str(error),
                        "retry_after": error.retry_after,
                    }
                ),
                (("Retry-After", f"{error.retry_after:g}"),),
            )
        except BreakerOpen as error:
            METRICS.inc("serve.breaker_refused")
            return (
                503,
                stamp(
                    {
                        "status": "unavailable",
                        "error_type": "BreakerOpen",
                        "error": str(error),
                        "retry_after": error.retry_after,
                    }
                ),
                (("Retry-After", f"{error.retry_after:g}"),),
            )
        except SupervisorStopped as error:
            METRICS.inc("serve.unavailable")
            return (
                503,
                stamp(
                    {
                        "status": "unavailable",
                        "error_type": "SupervisorStopped",
                        "error": str(error),
                    }
                ),
                (),
            )
        except SupervisorError as error:
            status, body_out = error_payload(error)
            return status, body_out, ()

        self.served += len(outcomes)
        bodies = []
        for outcome in outcomes:
            body_out = outcome["body"]
            if outcome["status_code"] == 200:
                METRICS.inc("serve.ok")
                elapsed = body_out.get("elapsed_ms")
                if isinstance(elapsed, (int, float)):
                    METRICS.observe("serve.latency_ms", elapsed)
            else:
                METRICS.inc("serve.errors")
            supervisor_note = body_out.get("supervisor")
            if isinstance(supervisor_note, dict) and supervisor_note.get(
                "degraded"
            ):
                METRICS.inc("serve.degraded")
            bodies.append(body_out)
        if path == "/batch":
            return 200, stamp({"status": "ok", "results": bodies}), ()
        return outcomes[0]["status_code"], bodies[0], ()

    # ------------------------------------------------------------------
    # telemetry assembly (runs once per connection, traced mode only)
    # ------------------------------------------------------------------

    def _finalize_telemetry(
        self,
        trace_id: str,
        ingress,
        method: str,
        target: str,
        status: int,
        payload: dict,
    ) -> dict:
        """Close the ingress span, merge spans, record everything.

        Collects the span dicts each response body carried up from the
        supervisor/worker layers, dedupes the job-level spans echoed on
        every batch outcome, hangs the roots under the ingress span,
        and then: echoes the compact breakdown on the JSON payload,
        files the full tree in the flight recorder, scores the SLO
        tracker, feeds the labeled latency histogram and writes the
        access-log line.  Only dict payloads arrive here and only when
        telemetry is on — untraced serving never calls this.
        """
        clock, token = ingress
        path = target.partition("?")[0]
        # Only allocation responses carry span payloads up from the
        # lower layers; other endpoints (healthz, debug) may have their
        # own semantic "telemetry" keys that must pass through intact.
        bodies: List[dict] = []
        if path in ("/allocate", "/batch"):
            bodies = [payload]
            if isinstance(payload.get("results"), list):
                bodies = [
                    body
                    for body in payload["results"]
                    if isinstance(body, dict)
                ]
        collected: List[dict] = []
        preset = None
        cache = None
        degraded = False
        rung = "primary"
        for body in bodies:
            telemetry = body.pop("telemetry", None)
            if isinstance(telemetry, dict):
                collected.extend(telemetry.get("spans", []))
            if preset is None and isinstance(body.get("preset"), str):
                preset = body["preset"]
            if cache is None and body.get("cache") in ("hit", "miss"):
                cache = body["cache"]
            note = body.get("supervisor")
            if isinstance(note, dict) and note.get("degraded"):
                degraded = True
                rung = str(note.get("rung", "degraded"))
        ingress_span = clock.end(
            token, method=method, path=path, status=status
        )
        spans = [ingress_span.to_dict()] + reparent(
            dedupe_spans(collected), ingress_span.span_id
        )
        latency_ms = ingress_span.duration * 1000.0
        outcome = str(payload.get("status", "ok"))
        # setdefault: debug payloads carry the *recorded* request's
        # trace_id, which must win over this connection's own identity
        # (the response header still carries the latter).
        payload.setdefault("trace_id", trace_id)
        if path in ("/allocate", "/batch"):
            payload["telemetry"] = {
                "breakdown": span_breakdown(spans),
                "spans": len(spans),
            }
            throttled = status == 429 or (
                status == 503 and outcome in ("throttled", "unavailable")
            )
            faulted = status >= 500 or outcome == "error"
            self.flight.record(
                FlightEntry(
                    trace_id=trace_id,
                    path=path,
                    status=status,
                    outcome=outcome,
                    duration_ms=latency_ms,
                    preset=preset,
                    degraded=degraded,
                    faulted=faulted,
                    spans=spans,
                )
            )
            self.slo.record(
                status, latency_ms, degraded=degraded, throttled=throttled
            )
            METRICS.observe_labeled(
                "serve.request_ms",
                latency_ms,
                {
                    "preset": preset or "none",
                    "outcome": outcome,
                    "rung": rung,
                    "cache": cache or "none",
                },
            )
        if self.access_log is not None:
            self.access_log.log(
                {
                    "trace_id": trace_id,
                    "method": method,
                    "path": path,
                    "status": status,
                    "outcome": outcome,
                    "duration_ms": round(latency_ms, 3),
                    "degraded": degraded,
                }
            )
        return payload

    def _health_payload(self) -> dict:
        if self.supervisor is not None:
            interactive = self.supervisor.bulkheads[INTERACTIVE]
            queue_depth = interactive.queue.qsize()
        else:
            queue_depth = self._queue.qsize() if self._queue is not None else 0
        return stamp(
            {
                "status": "ok",
                "queue_depth": queue_depth,
                "queue_capacity": self.config.queue_size,
                "served": self.served,
                "throttled": self.throttled,
                "resilient_default": self.config.resilient,
                "supervised": self.supervisor is not None,
                "supervisor": (
                    self.supervisor.health()
                    if self.supervisor is not None
                    else None
                ),
                "engine": self.engine.stats(),
                "telemetry": {
                    "enabled": self.telemetry,
                    "flight_recorded": self.flight.recorded,
                    "access_log": (
                        self.access_log.stats()
                        if self.access_log is not None
                        else None
                    ),
                },
            }
        )

    @staticmethod
    def _write_response(
        writer,
        status: int,
        payload,
        headers: Sequence[Tuple[str, str]],
    ) -> None:
        if isinstance(payload, str):
            # Prometheus text exposition (the one non-JSON payload).
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        head_lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head_lines.extend(f"{name}: {value}" for name, value in headers)
        writer.write(
            ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + body
        )


# ----------------------------------------------------------------------
# embedding helpers (CLI, tests, loadgen --spawn)
# ----------------------------------------------------------------------


def serve_forever(config: Optional[ServerConfig] = None) -> int:
    """Run the server on the current thread until interrupted.

    SIGINT and SIGTERM take the same exit: both route through
    :meth:`AllocationServer.stop`'s drain (stop accepting, answer
    queued work with 503, flush in-flight connections).  A service
    manager's polite ``kill`` must not be the one signal that drops
    accepted requests on the floor — ``systemd``, Docker and Kubernetes
    all deliver SIGTERM, never Ctrl-C.
    """
    server = AllocationServer(config)
    caught: List[int] = []

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()

        def _request_stop(signum: int) -> None:
            caught.append(signum)
            stop_requested.set()

        installed: List[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, _request_stop, signum)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                # No loop signal support (Windows, embedded loops):
                # SIGINT still arrives as KeyboardInterrupt below.
                pass
        host, port = await server.start()
        print(f"repro.serve listening on http://{host}:{port}", flush=True)
        assert server._server is not None
        serving = asyncio.ensure_future(server._server.serve_forever())
        waiter = asyncio.ensure_future(stop_requested.wait())
        try:
            await asyncio.wait(
                {serving, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (serving, waiter):
                task.cancel()
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    names = ", ".join(signal.Signals(signum).name for signum in caught)
    print(
        f"repro.serve: shutting down ({names})" if names
        else "repro.serve: shutting down",
        flush=True,
    )
    return 0


class ServerThread:
    """A server running on a background thread (tests, ``--spawn``).

    ::

        with ServerThread() as (host, port):
            ... fire requests ...
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig(port=0)
        self.server = AllocationServer(self.config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self.address: Optional[Tuple[str, int]] = None

    def __enter__(self) -> Tuple[str, int]:
        self.start()
        assert self.address is not None
        return self.address

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def _main() -> None:
                self.address = await self.server.start()
                self._started.set()

            loop.run_until_complete(_main())
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-thread", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start")
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
