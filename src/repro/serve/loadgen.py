"""Load generator and latency benchmark for :mod:`repro.serve`.

``repro loadgen`` fires N allocation requests at a running server
from C concurrent workers and reports latency percentiles and
throughput — the number the serving PR stands on.  Stdlib only: a
minimal asyncio HTTP/1.1 client over raw sockets, same dialect the
server speaks.

Backpressure is part of the protocol: a ``429`` answer is not a
failure, it is the server asking the client to slow down.  The
workers honour ``Retry-After`` with **full jitter** — each retry
sleeps a uniform random fraction of the advertised wait (bounded by
``max_backoff``), so a herd of throttled clients does not re-arrive
in lockstep.  The jitter RNG is seedable (``jitter_seed``) and total
retry sleep is accounted in the report.  A correctly-operating
overloaded server therefore finishes a run with *zero* failed
requests and a nonzero ``throttled_retries`` count.

``chaos=True`` is the survival variant for ``repro chaos-serve``:
``503`` answers carrying ``Retry-After`` (an open circuit breaker, a
mid-recovery supervisor) are retried like ``429``, and responses the
supervisor degraded to its inline fallback are counted — the
acceptance bar is zero *failed* client requests while workers are
being killed, not zero turbulence.

``--spawn`` boots an in-process :class:`ServerThread` first, so CI
and the benchmark harness need exactly one command.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.schema import stamp

#: Request mix: cycles through these programs so the run exercises
#: both the content cache (repeats hit) and real allocation work.
#: Mini-C bodies mirror the paper's workload shapes in miniature.
DEFAULT_PROGRAMS = [
    (
        "sum-loop",
        "int main() { int s; int i; s = 0; i = 0;"
        " while (i < 50) { s = s + i; i = i + 1; } return s; }",
    ),
    (
        "call-heavy",
        "int add(int a, int b) { return a + b; }"
        " int main() { int i; int s; s = 0; i = 0;"
        " while (i < 20) { s = add(s, i); i = i + 1; } return s; }",
    ),
    (
        "pressure",
        "int main() { int a; int b; int c; int d; int e; int f;"
        " a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;"
        " return a + b + c + d + e + f + a * b + c * d + e * f; }",
    ),
]


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 8377
    requests: int = 200
    concurrency: int = 8
    preset: str = "improved"
    #: Retries per request on 429 before counting it failed.
    max_retries: int = 50
    #: Ceiling on honoured Retry-After sleeps (seconds).
    max_backoff: float = 2.0
    deadline_ms: Optional[float] = None
    timeout: float = 60.0
    #: Full jitter on retry sleeps (uniform over [0, bounded wait]).
    jitter: bool = True
    #: Seed for the jitter RNG; None draws from the OS.
    jitter_seed: Optional[int] = None
    #: Chaos-survival mode: retry 503s that carry Retry-After (open
    #: breakers, supervisor recovery) instead of failing on them.
    chaos: bool = False
    #: Collect every final response's trace ID and, after the run,
    #: resolve each against the server's flight recorder
    #: (``GET /debug/requests/<id>``) — the CI telemetry gate.
    check_traces: bool = False
    #: Untimed warmup requests fired (and discarded) before the
    #: measured run, so reported percentiles describe steady state
    #: instead of mixing in cold-start compiles and first-touch cache
    #: misses.
    warmup: int = 0


@dataclass
class LoadgenReport:
    """Aggregated outcome of one loadgen run."""

    requests: int = 0
    #: Untimed warmup requests that preceded the measured run.
    warmup: int = 0
    ok: int = 0
    failed: int = 0
    throttled_retries: int = 0
    #: Chaos mode: retries taken on 503-with-Retry-After answers.
    breaker_retries: int = 0
    #: Successful responses the supervisor degraded to its fallback.
    degraded: int = 0
    cache_hits: int = 0
    #: Total seconds spent sleeping between retries (post-jitter).
    retry_sleep_seconds: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    errors: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: Final responses that carried a trace ID.
    traced: int = 0
    #: Server-side queue-wait / service-time per answered request, from
    #: the response telemetry breakdown — splits client-observed
    #: latency into "waiting for a worker" vs "doing the work".
    queue_wait_ms: List[float] = field(default_factory=list)
    service_time_ms: List[float] = field(default_factory=list)
    #: Trace IDs of responses the supervisor degraded (the chaos-serve
    #: campaign resolves each against the flight recorder).
    degraded_trace_ids: List[str] = field(default_factory=list)
    #: ``check_traces`` mode: every final trace ID, and how many of
    #: them the flight recorder resolved after the run.
    trace_ids: List[str] = field(default_factory=list)
    trace_checked: int = 0
    trace_resolved: int = 0

    def percentile(self, q: float) -> float:
        return _percentile(self.latencies_ms, q)

    def as_dict(self) -> dict:
        return stamp(
            {
                "requests": self.requests,
                "warmup": self.warmup,
                "ok": self.ok,
                "failed": self.failed,
                "throttled_retries": self.throttled_retries,
                "breaker_retries": self.breaker_retries,
                "degraded": self.degraded,
                "cache_hits": self.cache_hits,
                "retry_sleep_seconds": round(self.retry_sleep_seconds, 3),
                "elapsed_seconds": round(self.elapsed_seconds, 3),
                "requests_per_sec": round(
                    self.ok / self.elapsed_seconds, 2
                )
                if self.elapsed_seconds > 0
                else 0.0,
                "p50_ms": round(self.percentile(0.50), 3),
                "p90_ms": round(self.percentile(0.90), 3),
                "p99_ms": round(self.percentile(0.99), 3),
                "max_ms": round(max(self.latencies_ms), 3)
                if self.latencies_ms
                else 0.0,
                "errors": dict(sorted(self.errors.items())),
                "traced": self.traced,
                "queue_wait_ms": {
                    "p50": round(_percentile(self.queue_wait_ms, 0.50), 3),
                    "p90": round(_percentile(self.queue_wait_ms, 0.90), 3),
                    "p99": round(_percentile(self.queue_wait_ms, 0.99), 3),
                },
                "service_time_ms": {
                    "p50": round(_percentile(self.service_time_ms, 0.50), 3),
                    "p90": round(_percentile(self.service_time_ms, 0.90), 3),
                    "p99": round(_percentile(self.service_time_ms, 0.99), 3),
                },
                "trace_checked": self.trace_checked,
                "trace_resolved": self.trace_resolved,
                "degraded_trace_ids": list(self.degraded_trace_ids),
            }
        )


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def http_post_json(
    host: str, port: int, path: str, payload: dict, timeout: float = 60.0
) -> Tuple[int, Dict[str, str], dict]:
    """One HTTP POST over a fresh connection; returns (status, headers, body)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1]) if len(parts) >= 2 else 0
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = (
            await asyncio.wait_for(reader.readexactly(length), timeout)
            if length
            else b""
        )
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
        return status, headers, parsed
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - teardown only
            pass


async def http_get_json(
    host: str, port: int, path: str, timeout: float = 60.0
) -> Tuple[int, dict]:
    """One HTTP GET (healthz / metrics probes)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1]) if len(parts) >= 2 else 0
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = (
            await asyncio.wait_for(reader.readexactly(length), timeout)
            if length
            else b""
        )
        return status, json.loads(raw.decode("utf-8")) if raw else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - teardown only
            pass


def _retry_sleep(
    config: LoadgenConfig, rng: random.Random, headers: Dict[str, str]
) -> float:
    """The jittered wait before a retry: uniform over [0, bounded].

    Full jitter (not "advertised wait ± a bit"): every throttled
    client re-arrives at an independent random point inside the
    server's suggested window, so synchronized retry storms cannot
    form.  ``jitter=False`` keeps the old deterministic sleep for
    tests that assert exact timing.
    """
    bounded = min(
        float(headers.get("retry-after", "0.1") or "0.1"),
        config.max_backoff,
    )
    return rng.uniform(0.0, bounded) if config.jitter else bounded


async def _worker(
    config: LoadgenConfig,
    queue: "asyncio.Queue[dict]",
    report: LoadgenReport,
    rng: random.Random,
) -> None:
    while True:
        try:
            payload = queue.get_nowait()
        except asyncio.QueueEmpty:
            return
        started = time.perf_counter()
        attempts = 0
        while True:
            try:
                status, headers, body = await http_post_json(
                    config.host,
                    config.port,
                    "/allocate",
                    payload,
                    timeout=config.timeout,
                )
            except Exception as error:  # noqa: BLE001 - counted, not raised
                report.failed += 1
                name = type(error).__name__
                report.errors[name] = report.errors.get(name, 0) + 1
                break
            retryable_503 = (
                config.chaos and status == 503 and "retry-after" in headers
            )
            if status == 429 or retryable_503:
                if status == 429:
                    report.throttled_retries += 1
                else:
                    report.breaker_retries += 1
                attempts += 1
                if attempts > config.max_retries:
                    report.failed += 1
                    report.errors["throttled_out"] = (
                        report.errors.get("throttled_out", 0) + 1
                    )
                    break
                sleep = _retry_sleep(config, rng, headers)
                report.retry_sleep_seconds += sleep
                await asyncio.sleep(sleep)
                continue
            trace_id = (
                body.get("trace_id") if isinstance(body, dict) else None
            )
            if isinstance(trace_id, str) and trace_id:
                report.traced += 1
                if config.check_traces:
                    report.trace_ids.append(trace_id)
            if status == 200 and body.get("status") == "ok":
                report.ok += 1
                report.latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0
                )
                if body.get("cache") == "hit":
                    report.cache_hits += 1
                telemetry = body.get("telemetry")
                if isinstance(telemetry, dict):
                    server_side = telemetry.get("breakdown", {})
                    if isinstance(server_side, dict):
                        report.queue_wait_ms.append(
                            float(server_side.get("queue_ms", 0.0))
                        )
                        report.service_time_ms.append(
                            float(server_side.get("service_ms", 0.0))
                        )
                supervisor_note = body.get("supervisor")
                if isinstance(supervisor_note, dict) and supervisor_note.get(
                    "degraded"
                ):
                    report.degraded += 1
                    if isinstance(trace_id, str) and trace_id:
                        report.degraded_trace_ids.append(trace_id)
            else:
                report.failed += 1
                key = f"http_{status}"
                report.errors[key] = report.errors.get(key, 0) + 1
            break


def _fill_queue(config: LoadgenConfig, count: int) -> "asyncio.Queue[dict]":
    """A request queue cycling the default program mix."""
    queue: "asyncio.Queue[dict]" = asyncio.Queue()
    for index in range(count):
        name, source = DEFAULT_PROGRAMS[index % len(DEFAULT_PROGRAMS)]
        payload = {
            "source": source,
            "preset": config.preset,
            "name": name,
        }
        if config.deadline_ms is not None:
            payload["deadline_ms"] = config.deadline_ms
        queue.put_nowait(payload)
    return queue


async def run_loadgen_async(config: LoadgenConfig) -> LoadgenReport:
    rng = random.Random(config.jitter_seed)
    if config.warmup > 0:
        # Untimed warmup: same program mix, same concurrency, results
        # discarded.  Compiles, profiling runs and cache fills all land
        # before the clock starts, so the measured run is steady state.
        warm_report = LoadgenReport(requests=config.warmup)
        warm_queue = _fill_queue(config, config.warmup)
        await asyncio.gather(
            *(
                asyncio.ensure_future(
                    _worker(config, warm_queue, warm_report, rng)
                )
                for _ in range(config.concurrency)
            )
        )
    report = LoadgenReport(requests=config.requests, warmup=config.warmup)
    queue = _fill_queue(config, config.requests)
    started = time.perf_counter()
    workers = [
        asyncio.ensure_future(_worker(config, queue, report, rng))
        for _ in range(config.concurrency)
    ]
    await asyncio.gather(*workers)
    report.elapsed_seconds = time.perf_counter() - started
    if config.check_traces:
        await _resolve_traces(config, report)
    return report


async def _resolve_traces(
    config: LoadgenConfig, report: LoadgenReport
) -> None:
    """Resolve every collected trace ID against the flight recorder.

    Runs while the server is still up (before ``--spawn`` tears it
    down); a resolved trace is one ``GET /debug/requests/<id>``
    answers 200 for, meaning the full span tree survived into the
    recorder.  The CI telemetry gate asserts checked == resolved.
    """
    for trace_id in report.trace_ids:
        report.trace_checked += 1
        try:
            status, _ = await http_get_json(
                config.host,
                config.port,
                f"/debug/requests/{trace_id}",
                timeout=config.timeout,
            )
        except Exception:  # noqa: BLE001 - counted as unresolved
            continue
        if status == 200:
            report.trace_resolved += 1


def run_loadgen(
    config: Optional[LoadgenConfig] = None,
    spawn: bool = False,
    server_config=None,
) -> LoadgenReport:
    """Run one loadgen campaign; optionally spawn the server in-process."""
    config = config or LoadgenConfig()
    if not spawn:
        return asyncio.run(run_loadgen_async(config))
    from repro.serve.server import ServerConfig, ServerThread

    server_config = server_config or ServerConfig(port=0)
    with ServerThread(server_config) as (host, port):
        config.host, config.port = host, port
        return asyncio.run(run_loadgen_async(config))
