"""Load generator and latency benchmark for :mod:`repro.serve`.

``repro loadgen`` fires N allocation requests at a running server
from C concurrent workers and reports latency percentiles and
throughput — the number the serving PR stands on.  Stdlib only: a
minimal asyncio HTTP/1.1 client over raw sockets, same dialect the
server speaks.

Backpressure is part of the protocol: a ``429`` answer is not a
failure, it is the server asking the client to slow down.  The
workers honour ``Retry-After`` and retry, so a correctly-operating
overloaded server finishes a run with *zero* failed requests and a
nonzero ``throttled_retries`` count.

``--spawn`` boots an in-process :class:`ServerThread` first, so CI
and the benchmark harness need exactly one command.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.schema import stamp

#: Request mix: cycles through these programs so the run exercises
#: both the content cache (repeats hit) and real allocation work.
#: Mini-C bodies mirror the paper's workload shapes in miniature.
DEFAULT_PROGRAMS = [
    (
        "sum-loop",
        "int main() { int s; int i; s = 0; i = 0;"
        " while (i < 50) { s = s + i; i = i + 1; } return s; }",
    ),
    (
        "call-heavy",
        "int add(int a, int b) { return a + b; }"
        " int main() { int i; int s; s = 0; i = 0;"
        " while (i < 20) { s = add(s, i); i = i + 1; } return s; }",
    ),
    (
        "pressure",
        "int main() { int a; int b; int c; int d; int e; int f;"
        " a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;"
        " return a + b + c + d + e + f + a * b + c * d + e * f; }",
    ),
]


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 8377
    requests: int = 200
    concurrency: int = 8
    preset: str = "improved"
    #: Retries per request on 429 before counting it failed.
    max_retries: int = 50
    #: Ceiling on honoured Retry-After sleeps (seconds).
    max_backoff: float = 2.0
    deadline_ms: Optional[float] = None
    timeout: float = 60.0


@dataclass
class LoadgenReport:
    """Aggregated outcome of one loadgen run."""

    requests: int = 0
    ok: int = 0
    failed: int = 0
    throttled_retries: int = 0
    cache_hits: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    errors: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> dict:
        return stamp(
            {
                "requests": self.requests,
                "ok": self.ok,
                "failed": self.failed,
                "throttled_retries": self.throttled_retries,
                "cache_hits": self.cache_hits,
                "elapsed_seconds": round(self.elapsed_seconds, 3),
                "requests_per_sec": round(
                    self.ok / self.elapsed_seconds, 2
                )
                if self.elapsed_seconds > 0
                else 0.0,
                "p50_ms": round(self.percentile(0.50), 3),
                "p90_ms": round(self.percentile(0.90), 3),
                "p99_ms": round(self.percentile(0.99), 3),
                "max_ms": round(max(self.latencies_ms), 3)
                if self.latencies_ms
                else 0.0,
                "errors": dict(sorted(self.errors.items())),
            }
        )


async def http_post_json(
    host: str, port: int, path: str, payload: dict, timeout: float = 60.0
) -> Tuple[int, Dict[str, str], dict]:
    """One HTTP POST over a fresh connection; returns (status, headers, body)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1]) if len(parts) >= 2 else 0
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = (
            await asyncio.wait_for(reader.readexactly(length), timeout)
            if length
            else b""
        )
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
        return status, headers, parsed
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - teardown only
            pass


async def http_get_json(
    host: str, port: int, path: str, timeout: float = 60.0
) -> Tuple[int, dict]:
    """One HTTP GET (healthz / metrics probes)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1]) if len(parts) >= 2 else 0
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = (
            await asyncio.wait_for(reader.readexactly(length), timeout)
            if length
            else b""
        )
        return status, json.loads(raw.decode("utf-8")) if raw else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - teardown only
            pass


async def _worker(
    config: LoadgenConfig,
    queue: "asyncio.Queue[dict]",
    report: LoadgenReport,
) -> None:
    while True:
        try:
            payload = queue.get_nowait()
        except asyncio.QueueEmpty:
            return
        started = time.perf_counter()
        attempts = 0
        while True:
            try:
                status, headers, body = await http_post_json(
                    config.host,
                    config.port,
                    "/allocate",
                    payload,
                    timeout=config.timeout,
                )
            except Exception as error:  # noqa: BLE001 - counted, not raised
                report.failed += 1
                name = type(error).__name__
                report.errors[name] = report.errors.get(name, 0) + 1
                break
            if status == 429:
                report.throttled_retries += 1
                attempts += 1
                if attempts > config.max_retries:
                    report.failed += 1
                    report.errors["throttled_out"] = (
                        report.errors.get("throttled_out", 0) + 1
                    )
                    break
                retry_after = min(
                    float(headers.get("retry-after", "0.1") or "0.1"),
                    config.max_backoff,
                )
                await asyncio.sleep(retry_after)
                continue
            if status == 200 and body.get("status") == "ok":
                report.ok += 1
                report.latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0
                )
                if body.get("cache") == "hit":
                    report.cache_hits += 1
            else:
                report.failed += 1
                key = f"http_{status}"
                report.errors[key] = report.errors.get(key, 0) + 1
            break


async def run_loadgen_async(config: LoadgenConfig) -> LoadgenReport:
    report = LoadgenReport(requests=config.requests)
    queue: "asyncio.Queue[dict]" = asyncio.Queue()
    for index in range(config.requests):
        name, source = DEFAULT_PROGRAMS[index % len(DEFAULT_PROGRAMS)]
        payload = {
            "source": source,
            "preset": config.preset,
            "name": name,
        }
        if config.deadline_ms is not None:
            payload["deadline_ms"] = config.deadline_ms
        queue.put_nowait(payload)
    started = time.perf_counter()
    workers = [
        asyncio.ensure_future(_worker(config, queue, report))
        for _ in range(config.concurrency)
    ]
    await asyncio.gather(*workers)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def run_loadgen(
    config: Optional[LoadgenConfig] = None,
    spawn: bool = False,
    server_config=None,
) -> LoadgenReport:
    """Run one loadgen campaign; optionally spawn the server in-process."""
    config = config or LoadgenConfig()
    if not spawn:
        return asyncio.run(run_loadgen_async(config))
    from repro.serve.server import ServerConfig, ServerThread

    server_config = server_config or ServerConfig(port=0)
    with ServerThread(server_config) as (host, port):
        config.host, config.port = host, port
        return asyncio.run(run_loadgen_async(config))
