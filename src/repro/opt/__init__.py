"""Pre-allocation IR optimizations (cmcc is an optimizing compiler).

``optimize_program`` runs copy propagation, constant folding,
dead-code elimination and CFG simplification to a fixed point.
"""

from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.pipeline import MAX_ROUNDS, optimize_function, optimize_program
from repro.opt.simplify_cfg import simplify_cfg

__all__ = [
    "MAX_ROUNDS",
    "eliminate_dead_code",
    "fold_constants",
    "optimize_function",
    "optimize_program",
    "propagate_copies",
    "simplify_cfg",
]
