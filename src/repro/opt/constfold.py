"""Constant folding and algebraic simplification.

Folds operations whose operands are known constants and simplifies the
algebraic identities that matter for lowered mini-C (``x + 0``,
``x * 1``, ``x * 0``), replacing the instruction with a ``Const`` or a
``Copy``.  Constants are tracked per block by forward propagation
(block-local only: a value is "known" when its defining ``Const`` is
in the same block and not killed), which keeps the pass linear and
safe without global SSA.

Division and modulo by a constant zero are left untouched: the
program's runtime error behaviour must be preserved.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Const,
    Copy,
    Instr,
    UnaryOp,
    UnaryOpcode,
)
from repro.ir.types import saturating_f2i
from repro.ir.values import VReg
from repro.profile.interp import _c_div, _c_mod


def fold_constants(func: Function) -> int:
    """Fold constant expressions in ``func``; returns changes made."""
    changes = 0
    for block in func.blocks:
        known: Dict[VReg, float] = {}
        rewritten = []
        for instr in block.instrs:
            replacement = _fold_instr(instr, known)
            if replacement is not None:
                instr = replacement
                changes += 1
            for reg in instr.defs():
                known.pop(reg, None)
            if isinstance(instr, Const):
                known[instr.dst] = instr.value
            rewritten.append(instr)
        block.instrs = rewritten
    return changes


def _fold_instr(instr: Instr, known: Dict[VReg, float]) -> Optional[Instr]:
    if isinstance(instr, BinOp):
        lhs = known.get(instr.lhs)
        rhs = known.get(instr.rhs)
        if lhs is not None and rhs is not None:
            value = _eval_binop(instr, lhs, rhs)
            if value is not None:
                return Const(instr.dst, value)
        return _algebraic(instr, lhs, rhs)
    if isinstance(instr, UnaryOp):
        value = known.get(instr.src)
        if value is None:
            return None
        if instr.op is UnaryOpcode.NEG:
            return Const(instr.dst, -value)
        if instr.op is UnaryOpcode.NOT:
            return Const(instr.dst, int(value == 0))
        if instr.op is UnaryOpcode.I2F:
            return Const(instr.dst, float(value))
        if instr.op is UnaryOpcode.F2I:
            return Const(instr.dst, saturating_f2i(value))
    return None


def _eval_binop(instr: BinOp, lhs, rhs) -> Optional[float]:
    op = instr.op
    if op is BinaryOpcode.ADD:
        return lhs + rhs
    if op is BinaryOpcode.SUB:
        return lhs - rhs
    if op is BinaryOpcode.MUL:
        return lhs * rhs
    if op is BinaryOpcode.DIV:
        if rhs == 0:
            return None  # preserve the runtime error
        if instr.dst.vtype.is_float:
            return lhs / rhs
        return _c_div(int(lhs), int(rhs))
    if op is BinaryOpcode.MOD:
        if rhs == 0:
            return None
        return _c_mod(int(lhs), int(rhs))
    if op is BinaryOpcode.AND:
        return int(lhs) & int(rhs)
    if op is BinaryOpcode.OR:
        return int(lhs) | int(rhs)
    if op is BinaryOpcode.EQ:
        return int(lhs == rhs)
    if op is BinaryOpcode.NE:
        return int(lhs != rhs)
    if op is BinaryOpcode.LT:
        return int(lhs < rhs)
    if op is BinaryOpcode.LE:
        return int(lhs <= rhs)
    if op is BinaryOpcode.GT:
        return int(lhs > rhs)
    if op is BinaryOpcode.GE:
        return int(lhs >= rhs)
    return None  # pragma: no cover - exhaustive


def _algebraic(instr: BinOp, lhs, rhs) -> Optional[Instr]:
    """Identities with one constant operand.

    Only exact identities are applied; float ``x * 0`` is *not* folded
    (it would change the sign of zero / NaN propagation).
    """
    is_int = not instr.dst.vtype.is_float
    op = instr.op
    if op is BinaryOpcode.ADD:
        if rhs == 0 and rhs is not None and is_int:
            return Copy(instr.dst, instr.lhs)
        if lhs == 0 and lhs is not None and is_int:
            return Copy(instr.dst, instr.rhs)
    elif op is BinaryOpcode.SUB:
        if rhs == 0 and rhs is not None and is_int:
            return Copy(instr.dst, instr.lhs)
    elif op is BinaryOpcode.MUL and is_int:
        if rhs == 1:
            return Copy(instr.dst, instr.lhs)
        if lhs == 1:
            return Copy(instr.dst, instr.rhs)
        if rhs == 0 or lhs == 0:
            return Const(instr.dst, 0)
    elif op is BinaryOpcode.DIV and is_int and rhs == 1:
        return Copy(instr.dst, instr.lhs)
    return None
