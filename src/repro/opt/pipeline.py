"""The optimization pipeline.

Runs the scalar and control-flow clean-ups to a fixed point, in the
order that exposes the most work to each pass: copy propagation feeds
constant folding, folding feeds dead-code elimination and constant
branches, and CFG simplification re-exposes block-local opportunities
by merging blocks.

The pipeline is deliberately *not* applied to the benchmark workloads
by default: the paper's numbers are a property of the allocator, and
EXPERIMENTS.md documents them on the unoptimized lowering.  The
``ablation_optimized_ir`` experiment measures how pre-allocation
optimization shifts the allocators' relative standings.
"""

from __future__ import annotations

from repro.ir.function import Function, Program
from repro.ir.verify import verify_function
from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.simplify_cfg import simplify_cfg

#: Safety bound; each round must make progress to continue.
MAX_ROUNDS = 25


def optimize_function(func: Function, verify: bool = False) -> int:
    """Optimize ``func`` in place to a fixed point; returns changes."""
    total = 0
    for _ in range(MAX_ROUNDS):
        changes = 0
        changes += propagate_copies(func)
        changes += fold_constants(func)
        changes += eliminate_dead_code(func)
        changes += simplify_cfg(func)
        total += changes
        if verify:
            verify_function(func)
        if changes == 0:
            break
    return total


def optimize_program(program: Program, verify: bool = False) -> int:
    """Optimize every function of ``program``; returns total changes."""
    return sum(
        optimize_function(func, verify=verify)
        for func in program.functions.values()
    )
