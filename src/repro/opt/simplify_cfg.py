"""Control-flow simplification.

Three clean-ups that the lowering's systematic block structure leaves
on the table:

* **Constant branches**: ``br`` on a register whose defining
  instruction is a block-local ``Const`` becomes a ``jmp``.
* **Jump threading**: a branch/jump to a block that contains only a
  ``jmp`` is retargeted past it.
* **Unreachable blocks** are deleted, and **straight-line pairs**
  (a block whose single successor has it as the single predecessor)
  are merged.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cfg import remove_unreachable
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Const, Jump


def simplify_cfg(func: Function) -> int:
    """Apply all CFG clean-ups to a fixed point; returns changes."""
    total = 0
    while True:
        changes = 0
        changes += _fold_constant_branches(func)
        changes += _thread_jumps(func)
        changes += remove_unreachable(func)
        changes += _merge_straightline(func)
        total += changes
        if changes == 0:
            return total


def _fold_constant_branches(func: Function) -> int:
    changes = 0
    for block in func.blocks:
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        value = None
        for instr in block.instrs:
            if instr is term:
                break
            if term.cond in instr.defs():
                value = instr.value if isinstance(instr, Const) else None
        if value is not None:
            target = term.then_block if value != 0 else term.else_block
            block.instrs[-1] = Jump(target)
            changes += 1
    return changes


def _jump_only_target(block: BasicBlock) -> BasicBlock:
    """Follow chains of jump-only blocks (with cycle protection)."""
    seen = {block}
    while len(block.instrs) == 1 and isinstance(block.instrs[0], Jump):
        target = block.instrs[0].target
        if target in seen:
            break
        seen.add(target)
        block = target
    return block


def _thread_jumps(func: Function) -> int:
    changes = 0
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            target = _jump_only_target(term.target)
            if target is not term.target:
                term.target = target
                changes += 1
        elif isinstance(term, Branch):
            then_t = _jump_only_target(term.then_block)
            else_t = _jump_only_target(term.else_block)
            if then_t is not term.then_block or else_t is not term.else_block:
                term.then_block = then_t
                term.else_block = else_t
                changes += 1
            if term.then_block is term.else_block:
                block.instrs[-1] = Jump(term.then_block)
                changes += 1
    return changes


def _merge_straightline(func: Function) -> int:
    changes = 0
    preds: Dict[BasicBlock, list] = func.predecessors()
    alive = set(func.blocks)
    for block in list(func.blocks):
        if block not in alive:
            continue  # already merged into a predecessor
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        succ = term.target
        if succ is block or succ is func.entry:
            continue
        if len(preds[succ]) != 1:
            continue
        # Merge succ into block (the terminator instruction object may
        # be shared with nothing: it is dropped here).
        block.instrs = block.instrs[:-1] + succ.instrs
        func.blocks.remove(succ)
        alive.discard(succ)
        preds = func.predecessors()
        changes += 1
    return changes
