"""Dead code elimination.

Removes side-effect-free instructions whose results are never used,
iterating backwards over liveness until a fixed point.  Stores, calls
(the callee may touch globals), and terminators are never removed.
"""

from __future__ import annotations

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Const,
    Copy,
    Instr,
    Load,
    UnaryOp,
)


def _removable(instr: Instr) -> bool:
    # Loads are side-effect-free in this IR (no volatile, and the
    # bounds error of a dead load cannot be observed by a program
    # whose live executions don't fault — but to preserve error
    # behaviour exactly we keep loads whose index might fault.  Since
    # the interpreter treats out-of-bounds as a crash, dropping a
    # crashing dead load would change behaviour; we are conservative
    # and keep all loads.
    return isinstance(instr, (BinOp, UnaryOp, Const, Copy))


def eliminate_dead_code(func: Function) -> int:
    """Delete dead instructions from ``func``; returns removals."""
    removed_total = 0
    while True:
        liveness = compute_liveness(func)
        removed = 0
        for block in func.blocks:
            keep = []
            doomed = []
            for instr, live_after in liveness.live_across(block):
                defs = instr.defs()
                if (
                    defs
                    and _removable(instr)
                    and not any(reg in live_after for reg in defs)
                ):
                    doomed.append(instr)
            doomed_set = set(map(id, doomed))
            if doomed_set:
                keep = [i for i in block.instrs if id(i) not in doomed_set]
                removed += len(block.instrs) - len(keep)
                block.instrs = keep
        removed_total += removed
        if removed == 0:
            return removed_total
