"""Block-local copy propagation.

Within a block, a use of ``b`` after ``b = copy a`` is rewritten to
use ``a`` directly, as long as neither ``a`` nor ``b`` has been
redefined in between.  The copy itself becomes dead and is left for
dead-code elimination (or the register allocator's coalescer) to
remove.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Copy
from repro.ir.values import VReg


def propagate_copies(func: Function) -> int:
    """Rewrite uses through block-local copies; returns rewrites made."""
    changes = 0
    for block in func.blocks:
        # current source for each copied register
        source: Dict[VReg, VReg] = {}
        for instr in block.instrs:
            mapping = {}
            for used in instr.uses():
                replacement = source.get(used)
                if replacement is not None and replacement is not used:
                    mapping[used] = replacement
            if mapping:
                instr.replace_uses(mapping)
                changes += len(mapping)
            defined = instr.defs()
            for reg in defined:
                # A redefinition kills both directions of any mapping
                # involving the register.
                source.pop(reg, None)
                for copied, origin in list(source.items()):
                    if origin is reg:
                        del source[copied]
            if isinstance(instr, Copy) and instr.dst is not instr.src:
                # Record after kills: dst now holds src's value.
                chained = source.get(instr.src, instr.src)
                source[instr.dst] = chained
    return changes
