"""The persistent, content-addressed artifact store.

One directory, shared by every process that allocates the same
programs: grid workers forked by ``run_grid``, supervised serving
workers across respawns and recycles, and plain CLI invocations
running back to back.  Artifacts are JSON envelopes written under::

    <root>/v<ARTIFACT_SCHEMA_VERSION>/<fp[:2]>/<fingerprint>.<kind>.json

where ``fingerprint`` is the SHA-256 of the program's canonical IR
printing (:func:`repro.ir.format_program`) — the same content address
the engine's result cache keys on — and the version segment makes a
schema bump a whole-directory invalidation, never a parse-and-pray.

Three properties are load-bearing:

* **Atomic publication.**  Writers serialize to a ``tmp-<pid>-<uuid>``
  sibling and ``os.replace`` it into place.  Two processes racing to
  write the same key both succeed; readers see either the old bytes,
  the new bytes, or nothing — never a torn file.
* **Corruption degrades to a miss.**  Every read validates the
  envelope (version, kind, fingerprint, payload checksum) inside one
  ``try``.  Truncated, garbage or half-written files count a
  ``store.corrupt`` metric and return None; no artifact-store failure
  is ever allowed to fail an allocation.
* **Observable.**  Every lookup and write lands in the global
  :data:`~repro.obs.metrics.METRICS` registry (``store.hit`` /
  ``store.miss`` / ``store.write`` / ``store.corrupt``), and
  :meth:`ArtifactStore.stats` reports on-disk entry counts and bytes
  for ``repro cache stats``.

Hot keys are additionally held in a small in-process LRU
(:class:`~repro.engine.cache.ContentCache`), so a serving worker
answering the same program repeatedly pays the disk read once.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.schema import SCHEMA_VERSION

#: Version of the *artifact* serialization (what the payloads contain
#: and how they rehydrate).  Bump it whenever a stored analysis result
#: would rehydrate incorrectly under the current code — old entries
#: then live under a dead ``v<N>/`` directory and simply stop hitting.
ARTIFACT_SCHEMA_VERSION = 1

#: Environment variable naming the store root.  Exported by
#: :func:`configure_store` so forked or spawned children (grid pool
#: workers, supervised serving workers, subprocess benchmarks) inherit
#: the configuration without any plumbing of their own.
ENV_VAR = "REPRO_STORE_DIR"


def _checksum(payload: dict) -> str:
    """Content hash of a payload, independent of envelope or file."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactStore:
    """One on-disk artifact directory plus its in-process LRU."""

    def __init__(self, root, lru_size: int = 64) -> None:
        self.root = Path(root)
        self._version_dir = self.root / f"v{ARTIFACT_SCHEMA_VERSION}"
        from repro.engine.cache import ContentCache

        self._lru = ContentCache(max(1, lru_size), metric_prefix="store.lru")
        self._io_lock = threading.Lock()
        # Process-local traffic counters (the METRICS registry carries
        # the same numbers globally; these back ``stats()``).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # lookup / publish
    # ------------------------------------------------------------------

    def path_for(self, fingerprint: str, kind: str) -> Path:
        return (
            self._version_dir / fingerprint[:2] / f"{fingerprint}.{kind}.json"
        )

    def get(self, fingerprint: str, kind: str) -> Optional[dict]:
        """The stored payload for ``(fingerprint, kind)``, or None.

        Validates the whole envelope; any failure — missing file,
        truncated JSON, wrong version, checksum mismatch — is a miss.
        Callers must treat the returned payload as immutable: hits can
        come from the shared in-process LRU.
        """
        key = (fingerprint, kind)
        cached = self._lru.get(key)
        if cached is not None:
            self.hits += 1
            METRICS.inc("store.hit")
            return cached
        path = self.path_for(fingerprint, kind)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            METRICS.inc("store.miss")
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            if envelope["artifact_schema"] != ARTIFACT_SCHEMA_VERSION:
                raise ValueError("artifact schema mismatch")
            if envelope["kind"] != kind:
                raise ValueError("artifact kind mismatch")
            if envelope["fingerprint"] != fingerprint:
                raise ValueError("artifact fingerprint mismatch")
            payload = envelope["payload"]
            if not isinstance(payload, dict):
                raise ValueError("artifact payload is not an object")
            if envelope["checksum"] != _checksum(payload):
                raise ValueError("artifact checksum mismatch")
        except Exception:  # noqa: BLE001 - corruption is a miss, never a crash
            self.misses += 1
            self.corrupt += 1
            METRICS.inc("store.miss")
            METRICS.inc("store.corrupt")
            return None
        self.hits += 1
        METRICS.inc("store.hit")
        self._lru.put(key, payload)
        # Touch mtime on a disk hit so gc's recency ordering works on
        # noatime/relatime mounts, where st_atime never (or rarely)
        # advances on reads.  Best-effort: a read-only store is still
        # a valid cache, just one whose recency signal stays frozen.
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def put(self, fingerprint: str, kind: str, payload: dict) -> bool:
        """Publish a payload under ``(fingerprint, kind)``, atomically.

        Serializes to a process-unique temp file and renames it into
        place, so concurrent writers of the same key all succeed and
        readers never observe a torn artifact.  Returns False (after
        counting nothing but the attempt) when the filesystem refuses;
        a store that cannot write is merely cold, not broken.
        """
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        path = self.path_for(fingerprint, kind)
        tmp = path.with_name(f"tmp-{os.getpid()}-{uuid.uuid4().hex}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(envelope, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.writes += 1
        METRICS.inc("store.write")
        self._lru.put((fingerprint, kind), payload)
        return True

    # ------------------------------------------------------------------
    # maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------

    def _artifact_files(self) -> List[Path]:
        """Every artifact file under the root, all versions included."""
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.glob("v*/*/*.json")
            if not path.name.startswith("tmp-")
        )

    def stats(self) -> Dict[str, Any]:
        """JSON-ready store health: disk contents plus this process's
        traffic counters (hit rates are per-process; the directory is
        shared, the counters are not)."""
        entries = 0
        total_bytes = 0
        by_kind: Dict[str, int] = {}
        stale = 0
        current_prefix = f"v{ARTIFACT_SCHEMA_VERSION}"
        for path in self._artifact_files():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries += 1
            total_bytes += size
            kind = path.name.rsplit(".", 2)[-2] if path.name.count(".") >= 2 else "?"
            by_kind[kind] = by_kind.get(kind, 0) + 1
            if path.parts[-3] != current_prefix:
                stale += 1
        lookups = self.hits + self.misses
        return {
            "root": str(self.root),
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            "entries": entries,
            "bytes": total_bytes,
            "by_kind": dict(sorted(by_kind.items())),
            "stale_entries": stale,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "lru": self._lru.stats(),
        }

    def clear(self) -> Dict[str, int]:
        """Delete every artifact (all schema versions); returns counts."""
        removed = 0
        freed = 0
        with self._io_lock:
            for path in self._artifact_files():
                try:
                    freed += path.stat().st_size
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            self._lru.clear()
        return {"removed": removed, "bytes_freed": freed}

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used-first until the store fits
        ``max_bytes``.

        Recency ordering means the artifacts a live workload keeps
        hitting survive; entries from retired programs (and any stale
        schema-version directory) go first.  "Recently used" is
        ``max(st_atime, st_mtime)``: most Linux mounts are ``noatime``
        or ``relatime``, where atime never (or at most daily) advances
        on reads, so ordering by atime alone would evict in creation
        order regardless of use.  ``get`` touches mtime on every disk
        hit precisely so this max reflects real traffic.
        """
        records: List[Tuple[float, int, Path]] = []
        total = 0
        with self._io_lock:
            for path in self._artifact_files():
                try:
                    meta = path.stat()
                except OSError:
                    continue
                used = max(meta.st_atime, meta.st_mtime)
                records.append((used, meta.st_size, path))
                total += meta.st_size
            records.sort(key=lambda record: (record[0], str(record[2])))
            removed = 0
            freed = 0
            for used, size, path in records:
                if total - freed <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                freed += size
            if removed:
                self._lru.clear()
        return {
            "removed": removed,
            "bytes_freed": freed,
            "bytes_remaining": total - freed,
        }


# ----------------------------------------------------------------------
# process-global configuration
# ----------------------------------------------------------------------

_lock = threading.Lock()
_configured: Optional[ArtifactStore] = None
_env_store: Optional[ArtifactStore] = None
_env_root: Optional[str] = None


def configure_store(
    root: Optional[str], export_env: bool = True
) -> Optional[ArtifactStore]:
    """Enable (or, with None, disable) the store for this process.

    With ``export_env`` (the default) the root is also published as
    :data:`ENV_VAR`, so any child process — forked grid workers,
    spawned serving workers, subprocess benchmark runs — inherits the
    same store with no explicit plumbing.  Returns the active store.
    """
    global _configured
    with _lock:
        _configured = ArtifactStore(root) if root is not None else None
        if export_env:
            if root is not None:
                os.environ[ENV_VAR] = str(root)
            else:
                os.environ.pop(ENV_VAR, None)
        return _configured


def get_store() -> Optional[ArtifactStore]:
    """The active store: explicit configuration first, then the
    environment, else None (disabled — the default, so tests and
    golden-trace runs never see persisted state they did not ask for).
    """
    global _env_store, _env_root
    if _configured is not None:
        return _configured
    root = os.environ.get(ENV_VAR)
    if not root:
        return None
    with _lock:
        if _configured is not None:
            return _configured
        if _env_store is None or _env_root != root:
            _env_store = ArtifactStore(root)
            _env_root = root
        return _env_store
