"""Serialization of the per-program warm-path artifact.

One artifact kind (``"program"``) carries everything about a compiled
program that is *config-independent* — the same no matter which
register configuration, allocator preset or info source a run asks
for:

* the profiling run's outcome (:class:`~repro.profile.interp.ExecutionResult`):
  exact block and entry counts, the return value, final global-array
  state and the instruction count of the run;
* the static frequency estimates (loop-depth ``10**d`` weights) of
  every function.

Profiling dominates a cold compile (full interpretation of the
workload); both layers of the warm path — ``compile_workload`` and
the engine's ``_compile_fresh`` — consult this artifact to skip it.

What is deliberately **not** stored: liveness, interference and webs.
The pipeline computes those on per-allocation *clones* after spill
and save/restore rewrites, keyed by object identity in the
:class:`~repro.analysis.manager.AnalysisCache`; a persisted copy for
the pristine source program would be invalidated by the first
mutation of every run and could never be shared across clones.  They
are also cheap relative to profiling (see INTERNALS §17).  The call
graph is likewise recomputed: it is microseconds of work, and
rebuilding it fresh keeps its set iteration order identical to a
store-disabled run.

Rehydration maps serialized ``(function, block label)`` names back
onto the *caller's* program objects — the program is always
recompiled from source (the textual IR round-trip renumbers vregs, so
parsed-back programs would not be the same objects the pipeline keys
on).  A payload that does not map cleanly (unknown function, unknown
or duplicate label) rehydrates to None and the caller treats it as a
miss; like corruption, a stale artifact can cost time, never
correctness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.frequency import BlockWeights
from repro.analysis.manager import STATIC_WEIGHTS, AnalysisCache
from repro.ir.function import BasicBlock, Program
from repro.ir.printer import format_program
from repro.profile.interp import ExecutionResult
from repro.profile.profile import Profile
from repro.store.store import get_store

#: The artifact kind under which program warm state is stored.
PROGRAM_ARTIFACT = "program"


def program_fingerprint(program: Program) -> str:
    """SHA-256 of the canonical IR printing (the store key).

    Matches :func:`repro.engine.cache.fingerprint_program` exactly;
    duplicated here so the workload registry can key the store without
    importing the engine layer.
    """
    text = format_program(program)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class RehydratedProgram:
    """A program artifact mapped back onto live IR objects."""

    profile: Profile
    baseline: ExecutionResult
    #: Instruction count of the stored profiling run; callers with a
    #: fuel budget below it must treat the hit as a miss (a fresh run
    #: under that budget would have failed, and the artifact must not
    #: mask that).
    instructions_executed: int
    #: An analysis cache pre-primed with the stored static weights.
    analyses: AnalysisCache


def _block_maps(program: Program):
    """``function name -> label -> block``, or None on duplicate labels."""
    maps: Dict[str, Dict[str, BasicBlock]] = {}
    for func in program.functions.values():
        labels: Dict[str, BasicBlock] = {}
        for block in func.blocks:
            if block.name in labels:
                return None
            labels[block.name] = block
        maps[func.name] = labels
    return maps


def program_payload(
    program: Program, baseline: ExecutionResult, analyses: AnalysisCache
) -> dict:
    """Serialize a program's warm state to a JSON-safe payload.

    Dict iteration orders are preserved through JSON round-trips, so
    everything is emitted in its natural in-memory order and
    rehydrates with identical ordering — part of the bit-identity
    contract the differential tests pin.
    """
    block_to_func: Dict[int, str] = {}
    for func in program.functions.values():
        for block in func.blocks:
            block_to_func[id(block)] = func.name
    block_counts = [
        [block_to_func[id(block)], block.name, count]
        for block, count in baseline.profile.block_counts.items()
        if id(block) in block_to_func
    ]
    weights = {}
    for func in program.functions.values():
        estimate: BlockWeights = analyses.get(func, STATIC_WEIGHTS)
        weights[func.name] = {
            "entry": estimate.entry_weight,
            "blocks": {
                block.name: weight
                for block, weight in estimate.weights.items()
            },
        }
    return {
        "return_value": baseline.return_value,
        "instructions_executed": baseline.instructions_executed,
        "globals_state": {
            name: list(values)
            for name, values in baseline.globals_state.items()
        },
        "entry_counts": dict(baseline.profile.entry_counts),
        "block_counts": block_counts,
        "static_weights": weights,
    }


def rehydrate_program(
    program: Program, payload: dict
) -> Optional[RehydratedProgram]:
    """Map a payload back onto ``program``'s objects, or None.

    Any mismatch between the payload and the program's actual shape —
    which a fingerprint collision or a buggy artifact could produce —
    returns None so the caller falls back to fresh computation.
    """
    maps = _block_maps(program)
    if maps is None:
        return None
    try:
        profile = Profile(entry_counts=dict(payload["entry_counts"]))
        for func_name, label, count in payload["block_counts"]:
            profile.block_counts[maps[func_name][label]] = count
        analyses = AnalysisCache()
        stored_weights = payload["static_weights"]
        for func in program.functions.values():
            record = stored_weights[func.name]
            labels = maps[func.name]
            estimate = BlockWeights(
                weights={
                    labels[label]: weight
                    for label, weight in record["blocks"].items()
                },
                entry_weight=record["entry"],
            )
            analyses.prime(func, STATIC_WEIGHTS, estimate)
        baseline = ExecutionResult(
            return_value=payload["return_value"],
            globals_state={
                name: list(values)
                for name, values in payload["globals_state"].items()
            },
            profile=profile,
            instructions_executed=payload["instructions_executed"],
        )
    except (KeyError, TypeError, ValueError):
        return None
    return RehydratedProgram(
        profile=profile,
        baseline=baseline,
        instructions_executed=baseline.instructions_executed,
        analyses=analyses,
    )


def load_program_artifact(
    program: Program, fingerprint: Optional[str] = None
) -> Optional[RehydratedProgram]:
    """Warm state for ``program`` from the active store, or None.

    No-op (None) when no store is configured.  A payload that exists
    but does not rehydrate cleanly is recorded as corrupt, then
    treated as a miss.
    """
    store = get_store()
    if store is None:
        return None
    if fingerprint is None:
        fingerprint = program_fingerprint(program)
    payload = store.get(fingerprint, PROGRAM_ARTIFACT)
    if payload is None:
        return None
    rehydrated = rehydrate_program(program, payload)
    if rehydrated is None:
        store.corrupt += 1
        from repro.obs.metrics import METRICS

        METRICS.inc("store.corrupt")
    return rehydrated


def save_program_artifact(
    program: Program,
    baseline: ExecutionResult,
    analyses: AnalysisCache,
    fingerprint: Optional[str] = None,
) -> None:
    """Publish ``program``'s warm state to the active store (if any).

    Failures are swallowed: a store that cannot serialize or write
    leaves the run exactly as fast as it was without one.
    """
    store = get_store()
    if store is None:
        return
    if fingerprint is None:
        fingerprint = program_fingerprint(program)
    try:
        payload = program_payload(program, baseline, analyses)
    except Exception:  # noqa: BLE001 - the store must never fail a run
        return
    store.put(fingerprint, PROGRAM_ARTIFACT, payload)
