"""Persistent artifact store: the cross-process warm path.

Everything config-independent about a compiled program — its profile,
baseline execution and static frequency estimates — is computed once,
published under the SHA-256 of its canonical IR, and shared across
every process that allocates it: grid pool workers, supervised
serving workers across respawns, and back-to-back CLI runs.  See
:mod:`repro.store.store` for the on-disk format and failure semantics
and :mod:`repro.store.artifacts` for what is (and deliberately is
not) serialized.
"""

from repro.store.artifacts import (
    PROGRAM_ARTIFACT,
    RehydratedProgram,
    load_program_artifact,
    program_fingerprint,
    program_payload,
    rehydrate_program,
    save_program_artifact,
)
from repro.store.store import (
    ARTIFACT_SCHEMA_VERSION,
    ENV_VAR,
    ArtifactStore,
    configure_store,
    get_store,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ENV_VAR",
    "ArtifactStore",
    "PROGRAM_ARTIFACT",
    "RehydratedProgram",
    "configure_store",
    "get_store",
    "load_program_artifact",
    "program_fingerprint",
    "program_payload",
    "rehydrate_program",
    "save_program_artifact",
]
