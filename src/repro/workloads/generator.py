"""Seeded random mini-C program generator for property-based tests.

Generated programs are terminating and runtime-error-free by
construction:

* loops are counted ``for`` loops with constant bounds and untouched
  induction variables;
* the call graph is a DAG (functions only call lower-numbered ones),
  so there is no recursion;
* array indexes are ``non-negative-expression % size`` over induction
  variables and non-negative constants;
* integer division/modulo only use positive constant divisors, float
  division is never generated;
* every variable is initialized at declaration.

The property tests allocate these programs under random register
files and allocators and check the machine-level execution matches
the IR-level execution — the strongest whole-pipeline invariant.
"""

from __future__ import annotations

import random
from typing import List

_INT_BINOPS = ["+", "-", "*"]
_FLOAT_BINOPS = ["+", "-", "*"]
_COMPARES = ["<", "<=", ">", ">=", "==", "!="]


class _Generator:
    def __init__(self, rng: random.Random, max_funcs: int, max_stmts: int):
        self.rng = rng
        self.max_funcs = max_funcs
        self.max_stmts = max_stmts
        self.globals: List[str] = []
        self.global_sizes: List[int] = []
        self.global_types: List[str] = []
        self.functions: List[str] = []  # signatures: "name:ret:argtypes"
        self.lines: List[str] = []

    # ------------------------------------------------------------------

    def generate(self) -> str:
        n_globals = self.rng.randint(1, 4)
        for g in range(n_globals):
            vtype = self.rng.choice(["int", "float"])
            size = self.rng.choice([8, 16, 32])
            name = f"g{g}"
            self.globals.append(name)
            self.global_sizes.append(size)
            self.global_types.append(vtype)
            self.lines.append(f"{vtype} {name}[{size}];")
        self.lines.append("")

        n_funcs = self.rng.randint(1, self.max_funcs)
        for f in range(n_funcs):
            self._gen_function(f)
        self._gen_main(n_funcs)
        return "\n".join(self.lines)

    def _gen_function(self, index: int) -> None:
        ret = self.rng.choice(["int", "float"])
        n_params = self.rng.randint(1, 3)
        params = []
        env: List[tuple] = []
        for p in range(n_params):
            ptype = self.rng.choice(["int", "float"])
            params.append(f"{ptype} p{p}")
            env.append((f"p{p}", ptype))
        name = f"f{index}"
        self.functions.append(f"{name}:{ret}:" + ",".join(p.split()[0] for p in params))
        self.lines.append(f"{ret} {name}({', '.join(params)}) {{")
        body = _FunctionBody(self, env, callable_below=index, indent=1)
        body.emit_statements(self.rng.randint(2, self.max_stmts))
        result = body.pick_value(ret)
        self.lines.append(f"    return {result};")
        self.lines.append("}")
        self.lines.append("")

    def _gen_main(self, n_funcs: int) -> None:
        self.lines.append("void main() {")
        body = _FunctionBody(self, [], callable_below=n_funcs, indent=1)
        body.emit_statements(self.rng.randint(3, self.max_stmts + 2))
        # Make results observable: checksum every global into slot 0.
        for g, name in enumerate(self.globals):
            if self.global_types[g] == "int":
                self.lines.append(f"    int chk{g} = 0;")
                self.lines.append(
                    f"    for (int ci{g} = 0; ci{g} < {self.global_sizes[g]}; "
                    f"ci{g} = ci{g} + 1) {{"
                )
                self.lines.append(
                    f"        chk{g} = (chk{g} + {name}[ci{g}]) % 65521;"
                )
                self.lines.append("    }")
                self.lines.append(f"    {name}[0] = chk{g};")
        self.lines.append("}")


class _FunctionBody:
    """Generates statements for one function scope."""

    def __init__(self, gen: _Generator, env: List[tuple], callable_below: int, indent: int):
        self.gen = gen
        self.rng = gen.rng
        self.env = list(env)  # (name, type)
        self.callable_below = callable_below
        self.indent = indent
        self.loop_depth = 0
        self.next_var = 0
        self.next_loop = 0

    def line(self, text: str) -> None:
        self.gen.lines.append("    " * self.indent + text)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def vars_of(self, vtype: str) -> List[str]:
        return [name for name, t in self.env if t == vtype]

    def pick_value(self, vtype: str, depth: int = 0) -> str:
        """A side-effect-free expression of the given type."""
        choices = ["const", "var", "binop", "array", "call", "convert"]
        if depth >= 3:
            choices = ["const", "var"]
        kind = self.rng.choice(choices)
        if kind == "var":
            candidates = self.vars_of(vtype)
            if candidates:
                return self.rng.choice(candidates)
            kind = "const"
        if kind == "const":
            if vtype == "int":
                return str(self.rng.randint(0, 50))
            # Always keep a decimal point so the literal lexes as float.
            return f"{self.rng.randint(1, 40) * 0.125:.4f}"
        if kind == "binop":
            op = self.rng.choice(_INT_BINOPS if vtype == "int" else _FLOAT_BINOPS)
            lhs = self.pick_value(vtype, depth + 1)
            rhs = self.pick_value(vtype, depth + 1)
            return f"({lhs} {op} {rhs})"
        if kind == "array":
            arrays = [
                i
                for i, t in enumerate(self.gen.global_types)
                if t == vtype
            ]
            if not arrays:
                return self.pick_value(vtype, depth + 1)
            g = self.rng.choice(arrays)
            index = self.nonneg_index(self.gen.global_sizes[g], depth + 1)
            return f"{self.gen.globals[g]}[{index}]"
        if kind == "call":
            call = self.pick_call(vtype, depth)
            if call is not None:
                return call
            return self.pick_value(vtype, depth + 1)
        # convert
        if vtype == "int":
            return f"ftoi({self.pick_value('float', depth + 1)})"
        return f"itof({self.pick_value('int', depth + 1)})"

    def pick_call(self, vtype: str, depth: int):
        candidates = []
        for sig in self.gen.functions[: self.callable_below]:
            name, ret, argspec = sig.split(":")
            if ret == vtype:
                candidates.append((name, argspec.split(",") if argspec else []))
        if not candidates:
            return None
        name, argtypes = self.rng.choice(candidates)
        args = ", ".join(self.pick_value(t, depth + 1) for t in argtypes)
        return f"{name}({args})"

    def nonneg_index(self, size: int, depth: int) -> str:
        """An always-in-bounds index expression."""
        terms = [str(self.rng.randint(0, size - 1))]
        for name, t in self.env:
            if t == "int" and name.startswith("i") and self.rng.random() < 0.5:
                terms.append(f"{name} * {self.rng.randint(0, 3)}")
        expr = " + ".join(terms)
        return f"({expr}) % {size}"

    def condition(self) -> str:
        vtype = self.rng.choice(["int", "float"])
        op = self.rng.choice(_COMPARES)
        return f"{self.pick_value(vtype, 1)} {op} {self.pick_value(vtype, 1)}"

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def emit_statements(self, count: int) -> None:
        for _ in range(count):
            self.emit_statement()

    def emit_statement(self) -> None:
        kinds = ["decl", "assign", "store", "if"]
        if self.loop_depth < 2:
            kinds.append("for")
        kind = self.rng.choice(kinds)
        if kind == "decl":
            vtype = self.rng.choice(["int", "float"])
            name = f"v{self.indent}_{self.next_var}"
            self.next_var += 1
            value = self.pick_value(vtype)
            wrapped = f"({value}) % 65521" if vtype == "int" else value
            self.line(f"{vtype} {name} = {wrapped};")
            self.env.append((name, vtype))
        elif kind == "assign":
            if not self.env:
                return self.emit_statement()
            name, vtype = self.rng.choice(self.env)
            if name.startswith("i"):
                return  # never touch induction variables
            value = self.pick_value(vtype)
            wrapped = f"({value}) % 65521" if vtype == "int" else value
            self.line(f"{name} = {wrapped};")
        elif kind == "store":
            g = self.rng.randrange(len(self.gen.globals))
            vtype = self.gen.global_types[g]
            index = self.nonneg_index(self.gen.global_sizes[g], 1)
            value = self.pick_value(vtype)
            wrapped = f"({value}) % 65521" if vtype == "int" else value
            self.line(f"{self.gen.globals[g]}[{index}] = {wrapped};")
        elif kind == "if":
            self.line(f"if ({self.condition()}) {{")
            inner = self._nested()
            inner.emit_statements(self.rng.randint(1, 2))
            self.line("}")
            if self.rng.random() < 0.4:
                self.line("else {")
                inner = self._nested()
                inner.emit_statements(self.rng.randint(1, 2))
                self.line("}")
        elif kind == "for":
            var = f"i{self.indent}_{self.next_loop}"
            self.next_loop += 1
            bound = self.rng.randint(2, 8)
            self.line(f"for (int {var} = 0; {var} < {bound}; {var} = {var} + 1) {{")
            inner = self._nested()
            inner.env.append((var, "int"))
            inner.loop_depth = self.loop_depth + 1
            inner.emit_statements(self.rng.randint(1, 3))
            self.line("}")

    def _nested(self) -> "_FunctionBody":
        inner = _FunctionBody(
            self.gen, self.env, self.callable_below, self.indent + 1
        )
        inner.loop_depth = self.loop_depth
        inner.next_var = 0
        return inner


def random_source(seed: int, max_funcs: int = 3, max_stmts: int = 6) -> str:
    """Generate a random, terminating, runtime-error-free mini-C source."""
    rng = random.Random(seed)
    return _Generator(rng, max_funcs=max_funcs, max_stmts=max_stmts).generate()


def random_program(seed: int, max_funcs: int = 3, max_stmts: int = 6):
    """Generate and compile a random program (convenience wrapper)."""
    from repro.lang.lower import compile_source

    return compile_source(random_source(seed, max_funcs, max_stmts), name=f"rand{seed}")
