"""Workload registry: the 14 SPEC92 stand-ins.

Each workload is a mini-C program engineered to mimic the structural
traits the paper attributes to its SPEC92 namesake — hot helper calls,
register pressure, loop nesting, recursion, cold calls crossed by hot
live ranges — because those traits, not the program's output, drive
the register-allocation phenomena under study.

Compiled programs and their profiles are cached per process: the
profile of a deterministic program never changes, and every experiment
reuses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.analysis.frequency import BlockWeights
from repro.analysis.manager import STATIC_WEIGHTS, AnalysisCache
from repro.ir.function import Function, Program
from repro.ir.verify import verify_program
from repro.lang.lower import compile_source
from repro.profile.interp import ExecutionResult, run_program
from repro.profile.profile import Profile


@dataclass(frozen=True)
class Workload:
    """One benchmark program: name, source, and what it mimics."""

    name: str
    source: str
    description: str
    #: Informal traits used in docs and for picking examples.
    traits: Tuple[str, ...] = ()


@dataclass
class CompiledWorkload:
    """A compiled and profiled workload, ready for allocation runs."""

    workload: Workload
    program: Program
    profile: Profile
    baseline: ExecutionResult
    #: Analyses of the (immutable) compiled program, shared by every
    #: allocation run over it: static weights, the call graph, and the
    #: per-clone pipeline analyses of a run that passes it along.
    analyses: AnalysisCache = field(default_factory=AnalysisCache)

    def dynamic_weights(self, func: Function) -> BlockWeights:
        """Profile-derived weights (the paper's dynamic information)."""
        return self.profile.weights(func)

    def static_weights(self, func: Function) -> BlockWeights:
        """Compiler-estimated weights (the paper's static information)."""
        return self.analyses.get(func, STATIC_WEIGHTS)


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def workload_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


@lru_cache(maxsize=None)
def compile_workload(name: str, optimize: bool = False) -> CompiledWorkload:
    """Compile, verify, execute and profile a workload (cached).

    With ``optimize=True`` the pre-allocation optimization pipeline
    (:mod:`repro.opt`) runs before profiling; the profile then matches
    the optimized block structure.
    """
    workload = get_workload(name)
    program = compile_source(workload.source, name=name)
    if optimize:
        from repro.opt import optimize_program

        optimize_program(program)
    verify_program(program)
    # Warm path: with an artifact store configured, a prior run of this
    # program (any process, any config) already published its profile
    # and static weights — skip the profiling interpretation entirely.
    from repro.store import load_program_artifact, save_program_artifact

    warm = load_program_artifact(program)
    if warm is not None:
        return CompiledWorkload(
            workload=workload,
            program=program,
            profile=warm.profile,
            baseline=warm.baseline,
            analyses=warm.analyses,
        )
    baseline = run_program(program)
    compiled = CompiledWorkload(
        workload=workload,
        program=program,
        profile=baseline.profile,
        baseline=baseline,
    )
    save_program_artifact(program, baseline, compiled.analyses)
    return compiled


def clear_compiled_cache() -> None:
    """Drop every cached compile/profile (and its analysis cache).

    Tests use this between modules so cached compiles — and anything
    hanging off them, like per-workload analysis caches — cannot leak
    state across test modules.
    """
    compile_workload.cache_clear()


def _ensure_loaded() -> None:
    # Importing the package registers every program module.
    from repro.workloads import programs  # noqa: F401
