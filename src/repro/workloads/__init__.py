"""Benchmark workloads: synthetic SPEC92 stand-ins and a generator.

* :func:`compile_workload` — compile, verify, run and profile one of
  the 14 named workloads (cached).
* :func:`workload_names` — all registered names.
* :func:`repro.workloads.generator.random_program` — seeded random
  mini-C programs for property-based testing.
"""

from repro.workloads.registry import (
    CompiledWorkload,
    Workload,
    clear_compiled_cache,
    compile_workload,
    get_workload,
    register,
    workload_names,
)

__all__ = [
    "CompiledWorkload",
    "Workload",
    "clear_compiled_cache",
    "compile_workload",
    "get_workload",
    "register",
    "workload_names",
]
