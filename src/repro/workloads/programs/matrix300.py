"""matrix300 stand-in: blocked matrix multiply through a BLAS call.

The real matrix300 spends its time in SAXPY/DGEMM-style BLAS routines
called from loop nests.  The callers' indices and accumulators cross
the BLAS call on every inner-loop iteration; the paper shows improved
Chaitin keeps improving as registers grow while CBH needs several
extra callee-save registers to catch up.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float ma[576];
float mb[576];
float mc[576];
float fout[4];

float dot(int arow, int bcol, int n) {
    float acc = 0.0;
    for (int k = 0; k < n; k = k + 1) {
        acc = acc + ma[arow * n + k] * mb[k * n + bcol];
    }
    return acc;
}

void saxpy(int row, int n, float alpha) {
    for (int j = 0; j < n; j = j + 1) {
        mc[row * n + j] = mc[row * n + j] * alpha + dot(row, j, n);
    }
}

void main() {
    int n = 24;
    int seed = 3;
    for (int i = 0; i < n * n; i = i + 1) {
        seed = (seed * 2531 + 7) % 100000;
        ma[i] = itof(seed % 100) * 0.01;
        seed = (seed * 2531 + 7) % 100000;
        mb[i] = itof(seed % 100) * 0.01 - 0.5;
        mc[i] = 0.0;
    }
    for (int pass = 0; pass < 3; pass = pass + 1) {
        for (int i = 0; i < n; i = i + 1) {
            saxpy(i, n, 0.5);
        }
    }
    float trace = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        trace = trace + mc[i * n + i];
    }
    fout[0] = trace;
    fout[1] = mc[0];
    fout[2] = mc[n * n - 1];
}
"""

register(
    Workload(
        name="matrix300",
        source=SOURCE,
        description="blocked matmul calling BLAS-style helpers from loop nests",
        traits=("float", "loop-nest", "hot-helper-call"),
    )
)
