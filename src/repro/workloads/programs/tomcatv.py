"""tomcatv stand-in: one big mesh-generation function, no calls.

The real tomcatv is a single large Fortran routine of nested loops
over 2-D arrays with no procedure calls, so there is no call cost to
direct: the paper reports ratio 1.0 for every improvement.  This
stand-in runs a vectorizable stencil relaxation over flattened 2-D
grids inside ``main`` alone.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float xg[676];
float yg[676];
float rxg[676];
float ryg[676];
float fout[4];

void main() {
    int n = 26;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            int idx = i * n + j;
            xg[idx] = itof(i) * 0.5 + itof(j) * 0.25;
            yg[idx] = itof(i) * 0.125 - itof(j) * 0.0625;
        }
    }
    float rxmax = 0.0;
    float rymax = 0.0;
    for (int iter = 0; iter < 8; iter = iter + 1) {
        rxmax = 0.0;
        rymax = 0.0;
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                int idx = i * n + j;
                float xxi = (xg[idx + 1] - xg[idx - 1]) * 0.5;
                float yxi = (yg[idx + 1] - yg[idx - 1]) * 0.5;
                float xet = (xg[idx + n] - xg[idx - n]) * 0.5;
                float yet = (yg[idx + n] - yg[idx - n]) * 0.5;
                float a = xet * xet + yet * yet;
                float b = xxi * xet + yxi * yet;
                float c = xxi * xxi + yxi * yxi;
                float dxx = xg[idx + 1] - 2.0 * xg[idx] + xg[idx - 1];
                float dxy = xg[idx + n] - 2.0 * xg[idx] + xg[idx - n];
                float dyx = yg[idx + 1] - 2.0 * yg[idx] + yg[idx - 1];
                float dyy = yg[idx + n] - 2.0 * yg[idx] + yg[idx - n];
                float rx = a * dxx - b * (xxi + xet) * 0.25 + c * dxy;
                float ry = a * dyx - b * (yxi + yet) * 0.25 + c * dyy;
                rxg[idx] = rx;
                ryg[idx] = ry;
                float arx = rx;
                if (arx < 0.0) { arx = -arx; }
                float ary = ry;
                if (ary < 0.0) { ary = -ary; }
                if (arx > rxmax) { rxmax = arx; }
                if (ary > rymax) { rymax = ary; }
            }
        }
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                int idx = i * n + j;
                xg[idx] = xg[idx] + rxg[idx] * 0.01;
                yg[idx] = yg[idx] + ryg[idx] * 0.01;
            }
        }
    }
    fout[0] = rxmax;
    fout[1] = rymax;
    fout[2] = xg[n * n / 2];
    fout[3] = yg[n * n / 2];
}
"""

register(
    Workload(
        name="tomcatv",
        source=SOURCE,
        description="one big stencil function with no calls at all",
        traits=("float", "no-calls", "single-function", "loop-nest"),
    )
)
