"""The 14 SPEC92 stand-in programs.

Importing this package registers every workload with the registry.
"""

from repro.workloads.programs import (  # noqa: F401
    alvinn,
    compress,
    doduc,
    ear,
    eqntott,
    espresso,
    fpppp,
    gcc,
    li,
    matrix300,
    nasa7,
    sc,
    spice,
    tomcatv,
)
