"""ear stand-in: auditory filterbank over a sampled signal.

The real ear pushes every sample of an input signal through a cascade
of small floating-point filter stages — tiny functions called once per
sample per channel, i.e. calls on the hottest path of the program.
The caller keeps a dozen accumulators, filter coefficients and
delayed samples live across those calls, far more than the callee-save
registers of mid-sized files can hold, so the register *kind* decision
dominates total overhead (the paper reports a 45-55x reduction for
ear) and the preference decision has real contention to arbitrate.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float signal[400];
float state[16];
float energy[16];
float outp[400];
float fout[8];

float bandpass(float x, float c1, float c2, int k) {
    float s = state[k];
    float y = c1 * x - c2 * s;
    state[k] = y * 0.5 + s * 0.25;
    return y;
}

float rectify(float x) {
    if (x < 0.0) { return -x; }
    return x;
}

float agc(float x) {
    return x / (1.0 + x * x * 0.125);
}

void main() {
    int nsamples = 400;
    int nchan = 8;
    int seed = 7;
    for (int i = 0; i < nsamples; i = i + 1) {
        seed = (seed * 2531 + 11) % 100000;
        signal[i] = itof(seed % 2000 - 1000) * 0.001;
    }
    for (int k = 0; k < 16; k = k + 1) {
        state[k] = 0.0;
        energy[k] = 0.0;
    }
    float prev1 = 0.0;
    float prev2 = 0.0;
    float peak = 0.0;
    float band_lo = 0.0;
    float band_mid = 0.0;
    float band_hi = 0.0;
    float gain = 1.0;
    float drift = 0.001;
    for (int t = 0; t < nsamples; t = t + 1) {
        float x = signal[t] * gain + prev1 * 0.2 - prev2 * 0.05;
        float acc = 0.0;
        float c1 = 0.9;
        float c2 = 0.3;
        for (int k = 0; k < nchan; k = k + 1) {
            float y = bandpass(x, c1, c2, k);
            float r = rectify(y);
            float g = agc(r);
            acc = acc + g;
            energy[k] = energy[k] + g * g;
            if (k < 3) {
                band_lo = band_lo + g;
            } else {
                if (k < 6) {
                    band_mid = band_mid + g;
                } else {
                    band_hi = band_hi + g;
                }
            }
            if (g > peak) { peak = g; }
            c1 = c1 - 0.05;
            c2 = c2 + 0.02;
        }
        outp[t] = acc;
        prev2 = prev1;
        prev1 = x;
        gain = gain - drift * acc;
        if (gain < 0.5) { gain = 0.5; }
    }
    float total = 0.0;
    for (int k = 0; k < nchan; k = k + 1) {
        total = total + energy[k];
    }
    fout[0] = total;
    fout[1] = outp[0];
    fout[2] = outp[nsamples - 1];
    fout[3] = band_lo;
    fout[4] = band_mid;
    fout[5] = band_hi;
    fout[6] = peak;
    fout[7] = gain;
}
"""

register(
    Workload(
        name="ear",
        source=SOURCE,
        description="auditory filterbank: float helper calls on the hottest loop",
        traits=("float", "hot-helper-call", "filterbank"),
    )
)
