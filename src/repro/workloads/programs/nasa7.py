"""nasa7 stand-in: a battery of numeric kernels.

The real nasa7 runs seven floating-point kernels (matmul, FFT,
Cholesky, ...).  Each kernel here mixes loop-nest pressure with
helper calls at different temperatures, so *every* improvement
contributes (the paper's first program class) and priority-based
coloring falls well behind in the static case.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float va[256];
float vb[256];
float vc[256];
float mm[256];
float fout[8];

float cmul_re(float ar, float ai, float br, float bi) {
    return ar * br - ai * bi;
}

float cmul_im(float ar, float ai, float br, float bi) {
    return ar * bi + ai * br;
}

void butterfly(int i, int j, float wr, float wi) {
    float xr = va[i];
    float xi = vb[i];
    float yr = va[j];
    float yi = vb[j];
    float tr = cmul_re(yr, yi, wr, wi);
    float ti = cmul_im(yr, yi, wr, wi);
    va[i] = xr + tr;
    vb[i] = xi + ti;
    va[j] = xr - tr;
    vb[j] = xi - ti;
}

void fft_pass(int half, float wr, float wi) {
    for (int i = 0; i < half; i = i + 1) {
        butterfly(i, i + half, wr, wi);
    }
}

float gauss_row(int row, int n) {
    float pivot = mm[row * n + row];
    if (pivot < 0.0625 && pivot > -0.0625) {
        pivot = 1.0;
    }
    for (int j = row + 1; j < n; j = j + 1) {
        float factor = mm[j * n + row] / pivot;
        for (int k = row; k < n; k = k + 1) {
            mm[j * n + k] = mm[j * n + k] - factor * mm[row * n + k];
        }
    }
    return pivot;
}

void main() {
    int seed = 21;
    for (int i = 0; i < 256; i = i + 1) {
        seed = (seed * 2531 + 19) % 100000;
        va[i] = itof(seed % 200 - 100) * 0.01;
        vb[i] = itof(seed % 140 - 70) * 0.01;
        vc[i] = 0.0;
        mm[i] = itof(seed % 50 + 1) * 0.04;
    }
    // kernel 1: fft-like passes with helper calls on the hot path
    for (int pass = 0; pass < 12; pass = pass + 1) {
        float wr = 0.92;
        float wi = 0.39;
        fft_pass(64, wr, wi);
        fft_pass(32, wr * wr - wi * wi, 2.0 * wr * wi);
    }
    // kernel 2: call-free triad (pure pressure)
    for (int rep = 0; rep < 10; rep = rep + 1) {
        for (int i = 2; i < 254; i = i + 1) {
            vc[i] = va[i - 1] * 0.5 + vb[i + 1] * 0.25 + vc[i] * 0.125
                  + va[i] * vb[i] - va[i + 1] * vb[i - 1];
        }
    }
    // kernel 3: elimination with a helper call per row
    int n = 16;
    float det = 1.0;
    for (int row = 0; row < n - 1; row = row + 1) {
        det = det * gauss_row(row, n);
    }
    float s1 = 0.0;
    float s2 = 0.0;
    for (int i = 0; i < 256; i = i + 1) {
        s1 = s1 + va[i] + vb[i];
        s2 = s2 + vc[i];
    }
    fout[0] = s1;
    fout[1] = s2;
    fout[2] = det;
    fout[3] = mm[17];
}
"""

register(
    Workload(
        name="nasa7",
        source=SOURCE,
        description="numeric kernel battery: calls and pressure in every mix",
        traits=("float", "kernels", "mixed-calls"),
    )
)
