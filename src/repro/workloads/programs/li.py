"""li stand-in: a recursive expression evaluator over a node heap.

The real li is a Lisp interpreter: ``xleval`` recurses over cons
cells, every activation both makes calls on its hot path *and* keeps
its own locals alive across them.  Storage-class analysis alone gives
the dramatic improvement here (paper's second program class): live
ranges crossing the recursive calls must be weighed against spilling,
while callee-save registers pay entry/exit cost on every activation
of the (very frequently entered) evaluator.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
int node_op[512];
int node_left[512];
int node_right[512];
int node_value[512];
int out[4];

int next_free[1];

int make_node(int op, int left, int right, int value) {
    int idx = next_free[0];
    node_op[idx] = op;
    node_left[idx] = left;
    node_right[idx] = right;
    node_value[idx] = value;
    next_free[0] = idx + 1;
    return idx;
}

int build_tree(int depth, int seed) {
    if (depth <= 0) {
        return make_node(0, 0, 0, seed % 17 + 1);
    }
    int s2 = (seed * 2531 + 43) % 100000;
    int left = build_tree(depth - 1, s2);
    int s3 = (s2 * 2531 + 43) % 100000;
    int right = build_tree(depth - 1, s3);
    return make_node(seed % 4 + 1, left, right, 0);
}

int eval_node(int idx) {
    int op = node_op[idx];
    if (op == 0) {
        return node_value[idx];
    }
    int lv = eval_node(node_left[idx]);
    int rv = eval_node(node_right[idx]);
    if (op == 1) { return (lv + rv) % 999983; }
    if (op == 2) { return (lv - rv) % 999983; }
    if (op == 3) { return (lv * rv) % 999983; }
    if (rv == 0) { return lv; }
    return lv % rv;
}

void main() {
    next_free[0] = 0;
    int root = build_tree(8, 271828);
    int total = 0;
    for (int round = 0; round < 40; round = round + 1) {
        int v = eval_node(root);
        total = (total + v) % 999983;
        node_value[round % 256] = (node_value[round % 256] + 1) % 17 + 1;
    }
    out[0] = total;
    out[1] = next_free[0];
}
"""

register(
    Workload(
        name="li",
        source=SOURCE,
        description="recursive evaluator: calls on every activation's hot path",
        traits=("int", "recursion", "interpreter"),
    )
)
