"""espresso stand-in: boolean-cube set operations.

The real espresso manipulates cube covers with many small integer
helpers of moderate temperature.  No single live range dominates, so
the preference decision has nothing to arbitrate (the paper's third
class: PR changes nothing) and priority-based coloring is competitive
in the dynamic case.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
int cover[256];
int scratch[256];
int out[4];

int count_ones(int word) {
    int count = 0;
    int w = word;
    while (w != 0) {
        count = count + w % 2;
        w = w / 2;
    }
    return count;
}

int cube_and(int a, int b) {
    int result = 0;
    int bit = 1;
    int wa = a;
    int wb = b;
    for (int i = 0; i < 12; i = i + 1) {
        if (wa % 2 == 1 && wb % 2 == 1) {
            result = result + bit;
        }
        wa = wa / 2;
        wb = wb / 2;
        bit = bit * 2;
    }
    return result;
}

int cube_or(int a, int b) {
    int result = 0;
    int bit = 1;
    int wa = a;
    int wb = b;
    for (int i = 0; i < 12; i = i + 1) {
        if (wa % 2 == 1 || wb % 2 == 1) {
            result = result + bit;
        }
        wa = wa / 2;
        wb = wb / 2;
        bit = bit * 2;
    }
    return result;
}

int covers(int a, int b) {
    if (cube_and(a, b) == b) { return 1; }
    return 0;
}

void main() {
    int n = 64;
    int seed = 31;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 1103 + 12345) % 100000;
        cover[i] = seed % 4096;
    }
    int kept = 0;
    for (int pass = 0; pass < 3; pass = pass + 1) {
        kept = 0;
        for (int i = 0; i < n; i = i + 1) {
            int redundant = 0;
            for (int j = 0; j < n; j = j + 1) {
                if (i != j && redundant == 0) {
                    if (covers(cover[j], cover[i]) == 1 && cover[i] != cover[j]) {
                        redundant = 1;
                    }
                }
            }
            if (redundant == 0) {
                scratch[kept] = cover[i];
                kept = kept + 1;
            }
        }
        for (int i = 0; i < kept; i = i + 1) {
            int merged = cube_or(scratch[i], scratch[(i + 1) % kept]);
            if (count_ones(merged) < 10) {
                cover[i] = merged;
            } else {
                cover[i] = scratch[i];
            }
        }
        n = kept;
    }
    int sum = 0;
    for (int i = 0; i < n; i = i + 1) {
        sum = (sum + cover[i] * (i + 1)) % 1000003;
    }
    out[0] = sum;
    out[1] = n;
}
"""

register(
    Workload(
        name="espresso",
        source=SOURCE,
        description="boolean cube cover minimization with small helpers",
        traits=("int", "small-helpers", "set-operations"),
    )
)
