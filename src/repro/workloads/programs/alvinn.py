"""alvinn stand-in: neural-network training loops.

The real alvinn trains a small feed-forward network: dense dot-product
loops (pure float pressure) punctuated by an activation-function call
per neuron.  The paper finds improved Chaitin and priority-based
coloring roughly equal here — packing matters at small register
counts, call-cost direction at large ones.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float inputs[32];
float hidden[16];
float outputs[8];
float w1[512];
float w2[128];
float deltas[8];
float fout[4];

float activation(float x) {
    float ax = x;
    if (ax < 0.0) { ax = -ax; }
    return x / (1.0 + ax);
}

float forward_hidden(int j) {
    float acc = 0.0;
    for (int i = 0; i < 32; i = i + 1) {
        acc = acc + inputs[i] * w1[j * 32 + i];
    }
    return activation(acc);
}

float forward_output(int k) {
    float acc = 0.0;
    for (int j = 0; j < 16; j = j + 1) {
        acc = acc + hidden[j] * w2[k * 16 + j];
    }
    return activation(acc);
}

void main() {
    int seed = 11;
    for (int i = 0; i < 512; i = i + 1) {
        seed = (seed * 2531 + 29) % 100000;
        w1[i] = itof(seed % 200 - 100) * 0.005;
    }
    for (int i = 0; i < 128; i = i + 1) {
        seed = (seed * 2531 + 29) % 100000;
        w2[i] = itof(seed % 200 - 100) * 0.005;
    }
    float error = 0.0;
    for (int epoch = 0; epoch < 12; epoch = epoch + 1) {
        for (int i = 0; i < 32; i = i + 1) {
            seed = (seed * 2531 + 29) % 100000;
            inputs[i] = itof(seed % 100) * 0.01;
        }
        for (int j = 0; j < 16; j = j + 1) {
            hidden[j] = forward_hidden(j);
        }
        error = 0.0;
        for (int k = 0; k < 8; k = k + 1) {
            float o = forward_output(k);
            outputs[k] = o;
            float target = itof(k % 2);
            float d = target - o;
            deltas[k] = d;
            error = error + d * d;
        }
        // weight update: call-free pressure loops
        for (int k = 0; k < 8; k = k + 1) {
            float dk = deltas[k] * 0.1;
            for (int j = 0; j < 16; j = j + 1) {
                w2[k * 16 + j] = w2[k * 16 + j] + dk * hidden[j];
            }
        }
        for (int j = 0; j < 16; j = j + 1) {
            float hj = hidden[j] * 0.02;
            for (int i = 0; i < 32; i = i + 1) {
                w1[j * 32 + i] = w1[j * 32 + i] + hj * inputs[i];
            }
        }
    }
    fout[0] = error;
    fout[1] = outputs[0];
    fout[2] = w1[100];
    fout[3] = w2[50];
}
"""

register(
    Workload(
        name="alvinn",
        source=SOURCE,
        description="neural-net training: dense loops plus activation calls",
        traits=("float", "loop-nest", "hot-helper-call"),
    )
)
