"""spice stand-in: iterative circuit device evaluation.

The real spice alternates device-model evaluations (branchy float
code with helper calls) and a linear solve, with convergence
iteration on top.  The paper measures essentially no execution-time
gain for spice (speedup 1.0) and groups it where the preference
decision does not matter: its call sites are lukewarm and its live
ranges short.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float voltage[40];
float current[40];
float conduct[40];
int topo_a[80];
int topo_b[80];
float fout[4];

float diode_current(float v) {
    // rational approximation of an exponential i-v curve
    float x = v * 2.5;
    if (x > 4.0) { x = 4.0; }
    if (x < -4.0) { x = -4.0; }
    float x2 = x * x;
    return x + x2 * 0.5 + x2 * x * 0.1666;
}

float conductance(float v) {
    float x = v * 2.5;
    if (x > 4.0) { x = 4.0; }
    if (x < -4.0) { x = -4.0; }
    return 2.5 * (1.0 + x + x * x * 0.5);
}

void main() {
    int nnodes = 40;
    int nedges = 80;
    int seed = 53;
    for (int i = 0; i < nnodes; i = i + 1) {
        seed = (seed * 2531 + 37) % 100000;
        voltage[i] = itof(seed % 100 - 50) * 0.01;
    }
    for (int e = 0; e < nedges; e = e + 1) {
        seed = (seed * 2531 + 37) % 100000;
        topo_a[e] = seed % nnodes;
        seed = (seed * 2531 + 37) % 100000;
        topo_b[e] = seed % nnodes;
    }
    float residual = 1.0;
    int iter = 0;
    while (iter < 25 && residual > 0.001) {
        for (int i = 0; i < nnodes; i = i + 1) {
            current[i] = 0.0;
            conduct[i] = 0.05;
        }
        for (int e = 0; e < nedges; e = e + 1) {
            int a = topo_a[e];
            int b = topo_b[e];
            float dv = voltage[a] - voltage[b];
            float id = diode_current(dv);
            float g = conductance(dv);
            current[a] = current[a] - id;
            current[b] = current[b] + id;
            conduct[a] = conduct[a] + g;
            conduct[b] = conduct[b] + g;
        }
        residual = 0.0;
        for (int i = 1; i < nnodes; i = i + 1) {
            float dv = current[i] / conduct[i];
            float adv = dv;
            if (adv < 0.0) { adv = -adv; }
            if (adv > residual) { residual = adv; }
            voltage[i] = voltage[i] + dv * 0.5;
        }
        iter = iter + 1;
    }
    float sv = 0.0;
    for (int i = 0; i < nnodes; i = i + 1) {
        sv = sv + voltage[i];
    }
    fout[0] = sv;
    fout[1] = residual;
    fout[2] = itof(iter);
}
"""

register(
    Workload(
        name="spice",
        source=SOURCE,
        description="circuit solver: branchy device models, lukewarm calls",
        traits=("float", "branchy", "convergence-loop"),
    )
)
