"""fpppp stand-in: enormous straight-line floating-point blocks.

The real fpppp computes two-electron integrals in basic blocks of
hundreds of simultaneously-live floating-point temporaries, with few
calls.  Register pressure, not call cost, is the binding constraint:
this is the one program where optimistic coloring clearly helps at
small register counts (paper Figure 9).  The stand-in evaluates a
wide unrolled polynomial/interaction kernel with dozens of
concurrently live float locals, called from a modest outer loop.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float basis[64];
float fock[64];
float fout[4];

float kernel(int base) {
    float a0 = basis[base];
    float a1 = basis[base + 1];
    float a2 = basis[base + 2];
    float a3 = basis[base + 3];
    float a4 = basis[base + 4];
    float a5 = basis[base + 5];
    float a6 = basis[base + 6];
    float a7 = basis[base + 7];
    float b0 = a0 * a1 + a2;
    float b1 = a1 * a2 + a3;
    float b2 = a2 * a3 + a4;
    float b3 = a3 * a4 + a5;
    float b4 = a4 * a5 + a6;
    float b5 = a5 * a6 + a7;
    float b6 = a6 * a7 + a0;
    float b7 = a7 * a0 + a1;
    float c0 = b0 * b7 - b1 * b6;
    float c1 = b1 * b0 - b2 * b7;
    float c2 = b2 * b1 - b3 * b0;
    float c3 = b3 * b2 - b4 * b1;
    float c4 = b4 * b3 - b5 * b2;
    float c5 = b5 * b4 - b6 * b3;
    float c6 = b6 * b5 - b7 * b4;
    float c7 = b7 * b6 - b0 * b5;
    float d0 = c0 * a4 + c1 * a5;
    float d1 = c2 * a6 + c3 * a7;
    float d2 = c4 * a0 + c5 * a1;
    float d3 = c6 * a2 + c7 * a3;
    float e0 = d0 * d3 - d1 * d2;
    float e1 = d1 * d0 - d2 * d3;
    float e2 = b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7;
    float e3 = c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7;
    return e0 * 0.25 + e1 * 0.125 + e2 * 0.0625 + e3 * 0.03125
         + a0 * b1 * c2 + a1 * b2 * c3 + a2 * b3 * c4 + a3 * b4 * c5
         + a4 * b5 * c6 + a5 * b6 * c7 + a6 * b7 * c0 + a7 * b0 * c1;
}

void main() {
    int seed = 13;
    for (int i = 0; i < 64; i = i + 1) {
        seed = (seed * 2531 + 17) % 100000;
        basis[i] = itof(seed % 200 - 100) * 0.01;
    }
    for (int sweep = 0; sweep < 40; sweep = sweep + 1) {
        for (int base = 0; base < 56; base = base + 4) {
            float v = kernel(base);
            fock[base] = fock[base] * 0.75 + v * 0.25;
        }
    }
    float total = 0.0;
    for (int i = 0; i < 64; i = i + 1) {
        total = total + fock[i];
    }
    fout[0] = total;
    fout[1] = fock[0];
    fout[2] = fock[32];
}
"""

register(
    Workload(
        name="fpppp",
        source=SOURCE,
        description="huge straight-line float kernel: pressure, not calls",
        traits=("float", "high-pressure", "straight-line", "few-calls"),
    )
)
