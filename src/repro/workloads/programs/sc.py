"""sc stand-in: spreadsheet recalculation.

The real sc re-evaluates a grid of cells; evaluating one cell calls
small helpers (range sums, cell fetches) from the hot recalc loop,
and the recalc driver's own state crosses every one of those calls.
The paper puts sc in the class where storage-class analysis alone is
decisive and reports the best execution-time speedup (4.4%) for it.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
int formula[400];
int arg1[400];
int arg2[400];
int value[400];
int out[4];

int cell_value(int idx) {
    return value[idx];
}

int range_sum(int lo, int hi) {
    int sum = 0;
    for (int i = lo; i <= hi; i = i + 1) {
        sum = sum + cell_value(i);
    }
    return sum % 1000003;
}

int eval_cell(int idx) {
    int f = formula[idx];
    if (f == 0) {
        return value[idx];
    }
    if (f == 1) {
        return (cell_value(arg1[idx]) + cell_value(arg2[idx])) % 1000003;
    }
    if (f == 2) {
        return (cell_value(arg1[idx]) * cell_value(arg2[idx])) % 1000003;
    }
    return range_sum(arg1[idx], arg2[idx]);
}

void main() {
    int n = 400;
    int seed = 5;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 1103 + 12345) % 100000;
        formula[i] = seed % 4;
        if (i < 20) { formula[i] = 0; }
        value[i] = seed % 97;
        int span = seed % 12;
        int lo = i % (n - 16);
        arg1[i] = lo;
        arg2[i] = lo + span % 8;
        if (formula[i] == 3) {
            arg2[i] = lo + 8;
        }
    }
    int total = 0;
    for (int pass = 0; pass < 12; pass = pass + 1) {
        for (int i = 20; i < n; i = i + 1) {
            int v = eval_cell(i);
            value[i] = v;
            total = (total + v) % 1000003;
        }
    }
    out[0] = total;
    out[1] = value[n - 1];
    out[2] = value[n / 2];
}
"""

register(
    Workload(
        name="sc",
        source=SOURCE,
        description="spreadsheet recalc: helper calls from the hot recalc loop",
        traits=("int", "hot-helper-call", "interpreter"),
    )
)
