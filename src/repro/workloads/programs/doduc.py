"""doduc stand-in: Monte-Carlo reactor state stepping.

The real doduc is a thermohydraulics simulation: a time-stepping loop
whose body calls several medium-sized float routines and branches on
regime thresholds.  The paper groups it with the programs where
improved Chaitin beats priority-based coloring and where CBH cannot
catch up under profile information.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
float temp[64];
float flow[64];
float pressure[64];
float fout[4];

float heat_transfer(float t, float f) {
    float dt = t - 300.0;
    if (dt < 0.0) { dt = 0.0; }
    return dt * f * 0.015;
}

float friction(float f) {
    float af = f;
    if (af < 0.0) { af = -af; }
    return 0.02 + 0.3 / (1.0 + af * 4.0);
}

float probe(float x) {
    return x * 0.5 + 1.0;
}

float regime_adjust(int cell, float inflow) {
    // Two equally likely regimes; each keeps a regime-local value
    // live across a chain of three helper calls and touches it only
    // three times in total.  Individually such a live range cannot
    // pay for a callee-save register (its references are rarer than
    // the function's entries), but the two regimes together can share
    // one -- the scenario where the paper's shared callee-save cost
    // model beats the first-user model.
    float r = 0.0;
    if (cell % 2 == 0) {
        float u = inflow * 1.5 + 0.25;
        float s1 = probe(u);
        float s2 = probe(s1 + 0.125);
        float s3 = probe(s2 + 0.25);
        r = s3 + u;
    } else {
        float w = inflow * 0.75 + 0.5;
        float t1 = probe(w);
        float t2 = probe(t1 + 0.375);
        float t3 = probe(t2 + 0.5);
        r = t3 + w;
    }
    return r;
}

float step_cell(int i, float inflow) {
    float t = temp[i];
    float f = flow[i];
    float q = heat_transfer(t, f);
    float k = friction(f);
    float adj = regime_adjust(i, inflow);
    q = q + adj * 0.001;
    float fnew = f + (inflow - f) * 0.25 - k * f * 0.125;
    float tnew = t + q * 0.5 - (t - 310.0) * 0.03;
    temp[i] = tnew;
    flow[i] = fnew;
    pressure[i] = pressure[i] * 0.9 + fnew * fnew * 0.05;
    return fnew;
}

void main() {
    int ncells = 48;
    int seed = 17;
    for (int i = 0; i < ncells; i = i + 1) {
        seed = (seed * 2531 + 23) % 100000;
        temp[i] = 300.0 + itof(seed % 100) * 0.5;
        flow[i] = 1.0 + itof(seed % 50) * 0.02;
        pressure[i] = 10.0;
    }
    for (int t = 0; t < 60; t = t + 1) {
        float inflow = 1.5 + itof(t % 7) * 0.1;
        for (int i = 0; i < ncells; i = i + 1) {
            inflow = step_cell(i, inflow);
        }
        if (t % 10 == 9) {
            // occasional (cold) rebalancing pass
            float avg = 0.0;
            for (int i = 0; i < ncells; i = i + 1) {
                avg = avg + pressure[i];
            }
            avg = avg / itof(ncells);
            for (int i = 0; i < ncells; i = i + 1) {
                pressure[i] = pressure[i] * 0.75 + avg * 0.25;
            }
        }
    }
    float st = 0.0;
    float sf = 0.0;
    for (int i = 0; i < ncells; i = i + 1) {
        st = st + temp[i];
        sf = sf + flow[i];
    }
    fout[0] = st;
    fout[1] = sf;
    fout[2] = pressure[0];
}
"""

register(
    Workload(
        name="doduc",
        source=SOURCE,
        description="reactor time-stepping with helper calls and regimes",
        traits=("float", "time-stepping", "mixed-calls"),
    )
)
