"""gcc stand-in: a branchy multi-pass token processor.

The real gcc is hundreds of branchy functions of mixed temperature —
no one call site dominates, control flow is irregular, and live
ranges are short.  The paper finds improved Chaitin and priority-based
coloring roughly equal here, and CBH unable to catch up when profile
information is used (hot ranges cross cold call sites).
"""

from repro.workloads.registry import Workload, register

SOURCE = """
int tokens[500];
int kinds[500];
int values[500];
int symtab[128];
int out[4];

int classify(int token) {
    if (token < 10) { return 0; }
    if (token < 40) { return 1; }
    if (token < 60) { return 2; }
    if (token % 7 == 0) { return 3; }
    return 4;
}

int sym_lookup(int name) {
    int h = name % 128;
    if (h < 0) { h = -h; }
    int probes = 0;
    while (symtab[h] != name && symtab[h] != 0 && probes < 128) {
        h = (h + 1) % 128;
        probes = probes + 1;
    }
    if (symtab[h] == 0) {
        symtab[h] = name;
    }
    return h;
}

int fold_constants(int a, int b, int op) {
    if (op == 0) { return (a + b) % 65536; }
    if (op == 1) { return (a - b) % 65536; }
    if (op == 2) { return (a * b) % 65536; }
    if (b == 0) { return a; }
    return a / b;
}

int emit_cost(int kind, int value) {
    int cost = 1;
    if (kind == 2) {
        cost = 2 + value % 3;
    }
    if (kind == 3) {
        cost = 4;
    }
    if (kind == 4 && value > 100) {
        cost = 3;
    }
    return cost;
}

void main() {
    int n = 500;
    int seed = 77;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 1103 + 12345) % 100000;
        tokens[i] = seed % 97;
        values[i] = seed % 1000;
    }
    // pass 1: classify
    for (int i = 0; i < n; i = i + 1) {
        kinds[i] = classify(tokens[i]);
    }
    // pass 2: symbol resolution for identifier-ish tokens
    int nsyms = 0;
    for (int i = 0; i < n; i = i + 1) {
        if (kinds[i] == 1 || kinds[i] == 4) {
            int slot = sym_lookup(tokens[i] * 31 % 127 + 1);
            values[i] = values[i] + slot;
            nsyms = nsyms + 1;
        }
    }
    // pass 3: local constant folding over adjacent pairs
    int folded = 0;
    for (int i = 0; i + 2 < n; i = i + 1) {
        if (kinds[i] == 0 && kinds[i + 2] == 0 && kinds[i + 1] == 2) {
            values[i] = fold_constants(values[i], values[i + 2], tokens[i + 1] % 4);
            folded = folded + 1;
        }
    }
    // pass 4: cost accounting
    int total = 0;
    for (int i = 0; i < n; i = i + 1) {
        total = (total + emit_cost(kinds[i], values[i])) % 1000003;
    }
    out[0] = total;
    out[1] = nsyms;
    out[2] = folded;
}
"""

register(
    Workload(
        name="gcc",
        source=SOURCE,
        description="branchy multi-pass token processing, mixed temperatures",
        traits=("int", "branchy", "multi-pass"),
    )
)
