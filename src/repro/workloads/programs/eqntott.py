"""eqntott stand-in: truth-table term sorting.

The real eqntott spends most of its time in ``cmppt``, a small term
comparison function called from the inner loop of a sort.  The paper
reports a 66x overhead reduction for eqntott: the sort's loop
variables are hot and cross the ``cmppt`` call on every iteration, so
putting them in caller-save registers (the base model's choice for
ranges that merely contain a cold call is wrong here: they contain a
*hot* call) is catastrophic, while callee-save registers make the
call-crossing almost free.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
int pterms[192];
int perm[192];
int out[4];

int cmppt(int a, int b) {
    int va = pterms[a];
    int vb = pterms[b];
    if (va < vb) { return -1; }
    if (va > vb) { return 1; }
    if (a < b) { return -1; }
    if (a > b) { return 1; }
    return 0;
}

int sort_stats[8];

void sort_terms(int n) {
    int i = 1;
    int comparisons = 0;
    int swaps = 0;
    int runs = 0;
    int streak = 0;
    int parity = 0;
    int low_sum = 0;
    int high_sum = 0;
    while (i < n) {
        int j = i;
        while (j > 0) {
            int left = perm[j - 1];
            int right = perm[j];
            int order = cmppt(left, right);
            comparisons = comparisons + 1;
            parity = 1 - parity;
            if (order > 0) {
                perm[j - 1] = right;
                perm[j] = left;
                swaps = swaps + 1;
                streak = streak + 1;
                low_sum = (low_sum + right) % 65521;
            } else {
                if (streak > 0) { runs = runs + 1; }
                streak = 0;
                high_sum = (high_sum + left) % 65521;
                j = 1;
            }
            j = j - 1;
        }
        i = i + 1;
    }
    sort_stats[0] = comparisons;
    sort_stats[1] = swaps;
    sort_stats[2] = runs;
    sort_stats[3] = parity;
    sort_stats[4] = low_sum;
    sort_stats[5] = high_sum;
}

int checksum(int n) {
    int sum = 0;
    for (int i = 0; i < n; i = i + 1) {
        sum = sum + perm[i] * (i + 1);
        sum = sum % 1000003;
    }
    return sum;
}

void main() {
    int n = 192;
    int seed = 42;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 1103 + 12345) % 100000;
        pterms[i] = seed % 512;
        perm[i] = i;
    }
    sort_terms(n);
    out[0] = checksum(n);
    out[1] = perm[0];
    out[2] = perm[n - 1];
    out[3] = (sort_stats[0] + sort_stats[1] * 3 + sort_stats[2] * 5
              + sort_stats[4] + sort_stats[5]) % 1000003;
}
"""

register(
    Workload(
        name="eqntott",
        source=SOURCE,
        description="truth-table term sort dominated by a hot comparison call",
        traits=("int", "hot-helper-call", "sort"),
    )
)
