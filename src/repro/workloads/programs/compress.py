"""compress stand-in: LZW-flavoured hash-table coding loop.

The real compress interleaves a hot hashing/probing loop with helper
calls (``output``, ``getcode``) that sit on moderately hot paths,
while many live ranges on the hottest path also cross *cold* call
sites (table reset).  Per the paper, storage-class analysis alone
brings most of the win, and CBH over-constrains: ranges crossing the
cold reset call would be banished from caller-save registers.
"""

from repro.workloads.registry import Workload, register

SOURCE = """
int input[600];
int htab[256];
int codetab[256];
int output_buf[700];
int out[4];

int out_count[1];

void put_code(int code) {
    int n = out_count[0];
    output_buf[n] = code % 4096;
    out_count[0] = n + 1;
}

void clear_table() {
    for (int i = 0; i < 256; i = i + 1) {
        htab[i] = -1;
        codetab[i] = 0;
    }
}

int hash_probe(int key) {
    int h = (key * 611) % 256;
    if (h < 0) { h = -h; }
    int probes = 0;
    while (htab[h] != key && htab[h] != -1 && probes < 256) {
        h = (h + 1) % 256;
        probes = probes + 1;
    }
    return h;
}

void main() {
    int seed = 99;
    for (int i = 0; i < 600; i = i + 1) {
        seed = (seed * 1103 + 12345) % 100000;
        input[i] = seed % 64;
    }
    out_count[0] = 0;
    clear_table();
    int nextcode = 256;
    int prefix = input[0];
    int hits = 0;
    int misses = 0;
    int run = 0;
    int max_run = 0;
    int key_check = 0;
    int ratio_num = 0;
    for (int i = 1; i < 600; i = i + 1) {
        int c = input[i];
        int key = prefix * 64 + c;
        int h = hash_probe(key);
        key_check = (key_check + key) % 65521;
        if (htab[h] == key) {
            prefix = codetab[h];
            hits = hits + 1;
            run = run + 1;
            if (run > max_run) { max_run = run; }
        } else {
            put_code(prefix);
            misses = misses + 1;
            run = 0;
            ratio_num = (ratio_num + hits * 4) % 65521;
            htab[h] = key;
            codetab[h] = nextcode;
            nextcode = nextcode + 1;
            prefix = c;
            if (nextcode >= 4096) {
                clear_table();
                nextcode = 256;
            }
        }
    }
    put_code(prefix);
    out[3] = (hits + misses * 3 + max_run * 7 + key_check + ratio_num) % 1000003;
    int sum = 0;
    for (int i = 0; i < out_count[0]; i = i + 1) {
        sum = (sum + output_buf[i] * (i + 1)) % 1000003;
    }
    out[0] = sum;
    out[1] = out_count[0];
    out[2] = nextcode;
}
"""

register(
    Workload(
        name="compress",
        source=SOURCE,
        description="LZW-style hashing with hot helpers and a cold reset call",
        traits=("int", "hash-table", "cold-call-crossing"),
    )
)
