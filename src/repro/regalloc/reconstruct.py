"""Graph reconstruction (paper Figure 1, "Reconstruction").

After spill code is inserted, the paper's framework *modifies the
existing interference graph instead of rebuilding it from scratch* to
save compilation time.  The observation making this sound:

* removing a spilled live range never changes the extent of any other
  live range, so edges among survivors are exactly preserved;
* the freshly inserted spill temporaries are the only new nodes, and
  their (tiny) ranges sit immediately around the rewritten
  references, so one liveness pass plus a walk over only the blocks
  that received spill code suffices to wire them in;
* survivor costs are unchanged (their references were not touched);
  only ``crossed_calls`` entries must be re-indexed because inserted
  instructions shift positions within a block.

``reconstruct_interference`` performs exactly that update and is
verified (in tests) to produce a graph identical to a full rebuild.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.analysis.frequency import BlockWeights
from repro.analysis.liveness import compute_liveness
from repro.analysis.manager import LIVENESS, AnalysisCache
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Call, Copy
from repro.ir.values import VReg
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo

import math


def reconstruct_interference(
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    func: Function,
    weights: BlockWeights,
    spilled: Iterable[VReg],
    new_temps: Iterable[VReg],
    cache: Optional[AnalysisCache] = None,
) -> Tuple[InterferenceGraph, Dict[VReg, LiveRangeInfo]]:
    """Update ``graph``/``infos`` in place after spill-code insertion.

    ``spilled`` are the live ranges just moved to memory (their nodes
    disappear); ``new_temps`` are the spill temporaries the rewrite
    introduced.  Returns the same objects for symmetry with
    :func:`~repro.regalloc.interference.build_interference`.  The
    caller must have invalidated ``cache`` for the rewritten function
    already (liveness is recomputed here either way; the cached block
    order is what reconstruction reuses).
    """
    spilled_set = set(spilled)
    temp_set = set(new_temps)

    # A spilled *parameter* does not disappear: it still arrives in a
    # register and is stored to its slot by the entry store, so its
    # (now tiny) range is rebuilt like a fresh temporary.
    params = set(func.params)
    for reg in spilled_set & params:
        temp_set.add(reg)

    # 1. Drop the spilled nodes (and any info they carried).
    for reg in spilled_set:
        graph.remove_node(reg)
        infos.pop(reg, None)

    # 2. One liveness pass over the rewritten function.
    liveness = (
        cache.get(func, LIVENESS) if cache is not None else compute_liveness(func)
    )

    # Parameters are defined simultaneously at entry; restore the
    # entry edges that involve re-added (spilled) parameters — against
    # every other parameter (even dead ones: the convention writes
    # them all) and everything live into the entry block.
    entry_live = liveness.live_in[func.entry]
    for param in params & temp_set:
        for other in params:
            if other is not param and other.vtype is param.vtype:
                graph.add_edge(param, other)
        for other in entry_live:
            if other is not param and other.vtype is param.vtype:
                graph.add_edge(param, other)

    # 3. Walk only the blocks that contain new temporaries; add their
    #    nodes, edges and (infinite) costs.  Also re-index every
    #    surviving range's crossed_calls, since insertion shifted
    #    instruction positions.
    for info in infos.values():
        info.crossed_calls.clear()
        info.caller_cost = 0.0

    def info_for(reg: VReg) -> LiveRangeInfo:
        record = infos.get(reg)
        if record is None:
            record = LiveRangeInfo(reg=reg, is_spill_temp=True)
            record.spill_cost = math.inf
            infos[reg] = record
            graph.add_node(reg)
        return record

    blocks_with_temps: Set[BasicBlock] = set()
    for block in func.blocks:
        for instr in block.instrs:
            touched = set(instr.defs()) | set(instr.uses())
            if touched & temp_set:
                blocks_with_temps.add(block)
                break

    for block in func.blocks:
        weight = weights.weight(block)
        index = len(block.instrs)
        for instr, live_after in liveness.live_across(block):
            index -= 1
            if block in blocks_with_temps:
                copy_src = instr.src if isinstance(instr, Copy) else None
                for dst in instr.defs():
                    if dst in temp_set:
                        record = info_for(dst)
                        record.num_defs += 1
                        record.blocks.add(block)
                        for live in live_after:
                            if live is dst or live is copy_src:
                                continue
                            if live.vtype is dst.vtype:
                                graph.add_edge(dst, live)
                    else:
                        # A surviving def may now see a temp live
                        # after it (a reload feeding the next use).
                        for live in live_after:
                            if live in temp_set and live.vtype is dst.vtype:
                                if live is not copy_src:
                                    graph.add_edge(dst, live)
                for src in instr.uses():
                    if src in temp_set:
                        record = info_for(src)
                        record.num_uses += 1
                        record.blocks.add(block)
            if isinstance(instr, Call):
                for live in live_after - set(instr.defs()):
                    record = infos.get(live)
                    if record is None:
                        record = info_for(live)
                    record.crossed_calls.append((block, index))
                    record.caller_cost += 2.0 * weight
    return graph, infos
