"""Independent post-allocation verifier.

Every overhead number the reproduction reports silently assumes the
allocator's save/restore/spill decisions are *correct*: a missing
caller-save restore would still produce a plausible-looking overhead
count while the allocated program computes garbage.  This module
re-derives liveness from the final code — sharing nothing with the
allocator's own analyses beyond the dataflow kernel — and checks the
invariants a finished :class:`~repro.regalloc.framework.ProgramAllocation`
must satisfy:

1. **Assignment sanity** — every live range referenced by the final
   code has a register, from the configured file, in its own bank.
2. **No conflicts** — no two simultaneously-live ranges share a
   physical register (with the classic exception: a ``Copy``
   destination may share the source's register).  Parameters are
   defined simultaneously at entry, so they must be pairwise disjoint
   and disjoint from everything live into the entry block.
3. **Caller-save discipline** — a caller-save register live across a
   call (and clobbered by the callee, under IPRA summaries) is saved
   immediately before the call and restored immediately after it,
   through one consistent frame slot.
4. **Callee-save discipline** — every callee-save register the
   function uses is saved in the prologue and restored, from the same
   slot, in every epilogue; prologue and epilogues agree exactly.
5. **Spill-slot consistency** — along every path, a frame slot is
   written before it is read (forward must-initialized dataflow), and
   every slot index is within the function's frame.
6. **Calling convention** — call sites match the callee's signature
   (argument count/banks, result presence/bank) and returns match the
   function's own signature.

Violations raise subclasses of
:class:`~repro.regalloc.errors.AllocationVerificationError` naming the
function, block and instruction index.  The verifier is deliberately
structural — it never consults the allocator's interference graph or
``LiveRangeInfo``, so a bug there cannot hide itself.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import reverse_postorder
from repro.analysis.liveness import compute_liveness
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import Call, Copy, Instr, Ret
from repro.ir.values import VReg
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.errors import (
    BankMismatchError,
    CalleeSaveError,
    CallerSaveError,
    CallingConventionError,
    RegisterConflictError,
    SpillSlotError,
    UnassignedLiveRangeError,
)
from repro.regalloc.framework import FunctionAllocation, ProgramAllocation
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


def verify_allocation(allocation: ProgramAllocation) -> None:
    """Check every invariant on every function of ``allocation``.

    Raises the first violation found as an
    :class:`AllocationVerificationError` subclass; returns ``None``
    when the allocation is clean.
    """
    for fa in allocation.functions.values():
        verify_function_allocation(
            fa,
            allocation.regfile,
            program=allocation.program,
            clobber_of=allocation.clobbers,
        )


def verify_function_allocation(
    fa: FunctionAllocation,
    regfile: RegisterFile,
    program: Optional[Program] = None,
    clobber_of: Optional[Dict[str, FrozenSet[PhysReg]]] = None,
) -> None:
    """Verify one function's finished allocation.

    ``program`` enables the cross-function calling-convention checks
    (call-site signatures); without it only intra-function invariants
    are checked.  ``clobber_of`` is the IPRA summary map the emission
    honoured, if any — the caller-save check requires save/restore
    code exactly for the registers the summaries leave clobbered.
    """
    func = fa.func
    assignment = fa.assignment
    liveness = compute_liveness(func)

    _check_assignment_sanity(func, assignment, regfile)
    _check_conflicts(func, assignment, liveness)
    _check_caller_save(func, assignment, liveness, clobber_of)
    _check_callee_save(func, assignment)
    _check_spill_slots(func, fa.frame_slots)
    if program is not None:
        _check_calling_convention(func, program)


# ----------------------------------------------------------------------
# 1. assignment sanity
# ----------------------------------------------------------------------


def _check_assignment_sanity(
    func: Function, assignment: Dict[VReg, PhysReg], regfile: RegisterFile
) -> None:
    valid = set(regfile.all_registers())
    for reg in func.vregs():
        phys = assignment.get(reg)
        if phys is None:
            raise UnassignedLiveRangeError(
                f"live range {reg} has no physical register",
                function=func.name,
            )
        if phys not in valid:
            raise BankMismatchError(
                f"{reg} assigned {phys.name}, which is not in the "
                f"configured register file {regfile.config}",
                function=func.name,
            )
        if phys.bank is not reg.vtype:
            raise BankMismatchError(
                f"{reg} ({reg.vtype}) assigned {phys.name} from the "
                f"{phys.bank} bank",
                function=func.name,
            )
    for instr, block, index in _physreg_sites(func):
        for phys in _phys_operands(instr):
            if phys not in valid:
                raise BankMismatchError(
                    f"save/restore code touches {phys.name}, which is "
                    f"not in the configured register file {regfile.config}",
                    function=func.name,
                    block=block.name,
                    index=index,
                )


def _physreg_sites(func: Function):
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, (SpillLoad, SpillStore)):
                yield instr, block, index


def _phys_operands(instr: Instr) -> Tuple[PhysReg, ...]:
    if isinstance(instr, SpillLoad) and isinstance(instr.dst, PhysReg):
        return (instr.dst,)
    if isinstance(instr, SpillStore) and isinstance(instr.src, PhysReg):
        return (instr.src,)
    return ()


# ----------------------------------------------------------------------
# 2. register conflicts
# ----------------------------------------------------------------------


def _check_conflicts(func: Function, assignment, liveness) -> None:
    # Parameters are all written simultaneously by the calling
    # convention, so each must be disjoint from every other same-bank
    # parameter and from everything live into the entry block.
    entry_live = liveness.live_in[func.entry]
    for param in func.params:
        for other in func.params:
            if (
                other is not param
                and other.vtype is param.vtype
                and assignment[other] == assignment[param]
            ):
                raise RegisterConflictError(
                    f"parameters {param} and {other} share "
                    f"{assignment[param].name}",
                    function=func.name,
                    block=func.entry.name,
                    index=-1,
                )
        for live in entry_live:
            if (
                live is not param
                and live.vtype is param.vtype
                and assignment[live] == assignment[param]
            ):
                raise RegisterConflictError(
                    f"parameter {param} clobbers {live} "
                    f"(both in {assignment[param].name})",
                    function=func.name,
                    block=func.entry.name,
                    index=-1,
                )

    for block in func.blocks:
        index = len(block.instrs)
        for instr, live_after in liveness.live_across(block):
            index -= 1
            copy_src = instr.src if isinstance(instr, Copy) else None
            for dst in instr.defs():
                phys = assignment[dst]
                for live in live_after:
                    if live is dst or live is copy_src:
                        continue
                    if assignment[live] == phys:
                        raise RegisterConflictError(
                            f"{dst} (defined here) and {live} (live "
                            f"after) share {phys.name}",
                            function=func.name,
                            block=block.name,
                            index=index,
                        )


# ----------------------------------------------------------------------
# 3. caller-save discipline
# ----------------------------------------------------------------------


def _check_caller_save(func: Function, assignment, liveness, clobber_of) -> None:
    for block in func.blocks:
        live_after_at: List[Set[VReg]] = [set()] * len(block.instrs)
        index = len(block.instrs)
        for instr, live_after in liveness.live_across(block):
            index -= 1
            live_after_at[index] = live_after
        for index, instr in enumerate(block.instrs):
            if not isinstance(instr, Call):
                continue
            saves = _adjacent_saves(block, index)
            restores = _adjacent_restores(block, index)
            crossing = live_after_at[index] - set(instr.defs())
            for reg in sorted(crossing, key=lambda r: r.id):
                phys = assignment[reg]
                if not phys.is_caller_save:
                    continue
                if clobber_of is not None and phys not in clobber_of[instr.callee]:
                    continue  # the callee provably leaves it alone
                if phys not in saves:
                    raise CallerSaveError(
                        f"{reg} in caller-save {phys.name} is live "
                        f"across call @{instr.callee} but not saved "
                        f"before it",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
                if phys not in restores:
                    raise CallerSaveError(
                        f"{reg} in caller-save {phys.name} is saved "
                        f"around call @{instr.callee} but never "
                        f"restored after it",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
                if saves[phys] != restores[phys]:
                    raise CallerSaveError(
                        f"{phys.name} saved to slot {saves[phys]} but "
                        f"restored from slot {restores[phys]} around "
                        f"call @{instr.callee}",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )


def _adjacent_saves(block: BasicBlock, call_index: int) -> Dict[PhysReg, int]:
    """Caller-save stores immediately preceding the call, as phys->slot."""
    saves: Dict[PhysReg, int] = {}
    i = call_index - 1
    while i >= 0:
        instr = block.instrs[i]
        if (
            isinstance(instr, SpillStore)
            and instr.kind is OverheadKind.CALLER_SAVE
            and isinstance(instr.src, PhysReg)
        ):
            saves[instr.src] = instr.slot
            i -= 1
        else:
            break
    return saves


def _adjacent_restores(block: BasicBlock, call_index: int) -> Dict[PhysReg, int]:
    """Caller-save loads immediately following the call, as phys->slot."""
    restores: Dict[PhysReg, int] = {}
    i = call_index + 1
    while i < len(block.instrs):
        instr = block.instrs[i]
        if (
            isinstance(instr, SpillLoad)
            and instr.kind is OverheadKind.CALLER_SAVE
            and isinstance(instr.dst, PhysReg)
        ):
            restores[instr.dst] = instr.slot
            i += 1
        else:
            break
    return restores


# ----------------------------------------------------------------------
# 4. callee-save discipline
# ----------------------------------------------------------------------


def _check_callee_save(func: Function, assignment) -> None:
    saved: Dict[PhysReg, int] = {}
    for instr in func.entry.instrs:
        if (
            isinstance(instr, SpillStore)
            and instr.kind is OverheadKind.CALLEE_SAVE
            and isinstance(instr.src, PhysReg)
        ):
            saved[instr.src] = instr.slot
        else:
            break

    used = {phys for phys in assignment.values() if phys.is_callee_save}
    for phys in sorted(used - set(saved), key=lambda p: p.name):
        raise CalleeSaveError(
            f"callee-save {phys.name} is used but not saved in the prologue",
            function=func.name,
            block=func.entry.name,
        )

    for block in func.blocks:
        if not isinstance(block.terminator, Ret):
            continue
        restored: Dict[PhysReg, int] = {}
        i = len(block.instrs) - 2
        while i >= 0:
            instr = block.instrs[i]
            if (
                isinstance(instr, SpillLoad)
                and instr.kind is OverheadKind.CALLEE_SAVE
                and isinstance(instr.dst, PhysReg)
            ):
                restored[instr.dst] = instr.slot
                i -= 1
            else:
                break
        for phys in sorted(set(saved) - set(restored), key=lambda p: p.name):
            raise CalleeSaveError(
                f"callee-save {phys.name} saved in the prologue but not "
                f"restored before this return",
                function=func.name,
                block=block.name,
                index=len(block.instrs) - 1,
            )
        for phys in sorted(set(restored) - set(saved), key=lambda p: p.name):
            raise CalleeSaveError(
                f"epilogue restores {phys.name}, which the prologue "
                f"never saved",
                function=func.name,
                block=block.name,
                index=len(block.instrs) - 1,
            )
        for phys, slot in restored.items():
            if saved[phys] != slot:
                raise CalleeSaveError(
                    f"callee-save {phys.name} saved to slot "
                    f"{saved[phys]} but restored from slot {slot}",
                    function=func.name,
                    block=block.name,
                    index=len(block.instrs) - 1,
                )


# ----------------------------------------------------------------------
# 5. spill-slot consistency
# ----------------------------------------------------------------------


def _check_spill_slots(func: Function, frame_slots: int) -> None:
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, (SpillLoad, SpillStore)):
                if not 0 <= instr.slot < frame_slots:
                    raise SpillSlotError(
                        f"slot {instr.slot} outside the frame "
                        f"(0..{frame_slots - 1})",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )

    # Forward must-initialized dataflow: a slot may be read only when
    # every path from entry has written it first.  None = not yet
    # visited (TOP); the meet is set intersection over predecessors.
    blocks = reverse_postorder(func)
    preds = func.predecessors()
    out_sets: Dict[BasicBlock, Optional[FrozenSet[int]]] = {
        b: None for b in blocks
    }

    def transfer(block: BasicBlock, entry_set: Set[int]) -> Set[int]:
        current = set(entry_set)
        for instr in block.instrs:
            if isinstance(instr, SpillStore):
                current.add(instr.slot)
        return current

    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is func.entry:
                entry_set: Set[int] = set()
            else:
                incoming = [
                    out_sets[p] for p in preds[block] if out_sets[p] is not None
                ]
                if not incoming:
                    continue
                entry_set = set.intersection(*(set(s) for s in incoming))
            new_out = frozenset(transfer(block, entry_set))
            if new_out != out_sets[block]:
                out_sets[block] = new_out
                changed = True

    for block in blocks:
        if block is func.entry:
            current: Set[int] = set()
        else:
            incoming = [
                out_sets[p] for p in preds[block] if out_sets[p] is not None
            ]
            current = (
                set.intersection(*(set(s) for s in incoming))
                if incoming
                else set()
            )
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, SpillLoad) and instr.slot not in current:
                raise SpillSlotError(
                    f"slot {instr.slot} may be read before any store "
                    f"reaches it",
                    function=func.name,
                    block=block.name,
                    index=index,
                )
            if isinstance(instr, SpillStore):
                current.add(instr.slot)


# ----------------------------------------------------------------------
# 6. calling convention
# ----------------------------------------------------------------------


def _check_calling_convention(func: Function, program: Program) -> None:
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, Call):
                callee = program.functions.get(instr.callee)
                if callee is None:
                    raise CallingConventionError(
                        f"call to unknown function @{instr.callee}",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
                if len(instr.args) != len(callee.params):
                    raise CallingConventionError(
                        f"@{instr.callee} takes {len(callee.params)} "
                        f"arguments, call passes {len(instr.args)}",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
                for arg, param in zip(instr.args, callee.params):
                    if arg.vtype is not param.vtype:
                        raise CallingConventionError(
                            f"argument {arg} ({arg.vtype}) passed for "
                            f"{param} ({param.vtype}) of @{instr.callee}",
                            function=func.name,
                            block=block.name,
                            index=index,
                        )
                if instr.dst is not None:
                    if callee.return_type is None:
                        raise CallingConventionError(
                            f"@{instr.callee} returns void but the call "
                            f"expects a value",
                            function=func.name,
                            block=block.name,
                            index=index,
                        )
                    if instr.dst.vtype is not callee.return_type:
                        raise CallingConventionError(
                            f"@{instr.callee} returns "
                            f"{callee.return_type}, call stores into "
                            f"{instr.dst} ({instr.dst.vtype})",
                            function=func.name,
                            block=block.name,
                            index=index,
                        )
            elif isinstance(instr, Ret):
                if instr.value is not None and func.return_type is None:
                    raise CallingConventionError(
                        "void function returns a value",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
                if instr.value is None and func.return_type is not None:
                    raise CallingConventionError(
                        f"{func.return_type} function returns no value",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
                if (
                    instr.value is not None
                    and instr.value.vtype is not func.return_type
                ):
                    raise CallingConventionError(
                        f"returns {instr.value} ({instr.value.vtype}) "
                        f"from a {func.return_type} function",
                        function=func.name,
                        block=block.name,
                        index=index,
                    )
