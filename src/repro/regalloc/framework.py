"""The register-allocation framework driver (paper Figure 1).

Phases, in order: graph construction, live-range coalescing, color
ordering, color assignment, graph reconstruction (we rebuild), spill
code insertion, shuffle/save-restore code insertion.  Any spill —
whether decided at ordering time (base Chaitin), at assignment time
(optimistic/priority failures, storage-class analysis) or by the
shared callee-cost finalization — restarts the pipeline at the
coalescing phase, exactly as in the paper's framework.

``allocate_function`` mutates the function it is given (spill code,
save/restore code, coalesced copies); callers that need the original
should clone first — ``allocate_program`` does this for whole
programs and carries block weights across the clone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.frequency import BlockWeights
from repro.analysis.manager import (
    CALL_GRAPH,
    INSTRUCTION_KEYS,
    STATIC_WEIGHTS,
    AnalysisCache,
)
from repro.ir.clone import ProgramClone, clone_program
from repro.ir.function import Function, Program
from repro.ir.instructions import Const
from repro.ir.values import VReg
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.assign import ColorAssigner
from repro.regalloc.benefits import callee_save_cost, compute_benefits
from repro.regalloc.budget import AllocationBudget
from repro.regalloc.callcode import insert_save_restore_code
from repro.regalloc.cbh import augment_for_cbh, cbh_order_and_assign
from repro.regalloc.coalesce import coalesce_round
from repro.regalloc.errors import ConvergenceError
from repro.regalloc.interference import LiveRangeInfo, build_interference
from repro.regalloc.liverange import build_webs
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.preference import preference_decisions
from repro.regalloc.priority import priority_order
from repro.regalloc.reconstruct import reconstruct_interference
from repro.regalloc.simplify import AllocationError, simplify
from repro.regalloc.spillgen import SlotAllocator, insert_spill_code

from repro.regalloc.benefits import delta_key, max_key

#: Hard bound on allocate/spill iterations; every iteration spills at
#: least one finite-cost live range, so real programs finish in a few.
MAX_ITERATIONS = 100

#: Phase names of the allocation pipeline, in execution order.
PHASES = ("build", "coalesce", "order", "assign", "spill_insert", "emit")

#: Sub-phase names: finer splits *nested inside* the phases above
#: (``liveness``/``interference`` inside ``build``, ``simplify``
#: inside ``order``).  They are informational and never added to
#: ``total_seconds`` — their time is already counted by their parent.
SUB_PHASES = ("liveness", "interference", "simplify")


@dataclass
class PipelineStats:
    """Per-phase wall-clock cost of one allocation run.

    Phases map onto the paper's Figure 1: ``build`` covers web
    construction plus every interference(-graph) build, ``coalesce``
    the coalescing rounds, ``order`` color ordering (simplification,
    priority ordering or the CBH augmentation), ``assign`` color
    assignment, ``spill_insert`` spill-code insertion plus graph
    reconstruction, and ``emit`` the final save/restore emission.
    ``cache_hits``/``cache_misses`` count analysis-cache traffic
    attributable to the run.

    The ``liveness``/``interference``/``simplify`` fields are
    *sub-phase* splits: liveness analysis and graph construction both
    run inside ``build``, simplification inside ``order`` (priority
    ordering records no ``simplify`` time).  Their seconds are already
    included in the parent phase, so they never contribute to
    ``total_seconds``.
    """

    build: float = 0.0
    coalesce: float = 0.0
    order: float = 0.0
    assign: float = 0.0
    spill_insert: float = 0.0
    emit: float = 0.0
    liveness: float = 0.0
    interference: float = 0.0
    simplify: float = 0.0
    iterations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Copies eliminated by coalescing across all iterations.
    coalesces: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(getattr(self, phase) for phase in PHASES)

    def phase_seconds(self) -> Dict[str, float]:
        """``{phase name: seconds}`` in pipeline order."""
        return {phase: getattr(self, phase) for phase in PHASES}

    def sub_seconds(self) -> Dict[str, float]:
        """``{sub-phase name: seconds}``; nested inside phase_seconds."""
        return {name: getattr(self, name) for name in SUB_PHASES}

    def __add__(self, other: "PipelineStats") -> "PipelineStats":
        return PipelineStats(
            build=self.build + other.build,
            coalesce=self.coalesce + other.coalesce,
            order=self.order + other.order,
            assign=self.assign + other.assign,
            spill_insert=self.spill_insert + other.spill_insert,
            emit=self.emit + other.emit,
            liveness=self.liveness + other.liveness,
            interference=self.interference + other.interference,
            simplify=self.simplify + other.simplify,
            iterations=self.iterations + other.iterations,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            coalesces=self.coalesces + other.coalesces,
        )


class _PhaseTimer:
    """Accumulate ``perf_counter`` spans into one ``PipelineStats``.

    With a tracer attached, every completed phase is also recorded as
    a :class:`~repro.obs.tracer.PhaseSpan` (wall-clock start plus
    measured duration) and the tracer's phase context is kept current
    so decision events are stamped with the phase they happened in.

    With a budget attached, every phase boundary checks the wall-clock
    deadline (after notifying the tracer, so an injected fault at a
    phase site fires before the budget does), raising
    :class:`~repro.regalloc.budget.BudgetExceeded` naming the phase
    about to start.
    """

    def __init__(
        self,
        stats: PipelineStats,
        tracer: Optional["Tracer"] = None,
        budget: Optional[AllocationBudget] = None,
        function: str = "?",
    ) -> None:
        self.stats = stats
        self.tracer = tracer
        self.budget = budget
        self.function = function
        self._phase: Optional[str] = None
        self._started = 0.0
        self._wall = 0.0

    def start(self, phase: str) -> None:
        self.stop()
        self._phase = phase
        if self.tracer is not None:
            self.tracer.begin_phase(phase)
            self._wall = time.time()
        if self.budget is not None:
            self.budget.check_deadline(self.function, phase)
        self._started = time.perf_counter()

    def stop(self) -> None:
        if self._phase is not None:
            elapsed = time.perf_counter() - self._started
            setattr(
                self.stats, self._phase, getattr(self.stats, self._phase) + elapsed
            )
            if self.tracer is not None and self.tracer.wants_spans:
                self.tracer.add_span(self._phase, self._wall, elapsed)
            self._phase = None


@dataclass
class FunctionAllocation:
    """The result of allocating one function."""

    func: Function
    assignment: Dict[VReg, PhysReg]
    infos: Dict[VReg, LiveRangeInfo]
    #: Registers spilled across all iterations (original live ranges).
    spilled: List[VReg] = field(default_factory=list)
    iterations: int = 0
    frame_slots: int = 0
    #: Per-phase wall-clock timings of this function's pipeline run.
    stats: PipelineStats = field(default_factory=PipelineStats)


@dataclass
class ProgramAllocation:
    """Per-function allocations for a whole (cloned) program.

    ``clone`` keeps the original-to-clone block maps so measurements
    taken on the original program (profiles) can be applied to the
    allocated clone.
    """

    program: Program
    functions: Dict[str, FunctionAllocation]
    options: AllocatorOptions
    regfile: RegisterFile
    clone: ProgramClone
    #: IPRA extension: per-function caller-save clobber summaries used
    #: by the emission and honoured by the machine interpreter.  None
    #: means every call conservatively clobbers all caller-save regs.
    clobbers: Optional[Dict[str, FrozenSet[PhysReg]]] = None
    #: Set by ``allocate_program(resilient=True)``: the
    #: :class:`~repro.resilience.chain.ResilienceReport` describing
    #: which fallback rung produced this allocation and why any higher
    #: rung was demoted.  None on plain (non-resilient) runs.
    resilience: Optional[object] = None

    @property
    def stats(self) -> PipelineStats:
        """Aggregated pipeline timings over every function allocated."""
        total = PipelineStats()
        for allocation in self.functions.values():
            total = total + allocation.stats
        return total


def allocate_function(
    func: Function,
    regfile: RegisterFile,
    weights: BlockWeights,
    options: AllocatorOptions = AllocatorOptions(),
    reconstruct: bool = False,
    clobber_of: Optional[Dict[str, FrozenSet[PhysReg]]] = None,
    cache: Optional[AnalysisCache] = None,
    tracer: Optional["Tracer"] = None,
    budget: Optional[AllocationBudget] = None,
) -> FunctionAllocation:
    """Allocate registers for ``func`` in place.

    With ``reconstruct=True`` the interference graph is incrementally
    updated after spill-code insertion (the paper's *graph
    reconstruction* box) instead of rebuilt from scratch; results are
    bit-identical and the per-edge construction work is skipped.  (In
    this Python implementation both paths are bound by the liveness
    pass, so the wall-clock effect is small — see
    benchmarks/test_reconstruction_speed.py.)  The CBH model augments
    the graph destructively and always rebuilds.

    ``cache`` is the pipeline's analysis cache; every rewrite the
    allocator performs (web renaming, coalescing, spill code,
    save/restore code) invalidates exactly the instruction-dependent
    analyses, so CFG-shaped facts survive the whole run.  A private
    cache is used when none is given.  Per-phase wall-clock timings
    land in the returned allocation's ``stats``.

    ``tracer`` (a :class:`repro.obs.Tracer`) records every decision
    the run makes as structured events plus per-phase spans; None (the
    default) traces nothing and costs nothing.

    ``budget`` (an :class:`~repro.regalloc.budget.AllocationBudget`)
    bounds the run: the deadline is checked at every phase boundary,
    the iteration ceiling at the top of every allocate/spill iteration
    and the spill ceiling after every spill round, each raising a
    catchable :class:`~repro.regalloc.budget.BudgetExceeded`.
    """
    if options.kind == "spillall":
        from repro.regalloc.spillall import allocate_spill_everywhere

        return allocate_spill_everywhere(
            func,
            regfile,
            weights,
            options,
            clobber_of=clobber_of,
            cache=cache,
            tracer=tracer,
            budget=budget,
        )
    if cache is None:
        cache = AnalysisCache()
    stats = PipelineStats()
    timer = _PhaseTimer(stats, tracer, budget=budget, function=func.name)
    hits_before, misses_before = cache.hits, cache.misses
    if tracer is not None:
        tracer.begin_function(func.name)
        if tracer.wants_events:
            tracer.emit(
                "function_begin",
                allocator=options.label,
                callee_model=options.callee_model,
                allocator_kind=options.kind,
                optimistic=options.optimistic,
                reconstruct=reconstruct,
            )

    timer.start("build")
    build_webs(func)
    cache.invalidate(func, INSTRUCTION_KEYS)
    timer.stop()

    spill_temps: Set[VReg] = set()
    slots = SlotAllocator()
    all_spilled: List[VReg] = []
    spill_history: List[List[str]] = []
    graph = None
    infos: Dict[VReg, LiveRangeInfo] = {}

    for iteration in range(1, MAX_ITERATIONS + 1):
        if budget is not None:
            budget.check_iterations(func.name, iteration)
        if tracer is not None:
            tracer.begin_iteration(iteration)
            if tracer.wants_events:
                tracer.emit("iteration_begin", n=iteration)
        if graph is None:
            timer.start("build")
            graph, infos = build_interference(
                func, weights, spill_temps, cache, stats=stats
            )
            timer.stop()
            while options.coalesce:
                timer.start("coalesce")
                merged = coalesce_round(func, graph, infos, tracer=tracer)
                timer.stop()
                stats.coalesces += merged
                if merged == 0:
                    break
                cache.invalidate(func, INSTRUCTION_KEYS)
                timer.start("build")
                graph, infos = build_interference(
                    func, weights, spill_temps, cache, stats=stats
                )
                timer.stop()

        timer.start("order")
        if options.kind == "cbh":
            context = augment_for_cbh(func, graph, infos, regfile, weights)
            ordering, assignment = cbh_order_and_assign(
                context, graph, infos, regfile, weights, options,
                tracer=tracer, stats=stats,
            )
            timer.stop()
        else:
            benefits = compute_benefits(infos, weights, tracer=tracer)
            forced_caller: Set[VReg] = set()
            if options.pr:
                forced_caller = preference_decisions(
                    infos, benefits, weights, regfile, tracer=tracer
                )
            if options.kind == "priority":
                ordering = priority_order(
                    graph, infos, benefits, regfile, options.priority_strategy
                )
            else:
                key_fn = _simplify_key(options, benefits)
                simplify_started = time.perf_counter()
                ordering = simplify(
                    graph,
                    infos,
                    regfile,
                    key_fn=key_fn,
                    optimistic=options.optimistic,
                    spill_metric=options.spill_metric,
                    tracer=tracer,
                )
                stats.simplify += time.perf_counter() - simplify_started
            timer.start("assign")
            assigner = ColorAssigner(
                graph,
                infos,
                benefits,
                regfile,
                options,
                forced_caller=forced_caller,
                callee_cost=callee_save_cost(weights),
                tracer=tracer,
            )
            assignment = assigner.run(ordering.stack)
            timer.stop()

        spills = list(ordering.spilled) + list(assignment.spilled)
        if not spills:
            timer.start("emit")
            insert_save_restore_code(
                func, assignment.assignment, infos, slots, clobber_of,
                tracer=tracer,
            )
            cache.invalidate(func, INSTRUCTION_KEYS)
            timer.stop()
            stats.iterations = iteration
            stats.cache_hits = cache.hits - hits_before
            stats.cache_misses = cache.misses - misses_before
            if tracer is not None and tracer.wants_events:
                tracer.emit(
                    "allocation_final",
                    assigned=len(assignment.assignment),
                    spilled_total=len(all_spilled),
                    frame_slots=slots.count,
                    iterations=iteration,
                )
            return FunctionAllocation(
                func=func,
                assignment=assignment.assignment,
                infos=infos,
                spilled=all_spilled,
                iterations=iteration,
                frame_slots=slots.count,
                stats=stats,
            )
        all_spilled.extend(spills)
        spill_history.append([repr(reg) for reg in spills])
        if budget is not None:
            budget.check_spills(func.name, len(all_spilled))
        if tracer is not None and tracer.wants_events:
            tracer.emit(
                "spill_round",
                n=iteration,
                count=len(spills),
                spills=spill_history[-1],
            )
        timer.start("spill_insert")
        temps_before = set(spill_temps)
        remat_values = (
            _rematerializable(func, spills) if options.remat else None
        )
        insert_spill_code(
            func, spills, slots, spill_temps, remat_values, tracer=tracer
        )
        cache.invalidate(func, INSTRUCTION_KEYS)
        if reconstruct and options.kind != "cbh":
            reconstruct_interference(
                graph,
                infos,
                func,
                weights,
                spills,
                spill_temps - temps_before,
                cache,
            )
        else:
            graph = None
        timer.stop()

    timer.stop()
    stats.iterations = MAX_ITERATIONS
    stats.cache_hits = cache.hits - hits_before
    stats.cache_misses = cache.misses - misses_before
    raise ConvergenceError(
        func.name, MAX_ITERATIONS, spill_history=spill_history, stats=stats
    )


def _rematerializable(func: Function, spills) -> Dict[VReg, float]:
    """Spilled registers whose every definition is one known constant.

    Such values need no frame slot: each use can re-emit the constant
    (Briggs-style rematerialization).  Parameters never qualify (their
    value arrives from the caller).
    """
    spill_set = set(spills) - set(func.params)
    values: Dict[VReg, float] = {}
    poisoned = set()
    for instr in func.instructions():
        for reg in instr.defs():
            if reg not in spill_set or reg in poisoned:
                continue
            if isinstance(instr, Const):
                if reg in values and values[reg] != instr.value:
                    poisoned.add(reg)
                    values.pop(reg, None)
                else:
                    values[reg] = instr.value
            else:
                poisoned.add(reg)
                values.pop(reg, None)
    return values


def _simplify_key(
    options: AllocatorOptions, benefits
) -> Optional[Callable[[VReg], float]]:
    if not options.bs:
        return None
    key = delta_key if options.bs_key == "delta" else max_key

    def key_fn(reg: VReg) -> float:
        return key(benefits[reg])

    return key_fn


def allocate_program(
    program: Program,
    regfile: RegisterFile,
    options: AllocatorOptions = AllocatorOptions(),
    weights_for: Optional[Callable[[Function], BlockWeights]] = None,
    reconstruct: bool = False,
    ipra: bool = False,
    cache: Optional[AnalysisCache] = None,
    tracer: Optional["Tracer"] = None,
    budget: Optional[AllocationBudget] = None,
    resilient: bool = False,
) -> ProgramAllocation:
    """Clone ``program`` and allocate every function of the clone.

    ``weights_for`` maps each *original* function to the block weights
    the allocator should use (static estimates by default); the
    weights are translated onto the clone automatically.

    ``cache`` is shared across the whole run (and, when a caller such
    as the measurement runner passes a persistent one, across runs):
    analyses of the *original* program — static weight estimates, the
    call graph — are keyed on objects that never mutate, so a sweep
    over many register configurations computes them exactly once.

    ``ipra`` enables interprocedural save elision (extension):
    functions are allocated callees-first, each function's set of
    possibly-written caller-save registers is summarized, and a caller
    skips the save/restore of a crossing live range at calls whose
    callee provably leaves its register alone.  Recursive functions
    (call-graph cycles) get conservative all-clobbering summaries.

    ``budget`` bounds the run (see :func:`allocate_function`); its
    wall clock is (re)started here, so a deadline covers this one
    program allocation.  ``resilient=True`` routes the call through
    the fallback chain (:mod:`repro.resilience`): the chain retries
    with degraded option sets down to the spill-everywhere allocator
    until the verifier accepts a result, attaches the
    ``ResilienceReport`` to the returned allocation's ``resilience``
    field, and guarantees an allocation comes back for every program
    the register file can hold at all.
    """
    if resilient:
        # Lazy import: the chain drives allocate_program itself, so
        # the dependency must point resilience -> regalloc only.
        from repro.resilience.chain import resilient_allocate_program

        allocation, report = resilient_allocate_program(
            program,
            regfile,
            options,
            weights_for=weights_for,
            reconstruct=reconstruct,
            ipra=ipra,
            cache=cache,
            tracer=tracer,
            budget=budget,
        )
        allocation.resilience = report
        return allocation
    if budget is not None:
        budget.start()
    if cache is None:
        cache = AnalysisCache()
    if weights_for is None:
        weights_for = lambda f: cache.get(f, STATIC_WEIGHTS)  # noqa: E731
    cloned = clone_program(program)
    allocations: Dict[str, FunctionAllocation] = {}

    order = list(cloned.functions)
    summaries: Optional[Dict[str, FrozenSet[PhysReg]]] = None
    if ipra:
        # The call graph only names callers and callees, so the one
        # computed on the (immutable) original serves every clone.
        graph = cache.get_program(program, CALL_GRAPH)
        order = [name for name in graph.bottom_up() if name in cloned.functions]
        all_caller_save = frozenset(
            phys for phys in regfile.all_registers() if phys.is_caller_save
        )
        # Cycle members are conservatively all-clobbering, and stay so.
        summaries = {
            name: all_caller_save
            for name in cloned.functions
            if graph.is_recursive(name)
        }

    for name in order:
        record = cloned.functions[name]
        original = program.functions[name]
        weights = weights_for(original)
        translated = BlockWeights(
            weights={
                record.block_map[block]: weight
                for block, weight in weights.weights.items()
            },
            entry_weight=weights.entry_weight,
        )
        allocations[name] = allocate_function(
            record.func,
            regfile,
            translated,
            options,
            reconstruct=reconstruct,
            clobber_of=summaries if ipra else None,
            cache=cache,
            tracer=tracer,
            budget=budget,
        )
        if ipra and name not in summaries:
            own = frozenset(
                phys
                for phys in allocations[name].assignment.values()
                if phys.is_caller_save
            )
            callees = graph.callees.get(name, set())
            summaries[name] = own.union(
                *(summaries[callee] for callee in callees)
            ) if callees else own

    return ProgramAllocation(
        program=cloned.program,
        functions=allocations,
        options=options,
        regfile=regfile,
        clone=cloned,
        clobbers=summaries if ipra else None,
    )
