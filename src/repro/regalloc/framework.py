"""The register-allocation framework driver (paper Figure 1).

Phases, in order: graph construction, live-range coalescing, color
ordering, color assignment, graph reconstruction (we rebuild), spill
code insertion, shuffle/save-restore code insertion.  Any spill —
whether decided at ordering time (base Chaitin), at assignment time
(optimistic/priority failures, storage-class analysis) or by the
shared callee-cost finalization — restarts the pipeline at the
coalescing phase, exactly as in the paper's framework.

``allocate_function`` mutates the function it is given (spill code,
save/restore code, coalesced copies); callers that need the original
should clone first — ``allocate_program`` does this for whole
programs and carries block weights across the clone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from repro.analysis.frequency import BlockWeights, static_weights
from repro.ir.clone import ProgramClone, clone_program
from repro.ir.function import Function, Program
from repro.ir.instructions import Const
from repro.ir.values import VReg
from repro.analysis.callgraph import build_call_graph
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.assign import ColorAssigner
from repro.regalloc.benefits import callee_save_cost, compute_benefits
from repro.regalloc.callcode import insert_save_restore_code
from repro.regalloc.cbh import augment_for_cbh, cbh_order_and_assign
from repro.regalloc.coalesce import coalesce_round
from repro.regalloc.interference import LiveRangeInfo, build_interference
from repro.regalloc.liverange import build_webs
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.preference import preference_decisions
from repro.regalloc.priority import priority_order
from repro.regalloc.reconstruct import reconstruct_interference
from repro.regalloc.simplify import AllocationError, simplify
from repro.regalloc.spillgen import SlotAllocator, insert_spill_code

from repro.regalloc.benefits import delta_key, max_key

#: Hard bound on allocate/spill iterations; every iteration spills at
#: least one finite-cost live range, so real programs finish in a few.
MAX_ITERATIONS = 100


@dataclass
class FunctionAllocation:
    """The result of allocating one function."""

    func: Function
    assignment: Dict[VReg, PhysReg]
    infos: Dict[VReg, LiveRangeInfo]
    #: Registers spilled across all iterations (original live ranges).
    spilled: List[VReg] = field(default_factory=list)
    iterations: int = 0
    frame_slots: int = 0


@dataclass
class ProgramAllocation:
    """Per-function allocations for a whole (cloned) program.

    ``clone`` keeps the original-to-clone block maps so measurements
    taken on the original program (profiles) can be applied to the
    allocated clone.
    """

    program: Program
    functions: Dict[str, FunctionAllocation]
    options: AllocatorOptions
    regfile: RegisterFile
    clone: ProgramClone
    #: IPRA extension: per-function caller-save clobber summaries used
    #: by the emission and honoured by the machine interpreter.  None
    #: means every call conservatively clobbers all caller-save regs.
    clobbers: Optional[Dict[str, FrozenSet[PhysReg]]] = None


def allocate_function(
    func: Function,
    regfile: RegisterFile,
    weights: BlockWeights,
    options: AllocatorOptions = AllocatorOptions(),
    reconstruct: bool = False,
    clobber_of: Optional[Dict[str, FrozenSet[PhysReg]]] = None,
) -> FunctionAllocation:
    """Allocate registers for ``func`` in place.

    With ``reconstruct=True`` the interference graph is incrementally
    updated after spill-code insertion (the paper's *graph
    reconstruction* box) instead of rebuilt from scratch; results are
    bit-identical and the per-edge construction work is skipped.  (In
    this Python implementation both paths are bound by the liveness
    pass, so the wall-clock effect is small — see
    benchmarks/test_reconstruction_speed.py.)  The CBH model augments
    the graph destructively and always rebuilds.
    """
    build_webs(func)
    spill_temps: Set[VReg] = set()
    slots = SlotAllocator()
    all_spilled: List[VReg] = []
    graph = None
    infos: Dict[VReg, LiveRangeInfo] = {}

    for iteration in range(1, MAX_ITERATIONS + 1):
        if graph is None:
            graph, infos = build_interference(func, weights, spill_temps)
            while coalesce_round(func, graph, infos) > 0:
                graph, infos = build_interference(func, weights, spill_temps)

        if options.kind == "cbh":
            context = augment_for_cbh(func, graph, infos, regfile, weights)
            ordering, assignment = cbh_order_and_assign(
                context, graph, infos, regfile, weights, options
            )
        else:
            benefits = compute_benefits(infos, weights)
            forced_caller: Set[VReg] = set()
            if options.pr:
                forced_caller = preference_decisions(
                    infos, benefits, weights, regfile
                )
            if options.kind == "priority":
                ordering = priority_order(
                    graph, infos, benefits, regfile, options.priority_strategy
                )
            else:
                key_fn = _simplify_key(options, benefits)
                ordering = simplify(
                    graph,
                    infos,
                    regfile,
                    key_fn=key_fn,
                    optimistic=options.optimistic,
                    spill_metric=options.spill_metric,
                )
            assigner = ColorAssigner(
                graph,
                infos,
                benefits,
                regfile,
                options,
                forced_caller=forced_caller,
                callee_cost=callee_save_cost(weights),
            )
            assignment = assigner.run(ordering.stack)

        spills = list(ordering.spilled) + list(assignment.spilled)
        if not spills:
            insert_save_restore_code(
                func, assignment.assignment, infos, slots, clobber_of
            )
            return FunctionAllocation(
                func=func,
                assignment=assignment.assignment,
                infos=infos,
                spilled=all_spilled,
                iterations=iteration,
                frame_slots=slots.count,
            )
        all_spilled.extend(spills)
        temps_before = set(spill_temps)
        remat_values = (
            _rematerializable(func, spills) if options.remat else None
        )
        insert_spill_code(func, spills, slots, spill_temps, remat_values)
        if reconstruct and options.kind != "cbh":
            reconstruct_interference(
                graph, infos, func, weights, spills, spill_temps - temps_before
            )
        else:
            graph = None

    raise AllocationError(
        f"{func.name}: register allocation did not converge after "
        f"{MAX_ITERATIONS} iterations"
    )


def _rematerializable(func: Function, spills) -> Dict[VReg, float]:
    """Spilled registers whose every definition is one known constant.

    Such values need no frame slot: each use can re-emit the constant
    (Briggs-style rematerialization).  Parameters never qualify (their
    value arrives from the caller).
    """
    spill_set = set(spills) - set(func.params)
    values: Dict[VReg, float] = {}
    poisoned = set()
    for instr in func.instructions():
        for reg in instr.defs():
            if reg not in spill_set or reg in poisoned:
                continue
            if isinstance(instr, Const):
                if reg in values and values[reg] != instr.value:
                    poisoned.add(reg)
                    values.pop(reg, None)
                else:
                    values[reg] = instr.value
            else:
                poisoned.add(reg)
                values.pop(reg, None)
    return values


def _simplify_key(
    options: AllocatorOptions, benefits
) -> Optional[Callable[[VReg], float]]:
    if not options.bs:
        return None
    key = delta_key if options.bs_key == "delta" else max_key

    def key_fn(reg: VReg) -> float:
        return key(benefits[reg])

    return key_fn


def allocate_program(
    program: Program,
    regfile: RegisterFile,
    options: AllocatorOptions = AllocatorOptions(),
    weights_for: Optional[Callable[[Function], BlockWeights]] = None,
    reconstruct: bool = False,
    ipra: bool = False,
) -> ProgramAllocation:
    """Clone ``program`` and allocate every function of the clone.

    ``weights_for`` maps each *original* function to the block weights
    the allocator should use (static estimates by default); the
    weights are translated onto the clone automatically.

    ``ipra`` enables interprocedural save elision (extension):
    functions are allocated callees-first, each function's set of
    possibly-written caller-save registers is summarized, and a caller
    skips the save/restore of a crossing live range at calls whose
    callee provably leaves its register alone.  Recursive functions
    (call-graph cycles) get conservative all-clobbering summaries.
    """
    if weights_for is None:
        weights_for = static_weights
    cloned = clone_program(program)
    allocations: Dict[str, FunctionAllocation] = {}

    order = list(cloned.functions)
    summaries: Optional[Dict[str, FrozenSet[PhysReg]]] = None
    if ipra:
        graph = build_call_graph(cloned.program)
        order = [name for name in graph.bottom_up() if name in cloned.functions]
        all_caller_save = frozenset(
            phys for phys in regfile.all_registers() if phys.is_caller_save
        )
        # Cycle members are conservatively all-clobbering, and stay so.
        summaries = {
            name: all_caller_save
            for name in cloned.functions
            if graph.is_recursive(name)
        }

    for name in order:
        record = cloned.functions[name]
        original = program.functions[name]
        weights = weights_for(original)
        translated = BlockWeights(
            weights={
                record.block_map[block]: weight
                for block, weight in weights.weights.items()
            },
            entry_weight=weights.entry_weight,
        )
        allocations[name] = allocate_function(
            record.func,
            regfile,
            translated,
            options,
            reconstruct=reconstruct,
            clobber_of=summaries if ipra else None,
        )
        if ipra and name not in summaries:
            own = frozenset(
                phys
                for phys in allocations[name].assignment.values()
                if phys.is_caller_save
            )
            callees = graph.callees.get(name, set())
            summaries[name] = own.union(
                *(summaries[callee] for callee in callees)
            ) if callees else own

    return ProgramAllocation(
        program=cloned.program,
        functions=allocations,
        options=options,
        regfile=regfile,
        clone=cloned,
        clobbers=summaries if ipra else None,
    )
