"""Allocator configuration: which allocator, with which enhancements.

``AllocatorOptions`` captures every dimension the paper evaluates:

* ``kind`` — the base algorithm: ``chaitin`` (also the base for
  optimistic and improved variants), ``priority``, ``cbh``, or
  ``spillall`` (the last-resort spill-everywhere allocator used as
  the bottom rung of the resilience fallback chain).
* ``optimistic`` — defer blocking spills to color assignment
  (Briggs-style optimistic coloring).
* ``sc`` / ``bs`` / ``pr`` — the paper's three improvements:
  storage-class analysis, benefit-driven simplification, preference
  decision.
* ``callee_model`` — how storage-class analysis charges the
  callee-save cost: ``shared`` (default, the paper's better variant)
  or ``first`` (first user pays everything).
* ``bs_key`` — simplification key: ``delta`` (the paper's choice) or
  ``max`` (the priority-style key, kept for the ablation).
* ``priority_strategy`` — stack-building strategy for priority-based
  coloring: ``sorting`` (the paper's choice), ``sort_unconstrained``
  or ``remove_unconstrained``.

The named constructors cover every configuration the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

_KINDS = ("chaitin", "priority", "cbh", "spillall")
_CALLEE_MODELS = ("shared", "first")
_BS_KEYS = ("delta", "max")
_SPILL_METRICS = ("cost_over_degree", "cost_over_degree_sq", "cost")


@dataclass(frozen=True)
class AllocatorOptions:
    kind: str = "chaitin"
    optimistic: bool = False
    sc: bool = False
    bs: bool = False
    pr: bool = False
    callee_model: str = "shared"
    bs_key: str = "delta"
    priority_strategy: str = "sorting"
    #: Briggs-style rematerialization: spilled constant-valued live
    #: ranges re-emit their constant instead of reloading (extension;
    #: cited by the paper as complementary spill-minimization work).
    remat: bool = False
    #: Blocking-spill candidate metric (extension; the paper cites
    #: Bernstein et al.'s spill-heuristic study): Chaitin's
    #: ``cost_over_degree`` (default), Bernstein's square-law
    #: ``cost_over_degree_sq``, or plain ``cost`` (what CBH uses).
    spill_metric: str = "cost_over_degree"
    #: Run live-range coalescing rounds (resilience extension: the
    #: fallback chain's degraded rungs turn coalescing off).
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown allocator kind {self.kind!r}")
        if self.callee_model not in _CALLEE_MODELS:
            raise ValueError(f"unknown callee model {self.callee_model!r}")
        if self.bs_key not in _BS_KEYS:
            raise ValueError(f"unknown simplification key {self.bs_key!r}")
        if self.kind == "cbh" and (self.sc or self.bs or self.pr):
            raise ValueError("the CBH model does not take SC/BS/PR enhancements")
        if self.kind == "priority" and self.optimistic:
            raise ValueError("priority-based coloring is inherently optimistic")
        if self.kind == "spillall" and (
            self.sc
            or self.bs
            or self.pr
            or self.optimistic
            or self.remat
            or self.coalesce
        ):
            raise ValueError(
                "the spill-everywhere allocator takes no enhancements "
                "(construct it via AllocatorOptions.spill_everywhere())"
            )
        if self.spill_metric not in _SPILL_METRICS:
            raise ValueError(f"unknown spill metric {self.spill_metric!r}")

    # ------------------------------------------------------------------
    # the configurations used throughout the paper
    # ------------------------------------------------------------------

    @staticmethod
    def base_chaitin() -> "AllocatorOptions":
        """The paper's base model (Section 3.1)."""
        return AllocatorOptions(kind="chaitin")

    @staticmethod
    def optimistic_coloring() -> "AllocatorOptions":
        """Briggs-style optimistic coloring over the base model."""
        return AllocatorOptions(kind="chaitin", optimistic=True)

    @staticmethod
    def improved_chaitin(
        sc: bool = True, bs: bool = True, pr: bool = True
    ) -> "AllocatorOptions":
        """Improved Chaitin-style coloring (SC+BS+PR by default)."""
        return AllocatorOptions(kind="chaitin", sc=sc, bs=bs, pr=pr)

    @staticmethod
    def improved_optimistic() -> "AllocatorOptions":
        """Improved Chaitin-style coloring integrated with optimistic."""
        return AllocatorOptions(
            kind="chaitin", optimistic=True, sc=True, bs=True, pr=True
        )

    @staticmethod
    def priority_based(strategy: str = "sorting") -> "AllocatorOptions":
        """Chow's priority-based coloring, without live-range splitting."""
        return AllocatorOptions(kind="priority", priority_strategy=strategy)

    @staticmethod
    def cbh() -> "AllocatorOptions":
        """The Chaitin/Briggs-Hierarchical call-cost model (Section 10)."""
        return AllocatorOptions(kind="cbh")

    @staticmethod
    def spill_everywhere() -> "AllocatorOptions":
        """The last-resort allocator: every live range lives in memory.

        Correct by construction (Bouchez et al. treat this regime as
        the well-understood baseline): only the tiny reload/store
        temporaries — which never cross calls and never block each
        other beyond one instruction's operands — need registers.  The
        resilience fallback chain ends here.
        """
        return AllocatorOptions(kind="spillall", coalesce=False)

    def with_(self, **changes) -> "AllocatorOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def label(self) -> str:
        """Short human-readable name used in reports."""
        if self.kind == "spillall":
            return "spillall"
        if self.kind == "cbh":
            return "CBH"
        if self.kind == "priority":
            return f"priority({self.priority_strategy})"
        parts = []
        if self.sc:
            parts.append("SC")
        if self.bs:
            parts.append("BS")
        if self.pr:
            parts.append("PR")
        name = "chaitin" if not self.optimistic else "optimistic"
        return f"{name}+{'+'.join(parts)}" if parts else name


#: The six allocator presets every comparison in the paper uses, plus
#: the last-resort spill-everywhere allocator, by their CLI names.
#: The CLI, the sweep drivers and the fuzz harness all share this one
#: table (the fuzz differential harness covers ``spillall`` too, so
#: the resilience chain's bottom rung gets the same source-vs-machine
#: execution scrutiny as the real allocators).
PRESETS = {
    "base": AllocatorOptions.base_chaitin,
    "optimistic": AllocatorOptions.optimistic_coloring,
    "improved": AllocatorOptions.improved_chaitin,
    "improved-optimistic": AllocatorOptions.improved_optimistic,
    "priority": AllocatorOptions.priority_based,
    "cbh": AllocatorOptions.cbh,
    "spillall": AllocatorOptions.spill_everywhere,
}
