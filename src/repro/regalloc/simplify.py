"""Simplification: Chaitin's color ordering, with the paper's twists.

Simplification repeatedly removes an *unconstrained* node (degree less
than the number of registers in its bank) and pushes it onto the color
stack; color assignment later pops the stack, so the last node removed
is colored first and enjoys the most freedom.

When every remaining node is constrained, simplification *blocks* and
a spill candidate is chosen (minimal ``spill_cost / degree``, or plain
``spill_cost`` for the CBH model).  Base Chaitin spills the candidate
immediately (it goes to the spill pool); optimistic coloring pushes it
onto the stack anyway and lets color assignment decide.

**Benefit-driven simplification** (paper Section 5) is the ``key_fn``
hook: when several nodes are unconstrained, the one with the smallest
key is removed first, leaving large-key nodes — those with the most to
lose from the wrong register kind — on top of the stack.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.bitset import popcount
from repro.ir.values import VReg
from repro.machine.registers import RegisterFile
from repro.regalloc.errors import AllocationError  # noqa: F401  (re-export)
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo


@dataclass
class OrderingResult:
    """Output of a color-ordering phase.

    ``stack`` is the color stack with the top at the end of the list.
    ``spilled`` is the spill pool contribution (base Chaitin spills at
    ordering time).  ``optimistic`` marks nodes pushed despite being
    blocked, whose coloring may still fail.
    """

    stack: List[VReg] = field(default_factory=list)
    spilled: List[VReg] = field(default_factory=list)
    optimistic: Set[VReg] = field(default_factory=set)


def simplify(
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    regfile: RegisterFile,
    key_fn: Optional[Callable[[VReg], float]] = None,
    optimistic: bool = False,
    spill_metric: str = "cost_over_degree",
    num_regs: Optional[Callable[[VReg], int]] = None,
    never_simplify: Optional[Set[VReg]] = None,
    tracer: Optional["Tracer"] = None,
) -> OrderingResult:
    """Run simplification to an empty graph.

    ``num_regs`` overrides the per-node register budget (the CBH model
    shrinks it for call-crossing ranges); ``never_simplify`` is unused
    by the standard allocators but lets callers pin nodes so they can
    only leave the graph through a blocking spill.  ``tracer`` records
    every pop (with its benefit key) and every blocking spill.
    """
    if num_regs is None:
        def num_regs(reg: VReg) -> int:  # noqa: ANN001 - local default
            return regfile.bank(reg.vtype).num_regs

    # Kernel state lives in the graph's slot space (see
    # InterferenceGraph): node membership is one bitmask, per-slot
    # degrees an array maintained incrementally as nodes leave.  Every
    # graph slot is live here (retired slots carry no bits), so the
    # initial degree is the adjacency popcount.
    slots = graph._adj
    regs = graph._regs
    size = len(regs)
    degrees: List[int] = [0] * size
    budgets: List[int] = [0] * size
    remaining = 0
    for reg, slot in graph._index.items():
        degrees[slot] = popcount(slots[slot])
        budgets[slot] = num_regs(reg)
        remaining |= 1 << slot
    pinned = 0
    if never_simplify:
        for reg in never_simplify:
            slot = graph._index.get(reg)
            if slot is not None:
                pinned |= 1 << slot
    result = OrderingResult()

    # Lazy min-heap over currently-unconstrained nodes.  Entries go
    # stale when a node is removed; staleness is detected on pop.
    def key_of(reg: VReg) -> float:
        return key_fn(reg) if key_fn is not None else 0.0

    heap: List = []
    in_heap = 0

    def consider(slot: int) -> None:
        nonlocal in_heap
        bit = 1 << slot
        if remaining & bit and not (in_heap | pinned) & bit:
            if degrees[slot] < budgets[slot]:
                reg = regs[slot]
                heapq.heappush(heap, (key_of(reg), reg.id, slot))
                in_heap |= bit

    mask = remaining
    while mask:
        low = mask & -mask
        consider(low.bit_length() - 1)
        mask ^= low

    def remove(slot: int) -> None:
        nonlocal remaining, in_heap
        bit = 1 << slot
        remaining &= ~bit
        in_heap &= ~bit
        neighbors = slots[slot] & remaining
        while neighbors:
            low = neighbors & -neighbors
            neighbor = low.bit_length() - 1
            degrees[neighbor] -= 1
            consider(neighbor)
            neighbors ^= low

    trace = tracer is not None and tracer.wants_events
    while remaining:
        while heap:
            _key, _tie, slot = heapq.heappop(heap)
            bit = 1 << slot
            if remaining & bit and in_heap & bit:
                reg = regs[slot]
                if trace:
                    tracer.emit(
                        "simplify_pop", reg, degree=degrees[slot], key=_key
                    )
                remove(slot)
                result.stack.append(reg)
                break
        else:
            # Blocked: every remaining node is constrained (or pinned).
            slot = _choose_spill(remaining, regs, infos, degrees, spill_metric)
            candidate = regs[slot]
            if trace:
                tracer.emit(
                    "optimistic_push" if optimistic else "ordering_spill",
                    candidate,
                    metric=spill_metric,
                    value=_metric_value(
                        infos[candidate].spill_cost,
                        degrees[slot],
                        spill_metric,
                    ),
                    spill_cost=infos[candidate].spill_cost,
                    degree=degrees[slot],
                )
            remove(slot)
            if optimistic:
                result.stack.append(candidate)
                result.optimistic.add(candidate)
            else:
                result.spilled.append(candidate)
    return result


def _metric_value(cost: float, degree: int, metric: str) -> float:
    """The spill-candidate ranking value under ``metric``."""
    if metric == "cost_over_degree":
        return cost / max(degree, 1)
    if metric == "cost_over_degree_sq":
        return cost / max(degree, 1) ** 2
    return cost


def _choose_spill(
    remaining: int,
    regs: List[Optional[VReg]],
    infos: Dict[VReg, LiveRangeInfo],
    degrees: List[int],
    metric: str,
) -> int:
    """Pick the slot of the cheapest node to spill among ``remaining``."""
    best: Optional[int] = None
    best_id = -1
    best_value = math.inf
    mask = remaining
    while mask:
        low = mask & -mask
        slot = low.bit_length() - 1
        mask ^= low
        reg = regs[slot]
        value = _metric_value(infos[reg].spill_cost, degrees[slot], metric)
        if value < best_value or (
            value == best_value and (best is None or reg.id < best_id)
        ):
            best = slot
            best_id = reg.id
            best_value = value
    if best is None or math.isinf(infos[regs[best]].spill_cost):
        raise AllocationError(
            "simplification blocked with only unspillable live ranges; "
            "the register file is too small for this function"
        )
    return best
