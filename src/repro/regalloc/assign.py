"""Color assignment, including storage-class analysis (paper Section 4).

The assigner pops live ranges off the color stack and gives each a
register its already-colored neighbors do not hold.  The choices that
distinguish the allocators all live here:

* **Register-kind preference.**  The base model prefers callee-save
  for call-crossing ranges and caller-save otherwise.  With
  storage-class analysis the preference comes from the benefit
  functions (``benefit_callee > benefit_caller``), overridden by the
  preference-decision pre-pass where it fired.  Within the callee-save
  kind, registers already holding other live ranges are tried first,
  so callee-save save/restore cost is shared as widely as possible.
* **Spilling instead of the wrong register.**  With storage-class
  analysis a range about to take a caller-save register with negative
  ``benefit_caller`` is spilled instead.  Callee-save candidates
  follow one of two models: *first-user* (the first occupant of a
  callee-save register pays its whole cost: spill if
  ``benefit_callee < 0``; later occupants ride free) or *shared*
  (tentatively assign everyone, and once assignment finishes spill the
  whole occupant set of any register whose summed spill costs fall
  short of the register's save/restore cost).
* **Assignment failure.**  Optimistically pushed or priority-ordered
  nodes may find no register at all; they are spilled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.ir.values import VReg
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.benefits import Benefits
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo
from repro.regalloc.options import AllocatorOptions


@dataclass
class AssignmentResult:
    """Output of one color-assignment pass."""

    assignment: Dict[VReg, PhysReg] = field(default_factory=dict)
    spilled: List[VReg] = field(default_factory=list)


class ColorAssigner:
    """Assigns physical registers to the live ranges on a color stack."""

    def __init__(
        self,
        graph: InterferenceGraph,
        infos: Dict[VReg, LiveRangeInfo],
        benefits: Dict[VReg, Benefits],
        regfile: RegisterFile,
        options: AllocatorOptions,
        forced_caller: Optional[Set[VReg]] = None,
        callee_cost: float = 0.0,
        tracer: Optional["Tracer"] = None,
    ):
        self.graph = graph
        self.infos = infos
        self.benefits = benefits
        self.regfile = regfile
        self.options = options
        self.forced_caller = forced_caller or set()
        self.callee_cost = callee_cost
        self.tracer = tracer
        #: Live ranges currently occupying each callee-save register.
        self.callee_users: Dict[PhysReg, List[VReg]] = {}
        #: Kernel-side mirror of the assignment: per graph slot the
        #: chosen register, plus a mask of colored slots, so the taken
        #: set of a node is its adjacency mask AND the colored mask.
        self._phys_by_slot: List[Optional[PhysReg]] = [None] * len(
            graph._regs
        )
        self._colored = 0
        #: Per value type, the bank's (callee, caller) register tuples
        #: — hoisted out of the per-node picking loop.
        self._banks = {
            bank.vtype: (tuple(bank.callee), tuple(bank.caller))
            for bank in regfile.banks
        }

    def run(self, stack: Sequence[VReg]) -> AssignmentResult:
        result = AssignmentResult()
        for reg in reversed(stack):  # top of stack first
            self._assign_one(reg, result)
        if self.options.sc and self.options.callee_model == "shared":
            self._finalize_shared(result)
        return result

    # ------------------------------------------------------------------

    def _record(self, reg: VReg, chosen: PhysReg, result: AssignmentResult) -> None:
        """Install one coloring in the result and the slot mirror."""
        result.assignment[reg] = chosen
        slot = self.graph._index.get(reg)
        if slot is not None:
            self._phys_by_slot[slot] = chosen
            self._colored |= 1 << slot

    def _assign_one(self, reg: VReg, result: AssignmentResult) -> None:
        slot = self.graph._index.get(reg)
        taken: Set[PhysReg] = set()
        if slot is not None:
            colored = self.graph._adj[slot] & self._colored
            phys_by_slot = self._phys_by_slot
            while colored:
                low = colored & -colored
                taken.add(phys_by_slot[low.bit_length() - 1])
                colored ^= low
        trace = self.tracer is not None and self.tracer.wants_events
        chosen = self._pick_register(reg, taken)
        if chosen is None:
            if trace:
                self.tracer.emit(
                    "assign_spill", reg, neighbors_colored=len(taken)
                )
            result.spilled.append(reg)
            return
        if self.options.sc and self._spill_instead(reg, chosen):
            if trace:
                benefits = self.benefits[reg]
                reason = (
                    f"negative benefit_caller ({benefits.caller:g})"
                    if chosen.is_caller_save
                    else "first callee-save user with negative "
                    f"benefit_callee ({benefits.callee:g})"
                )
                self.tracer.emit(
                    "voluntary_spill",
                    reg,
                    register=chosen.name,
                    reason=reason,
                    benefit_caller=benefits.caller,
                    benefit_callee=benefits.callee,
                )
            result.spilled.append(reg)
            return
        if trace:
            benefits = self.benefits.get(reg)
            self.tracer.emit(
                "assign",
                reg,
                register=chosen.name,
                storage_class="callee-save"
                if chosen.is_callee_save
                else "caller-save",
                benefit_caller=None if benefits is None else benefits.caller,
                benefit_callee=None if benefits is None else benefits.callee,
                prefers_callee=self._prefers_callee(reg),
                forced_caller=reg in self.forced_caller,
            )
            if (
                self.options.sc
                and self.options.callee_model == "shared"
                and chosen.is_callee_save
            ):
                self.tracer.emit("shared_defer", reg, register=chosen.name)
        self._record(reg, chosen, result)
        if chosen.is_callee_save:
            self.callee_users.setdefault(chosen, []).append(reg)

    def _pick_register(self, reg: VReg, taken: Set[PhysReg]) -> Optional[PhysReg]:
        callee, caller = self._banks[reg.vtype]
        if self._prefers_callee(reg):
            groups = (self._callee_order(callee), caller)
        else:
            groups = (caller, self._callee_order(callee))
        for group in groups:
            for candidate in group:
                if candidate not in taken:
                    return candidate
        return None

    def _prefers_callee(self, reg: VReg) -> bool:
        if self.options.sc:
            if reg in self.forced_caller:
                return False
            return self.benefits[reg].prefers_callee
        return self.infos[reg].crosses_calls

    def _callee_order(self, callee: Sequence[PhysReg]) -> List[PhysReg]:
        """Callee-save registers, already-occupied ones first."""
        users = self.callee_users
        if not users:
            return list(callee)
        used: List[PhysReg] = []
        unused: List[PhysReg] = []
        for phys in callee:
            (used if phys in users else unused).append(phys)
        return used + unused

    # ------------------------------------------------------------------
    # storage-class analysis spill decisions
    # ------------------------------------------------------------------

    def _spill_instead(self, reg: VReg, chosen: PhysReg) -> bool:
        benefits = self.benefits[reg]
        if chosen.is_caller_save:
            return benefits.caller < 0
        if self.options.callee_model == "first":
            first_user = chosen not in self.callee_users
            return first_user and benefits.callee < 0
        return False  # shared model defers to _finalize_shared

    def _finalize_shared(self, result: AssignmentResult) -> None:
        """Spill whole occupant sets of unprofitable callee-save regs.

        For a callee-save register ``r`` occupied by live ranges
        ``U``: if ``sum(spill_cost(u)) < callee_cost`` then paying the
        save/restore is worse than spilling every occupant.
        """
        trace = self.tracer is not None and self.tracer.wants_events
        for phys, users in self.callee_users.items():
            live_users = [u for u in users if u in result.assignment]
            if not live_users:
                continue
            total = sum(self.infos[u].spill_cost for u in live_users)
            unprofitable = total < self.callee_cost
            if trace:
                self.tracer.emit(
                    "shared_resolution",
                    register=phys.name,
                    users=[repr(u) for u in live_users],
                    total_cost=total,
                    callee_cost=self.callee_cost,
                    verdict="spill occupants" if unprofitable else "keep",
                )
            if unprofitable:
                for user in live_users:
                    del result.assignment[user]
                    result.spilled.append(user)
