"""Structured allocator errors.

Every failure the allocator (or the post-allocation verifier) can
report derives from :class:`AllocationError`.  Errors raised while
looking at a particular program point carry the function, block and
instruction index as fields — fuzz reports and verifier output name
the exact site instead of forcing a debugger session.

The hierarchy:

* ``AllocationError`` — anything the allocation pipeline can raise.

  * ``ConvergenceError`` — the allocate/spill iteration hit its hard
    bound; carries the per-iteration spill history and partial
    pipeline stats so reports can show *why* coloring diverged.
  * ``AllocationContextError`` — adds ``function`` / ``block`` /
    ``index`` context fields.

    * ``UnexpectedInstructionError`` — an internal invariant of the
      emission phase was violated (e.g. a recorded call site no
      longer holds a call).
    * ``WebConstructionError`` — web renaming broke an invariant
      (e.g. a parameter lost its register).
    * ``AllocationVerificationError`` — base of everything the
      independent verifier (:mod:`repro.regalloc.verify`) reports;
      ``check`` names the violated invariant.

      * ``RegisterConflictError`` — two simultaneously-live ranges
        share a physical register.
      * ``BankMismatchError`` — an assignment uses a register from
        the wrong bank, or one outside the configured file.
      * ``CallerSaveError`` — a caller-save register live across a
        call is not saved/restored correctly around it.
      * ``CalleeSaveError`` — a used callee-save register is not
        saved in the prologue or restored in some epilogue.
      * ``SpillSlotError`` — a frame slot is read before any write
        reaches it, or a slot index is out of range.
      * ``CallingConventionError`` — a call site or return does not
        match the callee's signature.
"""

from __future__ import annotations

from typing import List, Optional


class AllocationError(Exception):
    """The allocator cannot make progress (e.g. only unspillable nodes)."""


class ConvergenceError(AllocationError):
    """The allocate/spill iteration exceeded its hard bound.

    Every iteration is supposed to spill at least one finite-cost live
    range, so hitting the bound means the spill decisions cycled.
    ``spill_history`` holds the live ranges spilled in each iteration
    (one list of reprs per iteration, in order) and ``stats`` the
    partial :class:`~repro.regalloc.framework.PipelineStats` of the
    run up to the divergence — enough for the fallback chain and
    ``repro explain`` to report what the allocator kept spilling.
    """

    def __init__(
        self,
        function: str,
        iterations: int,
        spill_history: Optional[List[List[str]]] = None,
        stats=None,
    ) -> None:
        self.function = function
        self.iterations = iterations
        self.spill_history = spill_history if spill_history is not None else []
        self.stats = stats
        tail = ""
        if self.spill_history:
            last = ", ".join(self.spill_history[-1]) or "nothing"
            tail = (
                f"; {sum(len(s) for s in self.spill_history)} spill(s) "
                f"across the run, last iteration spilled: {last}"
            )
        super().__init__(
            f"{function}: register allocation did not converge after "
            f"{iterations} iterations{tail}"
        )

    def as_dict(self) -> dict:
        """JSON-friendly form for resilience reports and ``explain``."""
        return {
            "function": self.function,
            "iterations": self.iterations,
            "spill_history": [list(spills) for spills in self.spill_history],
            "message": str(self),
        }


class AllocationContextError(AllocationError):
    """An allocation error tied to a specific program point.

    ``block`` and ``index`` are optional: some invariants are
    per-function (a missing prologue save has no single instruction).
    ``index`` is the instruction's position within the block, or -1
    for the function-entry pseudo-site.
    """

    def __init__(
        self,
        message: str,
        function: str,
        block: Optional[str] = None,
        index: Optional[int] = None,
    ) -> None:
        self.function = function
        self.block = block
        self.index = index
        super().__init__(f"{self.site()}: {message}")

    def site(self) -> str:
        """``function[/block[:index]]`` — the program point as text."""
        where = self.function
        if self.block is not None:
            where += f"/{self.block}"
            if self.index is not None:
                where += f":{self.index}"
        return where


class UnexpectedInstructionError(AllocationContextError):
    """Emission found something other than the instruction it recorded."""


class WebConstructionError(AllocationContextError):
    """Web renaming violated a structural invariant."""


class AllocationVerificationError(AllocationContextError):
    """The independent verifier rejected a finished allocation.

    ``check`` is a short machine-readable name of the violated
    invariant (``register-conflict``, ``caller-save``, ...), so fuzz
    reports can bucket failures without parsing messages.
    """

    check = "generic"

    def as_dict(self) -> dict:
        """JSON-friendly form used by fuzz quarantine records."""
        return {
            "check": self.check,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "message": str(self),
        }


class UnassignedLiveRangeError(AllocationVerificationError):
    check = "unassigned"


class RegisterConflictError(AllocationVerificationError):
    check = "register-conflict"


class BankMismatchError(AllocationVerificationError):
    check = "bank-mismatch"


class CallerSaveError(AllocationVerificationError):
    check = "caller-save"


class CalleeSaveError(AllocationVerificationError):
    check = "callee-save"


class SpillSlotError(AllocationVerificationError):
    check = "spill-slot"


class CallingConventionError(AllocationVerificationError):
    check = "calling-convention"
