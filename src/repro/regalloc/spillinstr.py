"""Overhead pseudo-instructions inserted by the register allocator.

``SpillLoad`` / ``SpillStore`` move a value between a register and a
stack slot.  Every such instruction carries an :class:`OverheadKind`
tag naming *why* it exists — spill code, caller-save save/restore
around a call, or callee-save save/restore at entry/exit — which is
exactly the decomposition of "register allocation overhead" the paper
reports (shuffle cost, the fourth component, is carried by the plain
``Copy`` instructions that survive coalescing).
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.ir.instructions import Instr
from repro.ir.values import VReg


class OverheadKind(enum.Enum):
    """Why an overhead operation was inserted."""

    SPILL = "spill"
    CALLER_SAVE = "caller_save"
    CALLEE_SAVE = "callee_save"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SpillLoad(Instr):
    """``dst = stack[slot]`` — reload a value from the frame.

    Spill code (inserted between allocation iterations) targets a
    virtual register; save/restore code (inserted once allocation is
    final) targets a physical register directly and is invisible to
    the liveness machinery (``defs()`` is then empty).
    """

    __slots__ = ("dst", "slot", "kind")

    def __init__(self, dst, slot: int, kind: OverheadKind):
        self.dst = dst
        self.slot = slot
        self.kind = kind

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dst,) if isinstance(self.dst, VReg) else ()

    def replace_defs(self, mapping: Dict[VReg, VReg]) -> None:
        if isinstance(self.dst, VReg):
            self.dst = mapping.get(self.dst, self.dst)

    def __repr__(self) -> str:
        return f"{self.dst} = reload slot{self.slot} ; {self.kind}"


class SpillStore(Instr):
    """``stack[slot] = src`` — save a value to the frame.

    Like :class:`SpillLoad`, ``src`` is a virtual register in spill
    code and a physical register in save/restore code.
    """

    __slots__ = ("slot", "src", "kind")

    def __init__(self, slot: int, src, kind: OverheadKind):
        self.slot = slot
        self.src = src
        self.kind = kind

    def uses(self) -> Tuple[VReg, ...]:
        return (self.src,) if isinstance(self.src, VReg) else ()

    def replace_uses(self, mapping: Dict[VReg, VReg]) -> None:
        if isinstance(self.src, VReg):
            self.src = mapping.get(self.src, self.src)

    def __repr__(self) -> str:
        return f"spill slot{self.slot} = {self.src} ; {self.kind}"
