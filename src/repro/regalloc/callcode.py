"""Save/restore code insertion — the calling-convention overhead.

Runs once allocation is final (no more spills).  Two kinds of code are
materialized, both operating directly on physical registers:

* **Caller-save code**: every live range assigned a caller-save
  register and live across a call is saved to a frame slot before the
  call and restored after it.
* **Callee-save code**: every callee-save register holding at least
  one live range is saved at function entry and restored before every
  return.

This is exactly the overhead the paper's cost model charges —
``caller_save_cost(lr) = 2 * Σ weight(call)`` and
``callee_save_cost(r) = 2 * weight(entry)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Call, Instr, Ret
from repro.ir.values import VReg
from repro.machine.registers import PhysReg
from repro.regalloc.errors import UnexpectedInstructionError
from repro.regalloc.interference import LiveRangeInfo
from repro.regalloc.spillgen import SlotAllocator
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


def insert_save_restore_code(
    func: Function,
    assignment: Dict[VReg, PhysReg],
    infos: Dict[VReg, LiveRangeInfo],
    slots: SlotAllocator,
    clobber_of: Optional[Dict[str, FrozenSet[PhysReg]]] = None,
    tracer: Optional["Tracer"] = None,
) -> None:
    """Insert caller-save and callee-save code into ``func`` in place.

    ``clobber_of`` (the IPRA extension) maps each callee to the set of
    caller-save registers its execution may write; a crossing live
    range whose register the callee provably leaves alone needs no
    save/restore at that call.
    """
    _insert_caller_save(func, assignment, infos, slots, clobber_of, tracer)
    _insert_callee_save(func, assignment, slots, tracer)


def _insert_caller_save(
    func: Function,
    assignment: Dict[VReg, PhysReg],
    infos: Dict[VReg, LiveRangeInfo],
    slots: SlotAllocator,
    clobber_of: Optional[Dict[str, FrozenSet[PhysReg]]] = None,
    tracer: Optional["Tracer"] = None,
) -> None:
    # Resolve (block, index) call sites to instruction objects before
    # any insertion shifts the indexes.
    saved_regs: Dict[Call, List[PhysReg]] = {}
    slot_of: Dict[PhysReg, int] = {}
    for reg, info in infos.items():
        phys = assignment.get(reg)
        if phys is None or not phys.is_caller_save:
            continue
        for block, index in info.crossed_calls:
            call = block.instrs[index]
            if not isinstance(call, Call):  # pragma: no cover - sanity
                raise UnexpectedInstructionError(
                    f"crossed-call site of {reg} holds {call!r}, not a call",
                    function=func.name,
                    block=block.name,
                    index=index,
                )
            if clobber_of is not None and phys not in clobber_of[call.callee]:
                continue  # the callee provably leaves this register alone
            saved_regs.setdefault(call, []).append(phys)
            if phys not in slot_of:
                slot_of[phys] = slots.allocate()

    if not saved_regs:
        return
    for block in func.blocks:
        rewritten: List[Instr] = []
        for instr in block.instrs:
            regs = saved_regs.get(instr) if isinstance(instr, Call) else None
            if regs:
                ordered = sorted(set(regs), key=lambda p: p.name)
                if tracer is not None and tracer.wants_events:
                    tracer.emit(
                        "caller_save_site",
                        callee=instr.callee,
                        block=block.name,
                        registers=[p.name for p in ordered],
                    )
                for phys in ordered:
                    rewritten.append(
                        SpillStore(slot_of[phys], phys, OverheadKind.CALLER_SAVE)
                    )
                rewritten.append(instr)
                for phys in ordered:
                    rewritten.append(
                        SpillLoad(phys, slot_of[phys], OverheadKind.CALLER_SAVE)
                    )
            else:
                rewritten.append(instr)
        block.instrs = rewritten


def _insert_callee_save(
    func: Function,
    assignment: Dict[VReg, PhysReg],
    slots: SlotAllocator,
    tracer: Optional["Tracer"] = None,
) -> None:
    used: Set[PhysReg] = {
        phys for phys in assignment.values() if phys.is_callee_save
    }
    if not used:
        return
    ordered: List[Tuple[PhysReg, int]] = [
        (phys, slots.allocate()) for phys in sorted(used, key=lambda p: p.name)
    ]
    if tracer is not None and tracer.wants_events:
        tracer.emit(
            "callee_save", registers=[phys.name for phys, _ in ordered]
        )
    saves = [
        SpillStore(slot, phys, OverheadKind.CALLEE_SAVE) for phys, slot in ordered
    ]
    func.entry.instrs[:0] = saves
    for block in func.blocks:
        terminator = block.terminator
        if isinstance(terminator, Ret):
            restores: List[Instr] = [
                SpillLoad(phys, slot, OverheadKind.CALLEE_SAVE)
                for phys, slot in ordered
            ]
            block.instrs[-1:-1] = restores


def callee_saved_registers(func: Function) -> List[PhysReg]:
    """The callee-save registers ``func`` saves at entry (for tests)."""
    result = []
    for instr in func.entry.instrs:
        if isinstance(instr, SpillStore) and instr.kind is OverheadKind.CALLEE_SAVE:
            result.append(instr.src)
        else:
            break
    return result
