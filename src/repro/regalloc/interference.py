"""Interference graph construction and per-live-range cost data.

One backward walk per block (seeded with the live-out set) builds, in
a single pass:

* the interference edges — each definition interferes with everything
  live after the defining instruction (minus the copy source for
  ``Copy`` instructions, the classic Chaitin refinement that makes
  coalescing possible),
* the weighted spill cost of every live range (a store per def plus a
  load per use, weighted by block frequency),
* the set of call sites every live range is live *across* (live into
  and out of the call), from which the caller-save cost follows,
* the set of blocks each live range touches (the ``size`` denominator
  of the priority function of priority-based coloring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.frequency import BlockWeights
from repro.analysis.liveness import compute_liveness
from repro.analysis.manager import LIVENESS, AnalysisCache
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Call, Copy
from repro.ir.values import VReg


@dataclass
class LiveRangeInfo:
    """Costs and structure of one live range (one renamed register)."""

    reg: VReg
    spill_cost: float = 0.0
    num_defs: int = 0
    num_uses: int = 0
    #: Call sites (block, instruction index) this range is live across.
    crossed_calls: List[Tuple[BasicBlock, int]] = field(default_factory=list)
    #: Weighted caller-save cost: one save plus one restore per
    #: crossed call execution.
    caller_cost: float = 0.0
    #: Blocks the live range is live in or referenced in.
    blocks: Set[BasicBlock] = field(default_factory=set)
    #: Spill temporaries must never be spilled again.
    is_spill_temp: bool = False

    @property
    def size(self) -> int:
        return max(len(self.blocks), 1)

    @property
    def crosses_calls(self) -> bool:
        return bool(self.crossed_calls)


class InterferenceGraph:
    """Undirected interference graph over live ranges."""

    def __init__(self) -> None:
        self.adj: Dict[VReg, Set[VReg]] = {}

    def add_node(self, reg: VReg) -> None:
        self.adj.setdefault(reg, set())

    def add_edge(self, a: VReg, b: VReg) -> None:
        if a is b:
            return
        self.adj.setdefault(a, set()).add(b)
        self.adj.setdefault(b, set()).add(a)

    def interferes(self, a: VReg, b: VReg) -> bool:
        return b in self.adj.get(a, ())

    def neighbors(self, reg: VReg) -> Set[VReg]:
        return self.adj.get(reg, set())

    def degree(self, reg: VReg) -> int:
        return len(self.adj.get(reg, ()))

    @property
    def nodes(self) -> Iterable[VReg]:
        return self.adj.keys()

    def __len__(self) -> int:
        return len(self.adj)

    def merge(self, keep: VReg, remove: VReg) -> None:
        """Collapse ``remove`` into ``keep`` (coalescing)."""
        for neighbor in self.adj.pop(remove, set()):
            self.adj[neighbor].discard(remove)
            if neighbor is not keep:
                self.add_edge(keep, neighbor)


def build_interference(
    func: Function,
    weights: BlockWeights,
    spill_temps: Set[VReg],
    cache: Optional[AnalysisCache] = None,
) -> Tuple[InterferenceGraph, Dict[VReg, LiveRangeInfo]]:
    """Build the graph and cost table for ``func`` under ``weights``.

    ``cache`` (an :class:`~repro.analysis.manager.AnalysisCache`)
    memoizes the liveness pass; the caller is responsible for
    invalidating it when the function is rewritten.
    """
    liveness = (
        cache.get(func, LIVENESS) if cache is not None else compute_liveness(func)
    )
    graph = InterferenceGraph()
    infos: Dict[VReg, LiveRangeInfo] = {}

    def info(reg: VReg) -> LiveRangeInfo:
        record = infos.get(reg)
        if record is None:
            record = LiveRangeInfo(reg=reg, is_spill_temp=reg in spill_temps)
            infos[reg] = record
            graph.add_node(reg)
        return record

    # Parameters are all defined simultaneously at function entry (the
    # calling convention writes every one of them), so they mutually
    # interfere even when dead — a dead parameter's arriving value
    # must not clobber a register assigned to a live one.  They also
    # interfere with everything else live into the entry block.
    entry_live = liveness.live_in[func.entry]
    for param in func.params:
        info(param)
        for other in func.params:
            if other is not param and other.vtype is param.vtype:
                graph.add_edge(param, other)
        for other in entry_live:
            if other is not param and other.vtype is param.vtype:
                graph.add_edge(param, other)

    for block in func.blocks:
        weight = weights.weight(block)
        for reg in liveness.live_in[block]:
            info(reg).blocks.add(block)
        index = len(block.instrs)
        for instr, live_after in liveness.live_across(block):
            index -= 1
            copy_src = instr.src if isinstance(instr, Copy) else None
            for dst in instr.defs():
                record = info(dst)
                record.num_defs += 1
                record.spill_cost += weight
                record.blocks.add(block)
                for live in live_after:
                    if live is dst or live is copy_src:
                        continue
                    if live.vtype is dst.vtype:
                        graph.add_edge(dst, live)
                    info(live)
            for src in instr.uses():
                record = info(src)
                record.num_uses += 1
                record.spill_cost += weight
                record.blocks.add(block)
            if isinstance(instr, Call):
                # Live across the call = live after it and not defined
                # by it (the call's result is born in the callee; an
                # argument that dies at the call does not cross it).
                for live in live_after - set(instr.defs()):
                    record = info(live)
                    record.crossed_calls.append((block, index))
                    record.caller_cost += 2.0 * weight

    for record in infos.values():
        if record.is_spill_temp:
            record.spill_cost = math.inf
    return graph, infos
