"""Interference graph construction and per-live-range cost data.

One backward walk per block (seeded with the live-out set) builds, in
a single pass:

* the interference edges — each definition interferes with everything
  live after the defining instruction (minus the copy source for
  ``Copy`` instructions, the classic Chaitin refinement that makes
  coalescing possible),
* the weighted spill cost of every live range (a store per def plus a
  load per use, weighted by block frequency),
* the set of call sites every live range is live *across* (live into
  and out of the call), from which the caller-save cost follows,
* the set of blocks each live range touches (the ``size`` denominator
  of the priority function of priority-based coloring).

The graph and the walk both run on dense integer bitsets (see
:mod:`repro.analysis.bitset`): nodes carry an index into a flat
adjacency array of masks, an edge is two bits, and the per-definition
edge fan-out — the inner loop of construction — is a single ``|=`` of
the live-after mask instead of one hash insert per neighbor.  The
public graph API is unchanged except that ``neighbors``/``nodes`` now
hand out read-only views instead of aliasing internal mutable sets.
"""

from __future__ import annotations

import math
import time
from collections.abc import Set as AbstractSet
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.bitset import popcount
from repro.analysis.frequency import BlockWeights
from repro.analysis.liveness import compute_liveness
from repro.analysis.manager import LIVENESS, AnalysisCache
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Call, Copy
from repro.ir.values import VReg


class LiveRangeInfo:
    """Costs and structure of one live range (one renamed register).

    A ``__slots__`` class rather than a dataclass: the interference
    walk creates one record per live range on every (re)build and
    updates its counters once per definition and use.
    """

    __slots__ = (
        "reg",
        "spill_cost",
        "num_defs",
        "num_uses",
        "crossed_calls",
        "caller_cost",
        "blocks",
        "is_spill_temp",
    )

    def __init__(
        self,
        reg: VReg,
        spill_cost: float = 0.0,
        num_defs: int = 0,
        num_uses: int = 0,
        crossed_calls: Optional[List[Tuple[BasicBlock, int]]] = None,
        caller_cost: float = 0.0,
        blocks: Optional[Set[BasicBlock]] = None,
        is_spill_temp: bool = False,
    ):
        self.reg = reg
        self.spill_cost = spill_cost
        self.num_defs = num_defs
        self.num_uses = num_uses
        #: Call sites (block, instruction index) this range is live
        #: across.
        self.crossed_calls = crossed_calls if crossed_calls is not None else []
        #: Weighted caller-save cost: one save plus one restore per
        #: crossed call execution.
        self.caller_cost = caller_cost
        #: Blocks the live range is live in or referenced in.
        self.blocks = blocks if blocks is not None else set()
        #: Spill temporaries must never be spilled again.
        self.is_spill_temp = is_spill_temp

    @property
    def size(self) -> int:
        return max(len(self.blocks), 1)

    @property
    def crosses_calls(self) -> bool:
        return bool(self.crossed_calls)

    def __repr__(self) -> str:
        return (
            f"LiveRangeInfo(reg={self.reg!r}, spill_cost={self.spill_cost!r}, "
            f"num_defs={self.num_defs}, num_uses={self.num_uses}, "
            f"caller_cost={self.caller_cost!r}, "
            f"is_spill_temp={self.is_spill_temp})"
        )


class NeighborView(AbstractSet):
    """Read-only, live view of one node's neighbor set.

    Reflects later graph mutations (like the aliased set it replaces)
    but cannot be used to corrupt the adjacency structure.
    """

    __slots__ = ("_graph", "_slot")

    def __init__(self, graph: "InterferenceGraph", slot: Optional[int]) -> None:
        self._graph = graph
        self._slot = slot

    def _mask(self) -> int:
        if self._slot is None:
            return 0
        return self._graph._adj[self._slot]

    def __len__(self) -> int:
        return popcount(self._mask())

    def __iter__(self) -> Iterator[VReg]:
        regs = self._graph._regs
        mask = self._mask()
        while mask:
            low = mask & -mask
            yield regs[low.bit_length() - 1]
            mask ^= low

    def __contains__(self, reg: object) -> bool:
        index = self._graph._index.get(reg)
        if index is None:
            return False
        return self._mask() >> index & 1 == 1

    @classmethod
    def _from_iterable(cls, iterable) -> "frozenset[VReg]":
        # Set-algebra results (| & - ^) are plain frozensets.
        return frozenset(iterable)

    def __repr__(self) -> str:
        return f"NeighborView({set(self)!r})"


class InterferenceGraph:
    """Undirected interference graph over live ranges.

    Nodes are mapped to dense indices; each node's adjacency is one
    integer bitmask over those indices, so ``degree`` is a popcount
    and bulk edge insertion is a mask union.  Indices of removed or
    merged-away nodes are retired (their slot cleared everywhere and
    never reused), which keeps every mask consistent without
    renumbering survivors.
    """

    __slots__ = ("_index", "_regs", "_adj")

    def __init__(self) -> None:
        #: node -> slot, in node-insertion order.
        self._index: Dict[VReg, int] = {}
        #: slot -> node (None once retired).
        self._regs: List[Optional[VReg]] = []
        #: slot -> adjacency mask over slots.
        self._adj: List[int] = []

    @classmethod
    def _from_kernel(
        cls,
        order,
        index: Dict[VReg, int],
        regs: List[VReg],
        adj: List[int],
    ) -> "InterferenceGraph":
        """Adopt adjacency masks computed by :func:`build_interference`.

        ``order`` fixes node-iteration order, ``index``/``regs`` the
        slot numbering the ``adj`` masks are expressed in.  The arrays
        are adopted, not copied — the caller must hand over ownership.
        """
        graph = cls()
        graph._index = {reg: index[reg] for reg in order}
        graph._regs = regs
        graph._adj = adj
        return graph

    def _slot(self, reg: VReg) -> int:
        index = self._index.get(reg)
        if index is None:
            index = len(self._regs)
            self._index[reg] = index
            self._regs.append(reg)
            self._adj.append(0)
        return index

    def add_node(self, reg: VReg) -> None:
        self._slot(reg)

    def add_edge(self, a: VReg, b: VReg) -> None:
        if a is b:
            return
        slot_a = self._slot(a)
        slot_b = self._slot(b)
        self._adj[slot_a] |= 1 << slot_b
        self._adj[slot_b] |= 1 << slot_a

    def add_edges_mask(self, reg: VReg, mask: int) -> None:
        """Add an edge between ``reg`` and every slot set in ``mask``.

        The mask is in slot space (``1 << slot``) and must only name
        live slots; ``reg``'s own bit is ignored.  One call replaces a
        loop of :meth:`add_edge` calls when the neighbor set is
        already available as a bitset.
        """
        slot = self._slot(reg)
        bit = 1 << slot
        mask &= ~bit
        adj = self._adj
        adj[slot] |= mask
        while mask:
            low = mask & -mask
            adj[low.bit_length() - 1] |= bit
            mask ^= low

    def interferes(self, a: VReg, b: VReg) -> bool:
        slot_a = self._index.get(a)
        slot_b = self._index.get(b)
        if slot_a is None or slot_b is None:
            return False
        return self._adj[slot_a] >> slot_b & 1 == 1

    def neighbors(self, reg: VReg) -> NeighborView:
        return NeighborView(self, self._index.get(reg))

    def neighbor_mask(self, reg: VReg) -> int:
        """The raw adjacency mask of ``reg`` (kernel-facing)."""
        slot = self._index.get(reg)
        return 0 if slot is None else self._adj[slot]

    def degree(self, reg: VReg) -> int:
        slot = self._index.get(reg)
        return 0 if slot is None else popcount(self._adj[slot])

    @property
    def nodes(self):
        """All nodes, insertion-ordered (a read-only view)."""
        return self._index.keys()

    def __len__(self) -> int:
        return len(self._index)

    def merge(self, keep: VReg, remove: VReg) -> None:
        """Collapse ``remove`` into ``keep`` (coalescing)."""
        if keep is remove:
            return
        slot_rm = self._index.pop(remove, None)
        if slot_rm is None:
            return
        mask = self._adj[slot_rm]
        bit_rm = 1 << slot_rm
        if mask:
            slot_keep = self._slot(keep)
            bit_keep = 1 << slot_keep
            adj = self._adj
            rest = mask
            while rest:
                low = rest & -rest
                slot = low.bit_length() - 1
                rest ^= low
                if slot == slot_keep:
                    adj[slot] &= ~bit_rm
                else:
                    adj[slot] = (adj[slot] & ~bit_rm) | bit_keep
            adj[slot_keep] |= mask & ~bit_keep
        self._adj[slot_rm] = 0
        self._regs[slot_rm] = None

    def remove_node(self, reg: VReg) -> None:
        """Drop ``reg`` and every edge touching it (no-op if absent)."""
        slot = self._index.pop(reg, None)
        if slot is None:
            return
        mask = self._adj[slot]
        bit = 1 << slot
        adj = self._adj
        while mask:
            low = mask & -mask
            adj[low.bit_length() - 1] &= ~bit
            mask ^= low
        self._adj[slot] = 0
        self._regs[slot] = None


def build_interference(
    func: Function,
    weights: BlockWeights,
    spill_temps: Set[VReg],
    cache: Optional[AnalysisCache] = None,
    stats=None,
) -> Tuple[InterferenceGraph, Dict[VReg, LiveRangeInfo]]:
    """Build the graph and cost table for ``func`` under ``weights``.

    ``cache`` (an :class:`~repro.analysis.manager.AnalysisCache`)
    memoizes the liveness pass; the caller is responsible for
    invalidating it when the function is rewritten.  ``stats`` is any
    object with ``liveness``/``interference`` float attributes (a
    ``PipelineStats``); when given, the kernel's wall-clock split is
    accumulated onto it.
    """
    timed = stats is not None
    started = time.perf_counter() if timed else 0.0
    liveness = (
        cache.get(func, LIVENESS) if cache is not None else compute_liveness(func)
    )
    if timed:
        now = time.perf_counter()
        stats.liveness += now - started
        started = now

    numbering = liveness.numbering
    index = numbering.index
    regs = numbering.regs
    instr_info = numbering.instr_info
    n = len(regs)
    # Per-slot same-bank mask, hoisted so the def loop never hashes a
    # ValueType enum.
    slot_type: List[int] = [0] * n
    for type_mask in numbering.type_masks.values():
        mask = type_mask
        while mask:
            low = mask & -mask
            slot_type[low.bit_length() - 1] = type_mask
            mask ^= low
    adj: List[int] = [0] * n
    infos: Dict[VReg, LiveRangeInfo] = {}
    by_slot: List[Optional[LiveRangeInfo]] = [None] * n
    #: Registers with no LiveRangeInfo yet; cleared as records are
    #: created so the walk below makes each record at the same point
    #: the per-element walk used to.
    unseen = (1 << n) - 1

    def info_at(slot: int) -> LiveRangeInfo:
        nonlocal unseen
        record = by_slot[slot]
        if record is None:
            reg = regs[slot]
            record = LiveRangeInfo(reg=reg, is_spill_temp=reg in spill_temps)
            infos[reg] = record
            by_slot[slot] = record
            unseen &= ~(1 << slot)
        return record

    # Parameters are all defined simultaneously at function entry (the
    # calling convention writes every one of them), so they mutually
    # interfere even when dead — a dead parameter's arriving value
    # must not clobber a register assigned to a live one.  They also
    # interfere with everything else live into the entry block.  One
    # mask union per parameter replaces the old quadratic pairwise
    # edge loop (which inserted every parameter pair twice).
    entry_live = liveness.live_in_bits[func.entry]
    params_mask = 0
    for param in func.params:
        params_mask |= 1 << index[param]
    for param in func.params:
        slot = index[param]
        info_at(slot)
        adj[slot] |= (
            (params_mask | entry_live) & slot_type[slot] & ~(1 << slot)
        )

    for block in func.blocks:
        weight = weights.weight(block)
        live_in = liveness.live_in_bits[block]
        mask = live_in & unseen
        while mask:
            low = mask & -mask
            info_at(low.bit_length() - 1)
            mask &= mask - 1
        mask = live_in
        while mask:
            low = mask & -mask
            by_slot[low.bit_length() - 1].blocks.add(block)
            mask ^= low

        position = len(block.instrs)
        live = liveness.live_out_bits[block]
        for instr in reversed(block.instrs):
            position -= 1
            live_after = live
            defs, dmask, uses, umask = instr_info[instr]
            if defs:
                copy_bit = (
                    1 << index[instr.src] if isinstance(instr, Copy) else 0
                )
                for dst in defs:
                    slot = index[dst]
                    record = by_slot[slot]
                    if record is None:
                        record = info_at(slot)
                    record.num_defs += 1
                    record.spill_cost += weight
                    record.blocks.add(block)
                    others = live_after & ~((1 << slot) | copy_bit)
                    adj[slot] |= others & slot_type[slot]
                    new = others & unseen
                    while new:
                        low = new & -new
                        info_at(low.bit_length() - 1)
                        new &= new - 1
            for src in uses:
                slot = index[src]
                record = by_slot[slot]
                if record is None:
                    record = info_at(slot)
                record.num_uses += 1
                record.spill_cost += weight
                record.blocks.add(block)
            if isinstance(instr, Call):
                # Live across the call = live after it and not defined
                # by it (the call's result is born in the callee; an
                # argument that dies at the call does not cross it).
                crossers = live_after & ~dmask
                cost = 2.0 * weight
                while crossers:
                    low = crossers & -crossers
                    record = info_at(low.bit_length() - 1)
                    record.crossed_calls.append((block, position))
                    record.caller_cost += cost
                    crossers ^= low
            live = (live & ~dmask) | umask

    for record in infos.values():
        if record.is_spill_temp:
            record.spill_cost = math.inf

    # Edges were accumulated one-directed (def -> live-after mask);
    # one symmetrization pass makes the graph undirected.
    for slot in range(n):
        mask = adj[slot]
        bit = 1 << slot
        while mask:
            low = mask & -mask
            adj[low.bit_length() - 1] |= bit
            mask ^= low

    graph = InterferenceGraph._from_kernel(infos, index, list(regs), adj)
    if timed:
        stats.interference += time.perf_counter() - started
    return graph, infos
