"""The paper's benefit functions and the orderings built on them.

For a live range ``lr`` with spill cost ``s``::

    benefit_caller(lr) = s - caller_save_cost(lr)
    benefit_callee(lr) = s - callee_save_cost        (2 * entry weight)

Both estimate the load/store operations *saved* by keeping ``lr`` in a
register of that kind rather than in memory; a negative benefit means
the register kind costs more than spilling.

Two simplification keys are studied by the paper (Section 5):

* ``max`` — ``max(benefit_caller, benefit_callee)``, the priority-based
  coloring instinct: protect the biggest saver.
* ``delta`` — ``|benefit_caller - benefit_callee|`` when both benefits
  are non-negative, otherwise ``max``.  This is the paper's choice for
  Chaitin-style coloring: simplification already guarantees everyone a
  register, so what matters is the *penalty of getting the wrong kind*.

The preference-decision key (Section 6) ranks live ranges competing
for callee-save registers at one call site: ``caller_cost`` when the
range could live with a caller-save register at a profit, else its
full spill cost (the penalty for denying it a callee-save register).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.frequency import BlockWeights
from repro.ir.values import VReg
from repro.regalloc.interference import LiveRangeInfo


@dataclass(frozen=True)
class Benefits:
    """The two benefit values of one live range."""

    caller: float
    callee: float

    @property
    def prefers_callee(self) -> bool:
        """Strictly better off in a callee-save register (paper: >)."""
        return self.callee > self.caller

    @property
    def best(self) -> float:
        return max(self.caller, self.callee)


def callee_save_cost(weights: BlockWeights) -> float:
    """Save at entry plus restore at exit, per invocation."""
    return 2.0 * weights.entry_weight


def compute_benefits(
    infos: Dict[VReg, LiveRangeInfo],
    weights: BlockWeights,
    tracer: Optional["Tracer"] = None,
) -> Dict[VReg, Benefits]:
    """Benefit table for every live range of a function.

    With a tracer attached, one ``benefits`` event per live range
    records the inputs (spill cost, caller-save cost, callee-save
    cost) next to the two derived benefit values — the numbers every
    later storage-class decision is justified by.
    """
    callee_cost = callee_save_cost(weights)
    table = {
        reg: Benefits(
            caller=info.spill_cost - info.caller_cost,
            callee=info.spill_cost - callee_cost,
        )
        for reg, info in infos.items()
    }
    if tracer is not None and tracer.wants_events:
        for reg, benefits in table.items():
            info = infos[reg]
            tracer.emit(
                "benefits",
                reg,
                spill_cost=info.spill_cost,
                caller_cost=info.caller_cost,
                callee_cost=callee_cost,
                benefit_caller=benefits.caller,
                benefit_callee=benefits.callee,
                crossed_calls=len(info.crossed_calls),
                prefers_callee=benefits.prefers_callee,
            )
    return table


def delta_key(benefits: Benefits) -> float:
    """The paper's benefit-driven simplification key (strategy 2)."""
    if benefits.caller >= 0 and benefits.callee >= 0:
        if math.isinf(benefits.caller) and math.isinf(benefits.callee):
            # Unspillable ranges (both benefits infinite): the delta is
            # indeterminate (inf - inf); rank them last so real live
            # ranges' kind decisions are settled first.
            return math.inf
        return abs(benefits.caller - benefits.callee)
    return benefits.best


def max_key(benefits: Benefits) -> float:
    """The priority-style simplification key (strategy 1)."""
    return benefits.best


def preference_key(info: LiveRangeInfo, benefits: Benefits) -> float:
    """Ranking key for the preference-decision pre-pass.

    ``caller_cost`` is the overhead the range pays if demoted to a
    caller-save register (``spill_cost - benefit_caller``); when even
    a caller-save register is a loss, the penalty of demotion is the
    full spill cost (storage-class analysis will spill it).
    """
    if benefits.caller > 0:
        return info.caller_cost
    return info.spill_cost


def priority_function(info: LiveRangeInfo, benefits: Benefits) -> float:
    """Chow's priority: best savings normalized by live-range size."""
    return benefits.best / info.size
