"""Spill code insertion ("spill everywhere").

Every spilled live range gets a frame slot; each use is preceded by a
reload into a fresh temporary and each def is followed by a store from
a fresh temporary.  The temporaries are tiny live ranges that never
cross calls; they are marked unspillable (infinite spill cost), which
guarantees the allocate/spill iteration terminates.

Parameters are spillable too: a spilled parameter keeps its register
at entry (the calling convention hands it over in a register) and is
stored to its slot by an entry store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.ir.function import Function
from repro.ir.instructions import Const, Instr
from repro.ir.values import VReg
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


class SlotAllocator:
    """Hands out frame slot numbers, one per spilled value."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        slot = self._next
        self._next += 1
        return slot

    @property
    def count(self) -> int:
        return self._next


def insert_spill_code(
    func: Function,
    spills: Iterable[VReg],
    slots: SlotAllocator,
    spill_temps: Set[VReg],
    remat_values: Optional[Dict[VReg, float]] = None,
    tracer: Optional["Tracer"] = None,
) -> Dict[VReg, int]:
    """Rewrite ``func`` so every register in ``spills`` lives in memory.

    Returns the slot assigned to each spilled register.  New
    temporaries are added to ``spill_temps`` (the framework marks them
    unspillable in the next iteration's cost table).

    ``remat_values`` maps spilled registers whose value is a known
    constant to that constant: their uses re-materialize the constant
    (a one-cycle ALU op) instead of reloading from a frame slot, and
    their defs need no store — Briggs-style rematerialization.
    """
    remat_values = remat_values or {}
    spill_set = set(spills)
    slot_of = {
        reg: slots.allocate()
        for reg in sorted(spill_set, key=lambda r: r.id)
        if reg not in remat_values
    }
    loads: Dict[VReg, int] = {}
    stores: Dict[VReg, int] = {}

    for block in func.blocks:
        rewritten: List[Instr] = []
        for instr in block.instrs:
            use_map: Dict[VReg, VReg] = {}
            for used in instr.uses():
                if used in spill_set and used not in use_map:
                    temp = func.new_vreg(used.vtype, _temp_name(used))
                    spill_temps.add(temp)
                    loads[used] = loads.get(used, 0) + 1
                    if used in remat_values:
                        rewritten.append(Const(temp, remat_values[used]))
                    else:
                        rewritten.append(
                            SpillLoad(temp, slot_of[used], OverheadKind.SPILL)
                        )
                    use_map[used] = temp
            if use_map:
                instr.replace_uses(use_map)
            pending_stores: List[Instr] = []
            def_map: Dict[VReg, VReg] = {}
            for defined in instr.defs():
                if defined in spill_set:
                    temp = func.new_vreg(defined.vtype, _temp_name(defined))
                    spill_temps.add(temp)
                    def_map[defined] = temp
                    if defined not in remat_values:
                        stores[defined] = stores.get(defined, 0) + 1
                        pending_stores.append(
                            SpillStore(slot_of[defined], temp, OverheadKind.SPILL)
                        )
            if def_map:
                instr.replace_defs(def_map)
            rewritten.append(instr)
            rewritten.extend(pending_stores)
        block.instrs = rewritten

    # A spilled parameter arrives in a register; store it to its slot
    # on entry so the reloads find it.
    entry_stores: List[Instr] = []
    for param in func.params:
        if param in spill_set and param not in remat_values:
            entry_stores.append(
                SpillStore(slot_of[param], param, OverheadKind.SPILL)
            )
            stores[param] = stores.get(param, 0) + 1
            spill_temps.add(param)
    if entry_stores:
        func.entry.instrs[:0] = entry_stores

    if tracer is not None and tracer.wants_events:
        for reg in sorted(spill_set, key=lambda r: r.id):
            if reg in remat_values:
                tracer.emit(
                    "remat_code",
                    reg,
                    loads=loads.get(reg, 0),
                    value=remat_values[reg],
                )
            else:
                tracer.emit(
                    "spill_code",
                    reg,
                    slot=slot_of[reg],
                    loads=loads.get(reg, 0),
                    stores=stores.get(reg, 0),
                )
    return slot_of


def _temp_name(reg: VReg) -> str:
    return f"{reg.name}.spill" if reg.name else "spill"
