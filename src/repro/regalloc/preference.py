"""Preference decision (paper Section 6).

A pre-pass over call sites, hottest first.  At a call crossed by ``L``
live ranges that prefer callee-save registers when only ``M``
callee-save registers exist in the relevant bank, at least ``L - M``
of them must end up in caller-save registers no matter what — so the
``L - M`` with the *smallest* demotion penalty are annotated to prefer
caller-save registers, leaving the callee-save registers for the
ranges that need them most.

The demotion penalty (``preference_key``) is the caller-save overhead
when a caller-save register is still profitable, and the full spill
cost otherwise (storage-class analysis will spill a demoted range
whose ``benefit_caller`` is negative).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.frequency import BlockWeights
from repro.ir.function import BasicBlock, Function
from repro.ir.types import ValueType
from repro.ir.values import VReg
from repro.machine.registers import RegisterFile
from repro.regalloc.benefits import Benefits, preference_key
from repro.regalloc.interference import LiveRangeInfo

_CallSite = Tuple[BasicBlock, int]


def preference_decisions(
    infos: Dict[VReg, LiveRangeInfo],
    benefits: Dict[VReg, Benefits],
    weights: BlockWeights,
    regfile: RegisterFile,
    tracer: Optional["Tracer"] = None,
) -> Set[VReg]:
    """Live ranges forced to prefer caller-save registers."""
    # Group call-crossing, callee-preferring live ranges by call site
    # and bank.
    by_site: Dict[Tuple[_CallSite, ValueType], List[VReg]] = {}
    for reg, info in infos.items():
        if not benefits[reg].prefers_callee:
            continue
        for site in info.crossed_calls:
            by_site.setdefault((site, reg.vtype), []).append(reg)

    # Hottest call sites decide first.
    ordered_sites = sorted(
        by_site.items(),
        key=lambda item: (-weights.weight(item[0][0][0]), item[0][0][0].name,
                          item[0][0][1], item[0][1].value),
    )

    forced: Set[VReg] = set()
    for (site, bank), candidates in ordered_sites:
        available = len(regfile.bank(bank).callee)
        # Ranges already demoted at a hotter call no longer compete.
        contenders = [reg for reg in candidates if reg not in forced]
        excess = len(contenders) - available
        if excess <= 0:
            continue
        contenders.sort(
            key=lambda reg: (preference_key(infos[reg], benefits[reg]), reg.id)
        )
        demoted = contenders[:excess]
        if tracer is not None and tracer.wants_events:
            block, index = site
            for reg in demoted:
                tracer.emit(
                    "preference_demote",
                    reg,
                    block=block.name,
                    call_index=index,
                    penalty=preference_key(infos[reg], benefits[reg]),
                    contenders=len(contenders),
                    callee_regs=available,
                )
        forced.update(demoted)
    return forced
