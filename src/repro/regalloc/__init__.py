"""Graph-coloring register allocation: the paper's framework.

Entry points:

* :func:`allocate_function` / :func:`allocate_program` — run any of
  the allocators over IR.
* :class:`AllocatorOptions` — pick the allocator and enhancements
  (``base_chaitin``, ``optimistic_coloring``, ``improved_chaitin``,
  ``priority_based``, ``cbh``...).
"""

from repro.regalloc.assign import AssignmentResult, ColorAssigner
from repro.regalloc.benefits import (
    Benefits,
    callee_save_cost,
    compute_benefits,
    delta_key,
    max_key,
    preference_key,
    priority_function,
)
from repro.regalloc.budget import AllocationBudget, BudgetExceeded
from repro.regalloc.cbh import CBHContext, augment_for_cbh
from repro.regalloc.coalesce import coalesce_round
from repro.regalloc.errors import (
    AllocationContextError,
    AllocationVerificationError,
    BankMismatchError,
    ConvergenceError,
    CalleeSaveError,
    CallerSaveError,
    CallingConventionError,
    RegisterConflictError,
    SpillSlotError,
    UnassignedLiveRangeError,
    UnexpectedInstructionError,
    WebConstructionError,
)
from repro.regalloc.dot import to_dot
from repro.regalloc.framework import (
    FunctionAllocation,
    MAX_ITERATIONS,
    PHASES,
    SUB_PHASES,
    PipelineStats,
    ProgramAllocation,
    allocate_function,
    allocate_program,
)
from repro.regalloc.interference import (
    InterferenceGraph,
    LiveRangeInfo,
    build_interference,
)
from repro.regalloc.liverange import Web, build_webs
from repro.regalloc.options import PRESETS, AllocatorOptions
from repro.regalloc.preference import preference_decisions
from repro.regalloc.priority import DEFAULT_STRATEGY, STRATEGIES, priority_order
from repro.regalloc.reconstruct import reconstruct_interference
from repro.regalloc.simplify import AllocationError, OrderingResult, simplify
from repro.regalloc.spillall import allocate_spill_everywhere
from repro.regalloc.spillgen import SlotAllocator, insert_spill_code
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore
from repro.regalloc.verify import verify_allocation, verify_function_allocation

__all__ = [
    "AllocationBudget",
    "AllocationContextError",
    "AllocationError",
    "AllocationVerificationError",
    "BankMismatchError",
    "BudgetExceeded",
    "CalleeSaveError",
    "CallerSaveError",
    "CallingConventionError",
    "ConvergenceError",
    "PRESETS",
    "RegisterConflictError",
    "SpillSlotError",
    "UnassignedLiveRangeError",
    "UnexpectedInstructionError",
    "WebConstructionError",
    "verify_allocation",
    "verify_function_allocation",
    "AllocatorOptions",
    "AssignmentResult",
    "Benefits",
    "CBHContext",
    "ColorAssigner",
    "DEFAULT_STRATEGY",
    "FunctionAllocation",
    "InterferenceGraph",
    "LiveRangeInfo",
    "MAX_ITERATIONS",
    "OrderingResult",
    "OverheadKind",
    "PHASES",
    "SUB_PHASES",
    "PipelineStats",
    "ProgramAllocation",
    "STRATEGIES",
    "SlotAllocator",
    "SpillLoad",
    "SpillStore",
    "Web",
    "allocate_function",
    "allocate_program",
    "allocate_spill_everywhere",
    "augment_for_cbh",
    "build_interference",
    "build_webs",
    "callee_save_cost",
    "coalesce_round",
    "compute_benefits",
    "delta_key",
    "insert_spill_code",
    "max_key",
    "preference_decisions",
    "preference_key",
    "priority_function",
    "priority_order",
    "reconstruct_interference",
    "simplify",
    "to_dot",
]
