"""The spill-everywhere allocator: the last rung of the fallback chain.

Every original live range is assigned to memory; only the tiny reload
and store temporaries that spill-code insertion creates — plus the
entry copies of spilled parameters — ever occupy registers.  Those
temporaries live for one instruction's operands, never cross a call,
and never interfere beyond the handful of values one instruction
touches, so the allocation is correct by construction on any register
file large enough to execute a single instruction (Bouchez et al.
treat this spill-everywhere regime as the well-understood baseline).

The run deliberately reuses the standard pipeline machinery —
:func:`~repro.regalloc.interference.build_interference`,
:func:`~repro.regalloc.simplify.simplify`,
:class:`~repro.regalloc.assign.ColorAssigner`,
:func:`~repro.regalloc.callcode.insert_save_restore_code` — so the
result flows through the verifier, the interpreters and every report
exactly like any other :class:`FunctionAllocation`.  What makes it
total is that the *decision* layer is gone: there is nothing to
converge, no benefit model to get wrong, and exactly two iterations
(one spill round, one coloring round) regardless of input.

``allocate_function`` dispatches here for ``options.kind ==
"spillall"``; the preset is also registered in
:data:`~repro.regalloc.options.PRESETS` so the CLI, the sweep drivers
and the differential fuzz harness exercise the last-resort path like
any other allocator.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.frequency import BlockWeights
from repro.analysis.manager import INSTRUCTION_KEYS, AnalysisCache
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.assign import ColorAssigner
from repro.regalloc.budget import AllocationBudget
from repro.regalloc.callcode import insert_save_restore_code
from repro.regalloc.errors import AllocationError
from repro.regalloc.interference import LiveRangeInfo, build_interference
from repro.regalloc.liverange import build_webs
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.simplify import simplify
from repro.regalloc.spillgen import SlotAllocator, insert_spill_code


def allocate_spill_everywhere(
    func: Function,
    regfile: RegisterFile,
    weights: BlockWeights,
    options: AllocatorOptions,
    clobber_of: Optional[Dict[str, FrozenSet[PhysReg]]] = None,
    cache: Optional[AnalysisCache] = None,
    tracer: Optional["Tracer"] = None,
    budget: Optional[AllocationBudget] = None,
):
    """Allocate ``func`` by spilling every original live range.

    Mirrors :func:`~repro.regalloc.framework.allocate_function`'s
    contract: mutates ``func`` in place, returns a
    :class:`~repro.regalloc.framework.FunctionAllocation`, records
    per-phase timings (and tracer events/spans when a tracer is
    attached).  Raises :class:`AllocationError` only when the register
    file is genuinely too small to hold one instruction's operands.
    """
    # Local import: framework dispatches to this module, so the
    # dataclasses are fetched lazily to keep the module graph acyclic.
    from repro.regalloc.framework import (
        FunctionAllocation,
        PipelineStats,
        _PhaseTimer,
    )

    if cache is None:
        cache = AnalysisCache()
    stats = PipelineStats()
    timer = _PhaseTimer(stats, tracer, budget=budget, function=func.name)
    hits_before, misses_before = cache.hits, cache.misses
    if tracer is not None:
        tracer.begin_function(func.name)
        if tracer.wants_events:
            tracer.emit(
                "function_begin",
                allocator=options.label,
                callee_model=options.callee_model,
                allocator_kind=options.kind,
                optimistic=False,
                reconstruct=False,
            )

    timer.start("build")
    build_webs(func)
    cache.invalidate(func, INSTRUCTION_KEYS)
    timer.stop()

    spill_temps: Set[VReg] = set()
    slots = SlotAllocator()

    # Iteration 1: build the graph once, then send every original live
    # range (finite spill cost; there are no temps yet) to memory.
    if tracer is not None:
        tracer.begin_iteration(1)
        if tracer.wants_events:
            tracer.emit("iteration_begin", n=1)
    timer.start("build")
    graph, infos = build_interference(
        func, weights, spill_temps, cache, stats=stats
    )
    timer.stop()
    spills: List[VReg] = sorted(
        (reg for reg in graph.nodes if math.isfinite(infos[reg].spill_cost)),
        key=lambda reg: reg.id,
    )
    if spills:
        if tracer is not None and tracer.wants_events:
            tracer.emit(
                "spill_round",
                n=1,
                count=len(spills),
                spills=[repr(reg) for reg in spills],
            )
        timer.start("spill_insert")
        insert_spill_code(func, spills, slots, spill_temps, None, tracer=tracer)
        cache.invalidate(func, INSTRUCTION_KEYS)
        timer.stop()

    # Iteration 2: everything left in the graph is a spill temp or the
    # in-register entry copy of a spilled parameter.  Plain Chaitin
    # simplification orders them (it only blocks — and raises — when
    # the register file cannot hold one instruction's operands) and
    # plain assignment colors them; with ``sc``/``bs``/``pr`` all off
    # neither consults a benefit model.
    if tracer is not None:
        tracer.begin_iteration(2)
        if tracer.wants_events:
            tracer.emit("iteration_begin", n=2)
    timer.start("build")
    graph, infos = build_interference(
        func, weights, spill_temps, cache, stats=stats
    )
    timer.stop()
    timer.start("order")
    simplify_started = time.perf_counter()
    ordering = simplify(
        graph,
        infos,
        regfile,
        key_fn=None,
        optimistic=False,
        spill_metric=options.spill_metric,
        tracer=tracer,
    )
    stats.simplify += time.perf_counter() - simplify_started
    timer.start("assign")
    assigner = ColorAssigner(
        graph,
        infos,
        {},
        regfile,
        options,
        forced_caller=None,
        callee_cost=0.0,
        tracer=tracer,
    )
    assignment = assigner.run(ordering.stack)
    timer.stop()
    if ordering.spilled or assignment.spilled:  # pragma: no cover - defensive
        raise AllocationError(
            f"{func.name}: spill-everywhere coloring spilled a spill "
            "temporary; the register file is too small for this function"
        )

    timer.start("emit")
    insert_save_restore_code(
        func, assignment.assignment, infos, slots, clobber_of, tracer=tracer
    )
    cache.invalidate(func, INSTRUCTION_KEYS)
    timer.stop()
    stats.iterations = 2
    stats.cache_hits = cache.hits - hits_before
    stats.cache_misses = cache.misses - misses_before
    if tracer is not None and tracer.wants_events:
        tracer.emit(
            "allocation_final",
            assigned=len(assignment.assignment),
            spilled_total=len(spills),
            frame_slots=slots.count,
            iterations=2,
        )
    return FunctionAllocation(
        func=func,
        assignment=assignment.assignment,
        infos=infos,
        spilled=spills,
        iterations=2,
        frame_slots=slots.count,
        stats=stats,
    )
