"""Aggressive (Chaitin-style) copy coalescing.

A copy ``d = s`` whose operands do not interfere is eliminated by
merging the two live ranges.  One round merges every eligible copy it
finds, resolving chains through an alias map and keeping the
interference graph conservatively correct by unioning adjacency sets;
the framework rebuilds the graph after any round that merged, so cost
data stays exact.

Parameters keep their registers (a merge involving a parameter keeps
the parameter's register; two live parameters interfere anyway), and
spill temporaries are never coalesced — growing an unspillable range
could wedge the allocator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.ir.function import Function
from repro.ir.instructions import Copy
from repro.ir.values import VReg
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo


def coalesce_round(
    func: Function,
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    tracer: Optional["Tracer"] = None,
) -> int:
    """Merge every eligible copy once; returns the number of merges.

    The function is rewritten in place (merged copies are deleted and
    remaining instructions renamed); ``graph`` and ``infos`` are
    updated conservatively and should be rebuilt by the caller when
    the return value is non-zero.
    """
    params: Set[VReg] = set(func.params)
    alias: Dict[VReg, VReg] = {}

    def resolve(reg: VReg) -> VReg:
        while reg in alias:
            reg = alias[reg]
        return reg

    merged = 0
    for block in func.blocks:
        kept = []
        for instr in block.instrs:
            if isinstance(instr, Copy):
                dst = resolve(instr.dst)
                src = resolve(instr.src)
                if dst is src:
                    continue  # no-op copy left over from earlier merges
                if _eligible(dst, src, graph, infos, params):
                    keep, gone = _pick_representative(dst, src, params)
                    if tracer is not None and tracer.wants_events:
                        tracer.emit(
                            "coalesce",
                            keep,
                            kept=repr(keep),
                            gone=repr(gone),
                            block=block.name,
                        )
                    graph.merge(keep, gone)
                    _merge_infos(infos, keep, gone)
                    alias[gone] = keep
                    merged += 1
                    continue
            kept.append(instr)
        block.instrs = kept

    if alias:
        mapping = {reg: resolve(reg) for reg in alias}
        for instr in func.instructions():
            instr.replace_uses(mapping)
            instr.replace_defs(mapping)
    return merged


def _eligible(
    dst: VReg,
    src: VReg,
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    params: Set[VReg],
) -> bool:
    if dst.vtype is not src.vtype:
        return False
    if graph.interferes(dst, src):
        return False
    if dst in params and src in params:
        return False
    if infos[dst].is_spill_temp or infos[src].is_spill_temp:
        return False
    return True


def _pick_representative(dst: VReg, src: VReg, params: Set[VReg]):
    """Returns ``(keep, gone)``.

    Parameters always survive a merge; otherwise a named register (a
    source variable) survives an unnamed temporary, which keeps
    diagnostics readable.
    """
    if dst in params:
        return dst, src
    if src not in params and dst.name and not src.name:
        return dst, src
    return src, dst


def _merge_infos(
    infos: Dict[VReg, LiveRangeInfo], keep: VReg, gone: VReg
) -> None:
    into = infos[keep]
    from_ = infos.pop(gone)
    into.spill_cost += from_.spill_cost
    into.num_defs += from_.num_defs
    into.num_uses += from_.num_uses
    into.caller_cost += from_.caller_cost
    into.crossed_calls.extend(from_.crossed_calls)
    into.blocks |= from_.blocks
