"""The CBH (Chaitin/Briggs-Hierarchical) call-cost model (Section 10).

CBH extends Chaitin-style coloring with an explicit encoding of the
calling convention:

* A live range that crosses a call **interferes with every caller-save
  register**: it may only be colored with a callee-save register.  In
  simplification terms its register budget shrinks from ``R + C`` to
  ``C`` (the callee-save count of its bank).
* Each callee-save register ``r`` is represented by a
  **callee-save-register live range** ``v_r`` spanning entry to exit.
  ``v_r`` interferes with every other live range of its bank.  Its
  spill cost is the save/restore cost (``2 * entry weight``).
  "Spilling" ``v_r`` inserts no spill code — it releases ``r`` for
  ordinary live ranges at the price of a save at entry and a restore
  at exit; coloring ``v_r`` (it can only take ``r`` itself) means the
  register stays untouched by the function.

When simplification blocks, CBH spills the remaining node with the
least plain spill cost (not cost/degree); the cheap ``v_r`` nodes are
therefore released first, which is exactly the model's intent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.frequency import BlockWeights
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.assign import AssignmentResult, ColorAssigner
from repro.regalloc.benefits import compute_benefits
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.simplify import OrderingResult, simplify


@dataclass
class CBHContext:
    """The CBH augmentation of one function's interference graph."""

    #: pseudo live range -> the callee-save register it stands for.
    pseudo_for: Dict[VReg, PhysReg] = field(default_factory=dict)
    #: ordinary live ranges that cross at least one call.
    crossing: Set[VReg] = field(default_factory=set)

    def is_pseudo(self, reg: VReg) -> bool:
        return reg in self.pseudo_for


def augment_for_cbh(
    func: Function,
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    regfile: RegisterFile,
    weights: BlockWeights,
) -> CBHContext:
    """Add callee-save-register live ranges to ``graph`` in place."""
    context = CBHContext(
        crossing={reg for reg, info in infos.items() if info.crosses_calls}
    )
    save_cost = 2.0 * weights.entry_weight
    for bank in regfile.banks:
        # One slot mask of the bank's ordinary nodes; each pseudo then
        # joins the clique with a single mask-edge call instead of one
        # add_edge per (pseudo, node) pair.
        index = graph._index
        ordinary_mask = 0
        for reg in graph.nodes:
            if reg.vtype is bank.vtype:
                ordinary_mask |= 1 << index[reg]
        pseudo_mask = 0
        for phys in bank.callee:
            pseudo = func.new_vreg(bank.vtype, f"csr:{phys.name}")
            context.pseudo_for[pseudo] = phys
            graph.add_node(pseudo)
            infos[pseudo] = LiveRangeInfo(reg=pseudo, spill_cost=save_cost)
            graph.add_edges_mask(pseudo, ordinary_mask | pseudo_mask)
            pseudo_mask |= 1 << index[pseudo]
    return context


class CBHAssigner(ColorAssigner):
    """Color assignment under the CBH register-kind constraints."""

    def __init__(self, context: CBHContext, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.context = context
        #: Pseudo nodes whose register could not stay untouched.
        self.released: List[VReg] = []

    def _assign_one(self, reg: VReg, result: AssignmentResult) -> None:
        if self.context.is_pseudo(reg):
            phys = self.context.pseudo_for[reg]
            taken = set()
            slot = self.graph._index.get(reg)
            if slot is not None:
                colored = self.graph._adj[slot] & self._colored
                phys_by_slot = self._phys_by_slot
                while colored:
                    low = colored & -colored
                    taken.add(phys_by_slot[low.bit_length() - 1])
                    colored ^= low
            trace = self.tracer is not None and self.tracer.wants_events
            if phys in taken:
                # Some ordinary live range got here first: the register
                # must be saved/restored.  No spill code, no iteration.
                if trace:
                    self.tracer.emit("cbh_release", reg, register=phys.name)
                self.released.append(reg)
            else:
                if trace:
                    self.tracer.emit("cbh_reserve", reg, register=phys.name)
                self._record(reg, phys, result)
            return
        super()._assign_one(reg, result)

    def _pick_register(self, reg: VReg, taken: Set[PhysReg]) -> Optional[PhysReg]:
        callee, caller = self._banks[reg.vtype]
        callee_order = self._callee_order(callee)
        if reg in self.context.crossing:
            groups = (callee_order,)  # caller-save registers forbidden
        else:
            groups = (caller, callee_order)
        for group in groups:
            for candidate in group:
                if candidate not in taken:
                    return candidate
        return None


def cbh_order_and_assign(
    context: CBHContext,
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    regfile: RegisterFile,
    weights: BlockWeights,
    options: AllocatorOptions,
    tracer: Optional["Tracer"] = None,
    stats=None,
):
    """Run CBH simplification and assignment; see the framework driver.

    ``stats`` is any object with a ``simplify`` float attribute (a
    ``PipelineStats``); when given, the simplification wall clock is
    accumulated onto it.
    """

    def budget(reg: VReg) -> int:
        bank = regfile.bank(reg.vtype)
        if reg in context.crossing and not context.is_pseudo(reg):
            return len(bank.callee)
        return bank.num_regs

    started = time.perf_counter() if stats is not None else 0.0
    ordering = simplify(
        graph,
        infos,
        regfile,
        optimistic=False,
        spill_metric="cost",
        num_regs=budget,
        tracer=tracer,
    )
    if stats is not None:
        stats.simplify += time.perf_counter() - started
    # A pseudo node spilled at ordering time is simply released: its
    # register becomes assignable and entry/exit code is charged only
    # if the register actually ends up used.
    real_spills = [reg for reg in ordering.spilled if not context.is_pseudo(reg)]
    if tracer is not None and tracer.wants_events:
        for reg in ordering.spilled:
            if context.is_pseudo(reg):
                tracer.emit(
                    "cbh_release", reg, register=context.pseudo_for[reg].name
                )
    ordering = OrderingResult(
        stack=ordering.stack, spilled=real_spills, optimistic=ordering.optimistic
    )
    benefits = compute_benefits(infos, weights)
    assigner = CBHAssigner(
        context, graph, infos, benefits, regfile, options, tracer=tracer
    )
    result = assigner.run(ordering.stack)
    # Drop the pseudo self-assignments: they only served to block
    # their registers during assignment.
    for pseudo in context.pseudo_for:
        result.assignment.pop(pseudo, None)
    return ordering, result
