"""The CBH (Chaitin/Briggs-Hierarchical) call-cost model (Section 10).

CBH extends Chaitin-style coloring with an explicit encoding of the
calling convention:

* A live range that crosses a call **interferes with every caller-save
  register**: it may only be colored with a callee-save register.  In
  simplification terms its register budget shrinks from ``R + C`` to
  ``C`` (the callee-save count of its bank).
* Each callee-save register ``r`` is represented by a
  **callee-save-register live range** ``v_r`` spanning entry to exit.
  ``v_r`` interferes with every other live range of its bank.  Its
  spill cost is the save/restore cost (``2 * entry weight``).
  "Spilling" ``v_r`` inserts no spill code — it releases ``r`` for
  ordinary live ranges at the price of a save at entry and a restore
  at exit; coloring ``v_r`` (it can only take ``r`` itself) means the
  register stays untouched by the function.

When simplification blocks, CBH spills the remaining node with the
least plain spill cost (not cost/degree); the cheap ``v_r`` nodes are
therefore released first, which is exactly the model's intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> regalloc)
    from repro.obs.tracer import Tracer

from repro.analysis.frequency import BlockWeights
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.machine.registers import PhysReg, RegisterFile
from repro.regalloc.assign import AssignmentResult, ColorAssigner
from repro.regalloc.benefits import compute_benefits
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo
from repro.regalloc.options import AllocatorOptions
from repro.regalloc.simplify import OrderingResult, simplify


@dataclass
class CBHContext:
    """The CBH augmentation of one function's interference graph."""

    #: pseudo live range -> the callee-save register it stands for.
    pseudo_for: Dict[VReg, PhysReg] = field(default_factory=dict)
    #: ordinary live ranges that cross at least one call.
    crossing: Set[VReg] = field(default_factory=set)

    def is_pseudo(self, reg: VReg) -> bool:
        return reg in self.pseudo_for


def augment_for_cbh(
    func: Function,
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    regfile: RegisterFile,
    weights: BlockWeights,
) -> CBHContext:
    """Add callee-save-register live ranges to ``graph`` in place."""
    context = CBHContext(
        crossing={reg for reg, info in infos.items() if info.crosses_calls}
    )
    save_cost = 2.0 * weights.entry_weight
    for bank in regfile.banks:
        ordinary = [reg for reg in graph.nodes if reg.vtype is bank.vtype]
        pseudos: List[VReg] = []
        for phys in bank.callee:
            pseudo = func.new_vreg(bank.vtype, f"csr:{phys.name}")
            context.pseudo_for[pseudo] = phys
            graph.add_node(pseudo)
            infos[pseudo] = LiveRangeInfo(reg=pseudo, spill_cost=save_cost)
            for other in ordinary:
                graph.add_edge(pseudo, other)
            for other in pseudos:
                graph.add_edge(pseudo, other)
            pseudos.append(pseudo)
    return context


class CBHAssigner(ColorAssigner):
    """Color assignment under the CBH register-kind constraints."""

    def __init__(self, context: CBHContext, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.context = context
        #: Pseudo nodes whose register could not stay untouched.
        self.released: List[VReg] = []

    def _assign_one(self, reg: VReg, result: AssignmentResult) -> None:
        if self.context.is_pseudo(reg):
            phys = self.context.pseudo_for[reg]
            taken = {
                result.assignment[nb]
                for nb in self.graph.neighbors(reg)
                if nb in result.assignment
            }
            trace = self.tracer is not None and self.tracer.wants_events
            if phys in taken:
                # Some ordinary live range got here first: the register
                # must be saved/restored.  No spill code, no iteration.
                if trace:
                    self.tracer.emit("cbh_release", reg, register=phys.name)
                self.released.append(reg)
            else:
                if trace:
                    self.tracer.emit("cbh_reserve", reg, register=phys.name)
                result.assignment[reg] = phys
            return
        super()._assign_one(reg, result)

    def _pick_register(self, reg: VReg, taken: Set[PhysReg]) -> Optional[PhysReg]:
        bank = self.regfile.bank(reg.vtype)
        callee_order = self._callee_order(bank.callee)
        if reg in self.context.crossing:
            order = callee_order  # caller-save registers are forbidden
        else:
            order = list(bank.caller) + callee_order
        for candidate in order:
            if candidate not in taken:
                return candidate
        return None


def cbh_order_and_assign(
    context: CBHContext,
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    regfile: RegisterFile,
    weights: BlockWeights,
    options: AllocatorOptions,
    tracer: Optional["Tracer"] = None,
):
    """Run CBH simplification and assignment; see the framework driver."""

    def budget(reg: VReg) -> int:
        bank = regfile.bank(reg.vtype)
        if reg in context.crossing and not context.is_pseudo(reg):
            return len(bank.callee)
        return bank.num_regs

    ordering = simplify(
        graph,
        infos,
        regfile,
        optimistic=False,
        spill_metric="cost",
        num_regs=budget,
        tracer=tracer,
    )
    # A pseudo node spilled at ordering time is simply released: its
    # register becomes assignable and entry/exit code is charged only
    # if the register actually ends up used.
    real_spills = [reg for reg in ordering.spilled if not context.is_pseudo(reg)]
    if tracer is not None and tracer.wants_events:
        for reg in ordering.spilled:
            if context.is_pseudo(reg):
                tracer.emit(
                    "cbh_release", reg, register=context.pseudo_for[reg].name
                )
    ordering = OrderingResult(
        stack=ordering.stack, spilled=real_spills, optimistic=ordering.optimistic
    )
    benefits = compute_benefits(infos, weights)
    assigner = CBHAssigner(
        context, graph, infos, benefits, regfile, options, tracer=tracer
    )
    result = assigner.run(ordering.stack)
    # Drop the pseudo self-assignments: they only served to block
    # their registers during assignment.
    for pseudo in context.pseudo_for:
        result.assignment.pop(pseudo, None)
    return ordering, result
