"""Color ordering for priority-based coloring (Chow, without splitting).

The priority of a live range is ``max(benefit_caller, benefit_callee)
/ size`` where ``size`` is the number of basic blocks the range spans
(paper Section 9.1).  Three strategies for building the color stack
are studied; the paper adopts ``sorting``:

* ``remove_unconstrained`` — peel unconstrained nodes off the graph
  (they land at the bottom of the stack), then push the remaining
  constrained nodes from least to highest priority.
* ``sort_unconstrained`` — same, but the unconstrained nodes are also
  peeled in priority order (lowest first) so high-priority
  unconstrained ranges sit higher in the stack.
* ``sorting`` — ignore the graph structure entirely and sort all live
  ranges by priority, highest on top.

Unlike Chaitin-style ordering, no spills happen here; a live range
that fails to find a color during assignment is spilled (the paper's
priority-based variant spills rather than splits).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.values import VReg
from repro.machine.registers import RegisterFile
from repro.regalloc.benefits import Benefits, priority_function
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo
from repro.regalloc.simplify import OrderingResult

#: The strategy the paper selects after comparing all three.
DEFAULT_STRATEGY = "sorting"

STRATEGIES = ("remove_unconstrained", "sort_unconstrained", "sorting")


def priority_order(
    graph: InterferenceGraph,
    infos: Dict[VReg, LiveRangeInfo],
    benefits: Dict[VReg, Benefits],
    regfile: RegisterFile,
    strategy: str = DEFAULT_STRATEGY,
) -> OrderingResult:
    """Build the color stack for priority-based coloring."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown priority strategy {strategy!r}")

    def priority(reg: VReg) -> float:
        return priority_function(infos[reg], benefits[reg])

    nodes = list(graph.nodes)
    if strategy == "sorting":
        stack = sorted(nodes, key=lambda reg: (priority(reg), -reg.id))
        return OrderingResult(stack=stack)

    degrees = {reg: graph.degree(reg) for reg in nodes}
    remaining: Set[VReg] = set(nodes)
    unconstrained_stack: List[VReg] = []

    def peel_order(candidates: List[VReg]) -> List[VReg]:
        if strategy == "sort_unconstrained":
            return sorted(candidates, key=lambda reg: (priority(reg), -reg.id))
        return sorted(candidates, key=lambda reg: reg.id)

    while True:
        candidates = [
            reg
            for reg in remaining
            if degrees[reg] < regfile.bank(reg.vtype).num_regs
        ]
        if not candidates:
            break
        for reg in peel_order(candidates):
            # Degrees shift as we peel; re-check before removing.
            if degrees[reg] >= regfile.bank(reg.vtype).num_regs:
                continue
            remaining.discard(reg)
            unconstrained_stack.append(reg)
            for neighbor in graph.neighbors(reg):
                if neighbor in remaining:
                    degrees[neighbor] -= 1

    constrained = sorted(remaining, key=lambda reg: (priority(reg), -reg.id))
    return OrderingResult(stack=unconstrained_stack + constrained)
