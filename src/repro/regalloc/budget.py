"""Phase budgets: bounded allocation runs.

An :class:`AllocationBudget` puts ceilings on one allocation run — a
wall-clock deadline, a per-function iteration ceiling and a
per-function spill-count ceiling.  The framework checks the deadline
at every phase boundary and the ceilings at their natural points
(iteration start, after each spill round), so a runaway run surfaces
as a catchable :class:`BudgetExceeded` instead of minutes of silence
or a bare ``RuntimeError``.

``BudgetExceeded`` derives from
:class:`~repro.regalloc.errors.AllocationError`, so everything that
already contains allocator failures — the fault-tolerant sweep, the
fuzz harness, the resilience fallback chain — absorbs a blown budget
like any other allocation failure.

The clock starts lazily (at the first deadline check) or explicitly
via :meth:`AllocationBudget.start`; ``allocate_program`` restarts it
at the top of every call, so a deadline bounds one program allocation
and each rung of a fallback chain gets the full allowance.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.regalloc.errors import AllocationError


class BudgetExceeded(AllocationError):
    """An allocation run blew one of its budget ceilings.

    ``limit_kind`` is machine-readable: ``deadline``, ``iterations``
    or ``spills``.  ``phase`` names the pipeline phase about to start
    when a deadline fired (ceiling checks leave it None).
    """

    def __init__(
        self,
        limit_kind: str,
        limit: float,
        observed: float,
        function: str,
        phase: Optional[str] = None,
    ) -> None:
        self.limit_kind = limit_kind
        self.limit = limit
        self.observed = observed
        self.function = function
        self.phase = phase
        where = f" entering phase {phase!r}" if phase else ""
        if limit_kind == "deadline":
            detail = f"{observed:.3f}s elapsed, deadline {limit:g}s"
        else:
            detail = f"{observed:g} observed, ceiling {limit:g}"
        super().__init__(
            f"{function}: allocation budget exceeded{where}: "
            f"{limit_kind} ({detail})"
        )

    def as_dict(self) -> dict:
        return {
            "limit_kind": self.limit_kind,
            "limit": self.limit,
            "observed": self.observed,
            "function": self.function,
            "phase": self.phase,
            "message": str(self),
        }


class AllocationBudget:
    """Ceilings for one allocation run; all limits optional.

    * ``deadline_seconds`` — wall clock for the whole
      ``allocate_program`` call, checked at phase boundaries.
    * ``max_iterations`` — allocate/spill iterations allowed *per
      function* (tighter than the framework's hard bound).
    * ``max_spills`` — spilled live ranges allowed per function,
      summed over iterations.

    The object is reusable: ``start()`` (called by
    ``allocate_program``) resets the clock, so the same budget can
    govern several runs — e.g. every rung of a fallback chain — each
    with a fresh allowance.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        max_spills: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("deadline_seconds", deadline_seconds),
            ("max_iterations", max_iterations),
            ("max_spills", max_spills),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        self.deadline_seconds = deadline_seconds
        self.max_iterations = max_iterations
        self.max_spills = max_spills
        self._started: Optional[float] = None

    def start(self) -> None:
        """(Re)start the wall clock for a new run."""
        self._started = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the first check)."""
        if self._started is None:
            return 0.0
        return time.perf_counter() - self._started

    # ------------------------------------------------------------------
    # checks, called from the framework
    # ------------------------------------------------------------------

    def check_deadline(self, function: str, phase: str) -> None:
        """Raise :class:`BudgetExceeded` when the deadline has passed."""
        if self.deadline_seconds is None:
            return
        if self._started is None:
            self._started = time.perf_counter()
            if self.deadline_seconds > 0:
                return
        elapsed = time.perf_counter() - self._started
        if elapsed > self.deadline_seconds:
            raise BudgetExceeded(
                "deadline",
                self.deadline_seconds,
                elapsed,
                function,
                phase=phase,
            )

    def check_iterations(self, function: str, iteration: int) -> None:
        """Raise when ``iteration`` exceeds the per-function ceiling."""
        if self.max_iterations is not None and iteration > self.max_iterations:
            raise BudgetExceeded(
                "iterations", self.max_iterations, iteration, function
            )

    def check_spills(self, function: str, spilled: int) -> None:
        """Raise when the function's spill count exceeds its ceiling."""
        if self.max_spills is not None and spilled > self.max_spills:
            raise BudgetExceeded("spills", self.max_spills, spilled, function)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationBudget(deadline_seconds={self.deadline_seconds}, "
            f"max_iterations={self.max_iterations}, "
            f"max_spills={self.max_spills})"
        )
