"""Graphviz (DOT) export of interference graphs.

Diagnostic aid: render a function's interference graph with the
allocator's decisions overlaid — node labels carry the live range's
spill cost and benefits, colors mark the assigned register kind
(caller-save, callee-save, spilled).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.ir.values import VReg
from repro.machine.registers import PhysReg
from repro.regalloc.interference import InterferenceGraph, LiveRangeInfo

_KIND_COLORS = {
    "caller": "#7eb6ff",   # caller-save: light blue
    "callee": "#8fd18f",   # callee-save: light green
    "spilled": "#f2a0a0",  # spilled: light red
    "none": "#dddddd",
}


def _label(reg: VReg, info: Optional[LiveRangeInfo]) -> str:
    name = repr(reg).replace('"', "'")
    if info is None:
        return name
    cost = "inf" if math.isinf(info.spill_cost) else f"{info.spill_cost:.0f}"
    return f"{name}\\nspill={cost} calls={len(info.crossed_calls)}"


def to_dot(
    graph: InterferenceGraph,
    infos: Optional[Dict[VReg, LiveRangeInfo]] = None,
    assignment: Optional[Dict[VReg, PhysReg]] = None,
    title: str = "interference",
) -> str:
    """Render ``graph`` (optionally annotated) as a DOT string."""
    infos = infos or {}
    assignment = assignment or {}
    lines = [
        f'graph "{title}" {{',
        "    layout=neato;",
        "    overlap=false;",
        '    node [style=filled, fontname="monospace", fontsize=10];',
    ]
    nodes = sorted(graph.nodes, key=lambda r: r.id)
    for reg in nodes:
        phys = assignment.get(reg)
        if phys is None:
            kind = "spilled" if reg in infos and not math.isinf(
                infos[reg].spill_cost if reg in infos else 0.0
            ) and assignment else "none"
        elif phys.is_callee_save:
            kind = "callee"
        else:
            kind = "caller"
        color = _KIND_COLORS[kind]
        label = _label(reg, infos.get(reg))
        extra = f'\\n{phys.name}' if phys is not None else ""
        lines.append(
            f'    n{reg.id} [label="{label}{extra}", fillcolor="{color}"];'
        )
    emitted = set()
    for reg in nodes:
        for neighbor in sorted(graph.neighbors(reg), key=lambda r: r.id):
            key = (min(reg.id, neighbor.id), max(reg.id, neighbor.id))
            if key in emitted:
                continue
            emitted.add(key)
            lines.append(f"    n{key[0]} -- n{key[1]};")
    lines.append("}")
    return "\n".join(lines)
