"""Live-range (web) construction.

A *web* is a maximal set of definitions and uses connected through
def-use chains: two definitions belong to the same web when some use
is reached by both.  Webs are the allocation unit of Chaitin-style
coloring — a source variable reused in disjoint regions yields
independent webs that can live in different registers.

``build_webs`` renames each web of a function to a dedicated virtual
register (in place), after which *register == live range* for every
later phase.  The web containing a parameter's entry definition keeps
the parameter register, so the function signature survives renaming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.reaching import compute_reaching_defs
from repro.ir.function import BasicBlock, Function
from repro.ir.values import VReg
from repro.regalloc.errors import WebConstructionError

#: A definition site including the defined register; the parameter
#: pseudo-site is ``(entry, -1, param)``.
_SiteKey = Tuple[BasicBlock, int, VReg]


@dataclass
class Web:
    """One live range: its register and the member def/use sites."""

    reg: VReg
    def_sites: List[Tuple[BasicBlock, int]] = field(default_factory=list)
    use_sites: List[Tuple[BasicBlock, int]] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"<web {self.reg}: {len(self.def_sites)} defs, "
            f"{len(self.use_sites)} uses>"
        )


class _UnionFind:
    def __init__(self):
        self.parent: Dict[_SiteKey, _SiteKey] = {}

    def find(self, key: _SiteKey) -> _SiteKey:
        root = key
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[key] != root:  # path compression
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a: _SiteKey, b: _SiteKey) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def build_webs(func: Function) -> List[Web]:
    """Split every register of ``func`` into webs and rename in place.

    Returns the list of webs (one per renamed register).  Registers
    whose definitions all belong to one web keep their identity; the
    extra webs of a split register get fresh registers named after the
    original.
    """
    reaching = compute_reaching_defs(func)
    uf = _UnionFind()

    # Union the def sites that share a use; remember, per use, one
    # representative def site so we can resolve the use's web later.
    use_anchor: Dict[Tuple[BasicBlock, int, VReg], _SiteKey] = {}
    for (use_site, reg), def_sites in reaching.use_chains.items():
        sites = [(block, index, reg) for block, index in def_sites]
        if not sites:
            # The IR verifier's definite-assignment check makes this
            # unreachable for verified functions.
            raise ValueError(
                f"{func.name}: use of {reg} at {use_site[0].name}:{use_site[1]} "
                "has no reaching definition"
            )
        for other in sites[1:]:
            uf.union(sites[0], other)
        use_anchor[(use_site[0], use_site[1], reg)] = sites[0]

    # Choose the register for each web: the original register for the
    # web containing its first definition (parameters always qualify,
    # because their pseudo-site is ordered first), fresh ones otherwise.
    web_regs: Dict[_SiteKey, VReg] = {}
    webs: Dict[VReg, Web] = {}
    for reg, def_sites in reaching.def_sites.items():
        roots_seen: Set[_SiteKey] = set()
        for i, (block, index) in enumerate(def_sites):
            root = uf.find((block, index, reg))
            if root in roots_seen:
                continue
            roots_seen.add(root)
            if i == 0:
                web_reg = reg
            else:
                web_reg = func.new_vreg(reg.vtype, reg.name)
            web_regs[root] = web_reg
            webs[web_reg] = Web(reg=web_reg)

    # Rewrite every instruction: defs by their own site, uses by the
    # web of their reaching definitions.
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            use_map: Dict[VReg, VReg] = {}
            for reg in instr.uses():
                anchor = use_anchor[(block, index, reg)]
                web_reg = web_regs[uf.find(anchor)]
                use_map[reg] = web_reg
                webs[web_reg].use_sites.append((block, index))
            if use_map:
                instr.replace_uses(use_map)
            def_map: Dict[VReg, VReg] = {}
            for reg in instr.defs():
                web_reg = web_regs[uf.find((block, index, reg))]
                def_map[reg] = web_reg
                webs[web_reg].def_sites.append((block, index))
            if def_map:
                instr.replace_defs(def_map)

    # Parameter pseudo-sites.
    for param in func.params:
        root = uf.find((func.entry, -1, param))
        web_reg = web_regs[root]
        if web_reg is not param:
            raise WebConstructionError(
                f"parameter {param} lost its register to {web_reg}",
                function=func.name,
                block=func.entry.name,
                index=-1,
            )
        webs[web_reg].def_sites.append((func.entry, -1))

    return list(webs.values())
