"""Live-range (web) construction.

A *web* is a maximal set of definitions and uses connected through
def-use chains: two definitions belong to the same web when some use
is reached by both.  Webs are the allocation unit of Chaitin-style
coloring — a source variable reused in disjoint regions yields
independent webs that can live in different registers.

``build_webs`` renames each web of a function to a dedicated virtual
register (in place), after which *register == live range* for every
later phase.  The web containing a parameter's entry definition keeps
the parameter register, so the function signature survives renaming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.reaching import compute_reaching_defs
from repro.ir.function import BasicBlock, Function
from repro.ir.values import VReg
from repro.regalloc.errors import WebConstructionError

#: A definition site including the defined register; the parameter
#: pseudo-site is ``(entry, -1, param)``.
_SiteKey = Tuple[BasicBlock, int, VReg]


@dataclass
class Web:
    """One live range: its register and the member def/use sites."""

    reg: VReg
    def_sites: List[Tuple[BasicBlock, int]] = field(default_factory=list)
    use_sites: List[Tuple[BasicBlock, int]] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"<web {self.reg}: {len(self.def_sites)} defs, "
            f"{len(self.use_sites)} uses>"
        )


def build_webs(func: Function) -> List[Web]:
    """Split every register of ``func`` into webs and rename in place.

    Returns the list of webs (one per renamed register).  Registers
    whose definitions all belong to one web keep their identity; the
    extra webs of a split register get fresh registers named after the
    original.

    The union-find runs over the reaching-defs kernel's dense site
    ids (a plain parent array) rather than ``(block, index, reg)``
    tuples; the partition — and therefore the renaming — is the same.
    """
    reaching = compute_reaching_defs(func)
    site_ids = reaching.site_ids

    parent = list(range(reaching.num_sites))

    def find(site: int) -> int:
        root = site
        while parent[root] != root:
            root = parent[root]
        while parent[site] != root:  # path compression
            parent[site], site = root, parent[site]
        return root

    # Union the def sites that share a use; remember, per use, one
    # representative def site so we can resolve the use's web later.
    use_anchor: Dict[Tuple[BasicBlock, int, VReg], int] = {}
    for (block, index, reg), mask in reaching.use_masks.items():
        if not mask:
            # The IR verifier's definite-assignment check makes this
            # unreachable for verified functions.
            raise ValueError(
                f"{func.name}: use of {reg} at {block.name}:{index} "
                "has no reaching definition"
            )
        low = mask & -mask
        anchor = low.bit_length() - 1
        use_anchor[(block, index, reg)] = anchor
        rest = mask ^ low
        while rest:
            low = rest & -rest
            other = low.bit_length() - 1
            rest ^= low
            ra, rb = find(anchor), find(other)
            if ra != rb:
                parent[ra] = rb

    # Choose the register for each web: the original register for the
    # web containing its first definition (parameters always qualify,
    # because their pseudo-site is ordered first), fresh ones otherwise.
    web_regs: Dict[int, VReg] = {}
    webs: Dict[VReg, Web] = {}
    for reg, ids in reaching.def_site_ids.items():
        roots_seen: Set[int] = set()
        for i, sid in enumerate(ids):
            root = find(sid)
            if root in roots_seen:
                continue
            roots_seen.add(root)
            if i == 0:
                web_reg = reg
            else:
                web_reg = func.new_vreg(reg.vtype, reg.name)
            web_regs[root] = web_reg
            webs[web_reg] = Web(reg=web_reg)

    # Rewrite every instruction: defs by their own site, uses by the
    # web of their reaching definitions.
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            use_map: Dict[VReg, VReg] = {}
            for reg in instr.uses():
                anchor = use_anchor[(block, index, reg)]
                web_reg = web_regs[find(anchor)]
                use_map[reg] = web_reg
                webs[web_reg].use_sites.append((block, index))
            if use_map:
                instr.replace_uses(use_map)
            def_map: Dict[VReg, VReg] = {}
            for reg in instr.defs():
                web_reg = web_regs[find(site_ids[(block, index, reg)])]
                def_map[reg] = web_reg
                webs[web_reg].def_sites.append((block, index))
            if def_map:
                instr.replace_defs(def_map)

    # Parameter pseudo-sites.
    for param in func.params:
        root = find(site_ids[(func.entry, -1, param)])
        web_reg = web_regs[root]
        if web_reg is not param:
            raise WebConstructionError(
                f"parameter {param} lost its register to {web_reg}",
                function=func.name,
                block=func.entry.name,
                index=-1,
            )
        webs[web_reg].def_sites.append((func.entry, -1))

    return list(webs.values())
