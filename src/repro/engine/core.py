"""The allocation engine: one entry point for every client.

:class:`AllocationEngine` is the facade that owns everything a client
needs to turn *a program and an allocator configuration* into *an
allocation report*: preset resolution, compilation and profiling,
per-program :class:`~repro.analysis.manager.AnalysisCache` sharing,
budgets, tracing, the resilience fallback ladder, and content-addressed
result caching.  The CLI commands (``allocate``, ``sweep``,
``experiment``), the HTTP server (:mod:`repro.serve`) and the grid
runner all sit on top of this one :meth:`~AllocationEngine.submit`
path, so there is exactly one implementation of the allocate pipeline
to reason about.

Request lifecycle::

    AllocationRequest
        -> resolve preset -> compile + profile (program cache)
        -> content-cache lookup (program hash, options, config, flags)
        -> allocate_program (budget, tracer, resilient ladder)
        -> overhead + report
        -> content-cache store -> AllocationResult

Grid-shaped work (sweeps, experiments) goes through
:meth:`AllocationEngine.run_keys`, which delegates to the
process-parallel :func:`repro.eval.runner.run_grid` executor — the
engine decides *what* to compute, the runner owns *how* to fan it
out.  Batch submissions (:meth:`AllocationEngine.submit_batch`) are
grouped by program fingerprint exactly like ``run_grid`` chunks by
workload, so a batch over one program compiles and profiles it once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import (
    ContentCache,
    fingerprint_program,
    fingerprint_text,
    result_key,
)
from repro.eval.overhead import Overhead, program_overhead
from repro.eval.report import allocation_report
from repro.ir import IRParseError, parse_ir, verify_program
from repro.lang import FrontendError, compile_source
from repro.machine.mips import register_file
from repro.machine.registers import RegisterConfig
from repro.obs.metrics import METRICS
from repro.regalloc.budget import AllocationBudget
from repro.regalloc.framework import ProgramAllocation, allocate_program
from repro.regalloc.options import PRESETS, AllocatorOptions


class EngineError(Exception):
    """An engine failure; ``status`` hints the HTTP mapping."""

    status = 500


class RequestError(EngineError):
    """The request itself is malformed (unknown preset, bad source)."""

    status = 400


@dataclass(frozen=True)
class AllocationRequest:
    """One allocation job, however it reaches the engine.

    Exactly one of ``source`` (mini-C text), ``ir`` (textual IR) or
    ``workload`` (a registered SPEC92 stand-in name) selects the
    program.  Everything else mirrors the CLI's ``allocate`` flags.
    """

    source: Optional[str] = None
    ir: Optional[str] = None
    workload: Optional[str] = None
    preset: str = "improved"
    config: RegisterConfig = RegisterConfig(6, 4, 2, 2)
    info: str = "dynamic"
    optimize: bool = False
    resilient: bool = False
    verify: bool = False
    trace: bool = False
    fuel: int = 50_000_000
    #: Wall-clock budget for the allocation (per fallback rung); the
    #: resilience ladder's final rung deliberately ignores it.
    deadline_seconds: Optional[float] = None
    #: Display name for reports (defaults to the program's own name).
    name: str = "request"
    #: Request trace identity, minted at HTTP ingress (or adopted from
    #: the ``X-Repro-Trace-Id`` header) and carried everywhere this
    #: request goes — including over the supervisor pipe into forked
    #: workers, since the request pickles whole.
    trace_id: Optional[str] = None
    #: Record per-phase spans (no decision events) so the serving
    #: stack can build span trees; independent of ``trace``, which
    #: additionally records the full decision-event stream.
    telemetry: bool = False

    def program_spec(self) -> Tuple[str, str]:
        """``(kind, text-or-name)`` of the program this request names."""
        picked = [
            (kind, value)
            for kind, value in (
                ("source", self.source),
                ("ir", self.ir),
                ("workload", self.workload),
            )
            if value is not None
        ]
        if len(picked) != 1:
            raise RequestError(
                "exactly one of source, ir or workload must be given"
            )
        return picked[0]


@dataclass
class AllocationResult:
    """Everything :meth:`AllocationEngine.submit` yields for a request."""

    report: dict
    allocation: ProgramAllocation
    overhead: Overhead
    fingerprint: str
    preset: str
    #: The compiled (pre-allocation) program the request named; the
    #: CLI's ``--verify`` execution check re-runs it as the oracle.
    source_program: object = None
    #: Decision events when the request asked for tracing.
    trace_events: Tuple = ()
    #: Per-phase spans when the request asked for tracing or telemetry;
    #: the serving stack converts these into ``engine:<phase>`` child
    #: spans of the request's span tree.
    phase_spans: Tuple = ()
    cache_hit: bool = False
    elapsed_seconds: float = 0.0

    def to_wire(self) -> dict:
        """The JSON-safe body every serving layer ships for a success.

        One canonical shape whether the result was produced in-process
        (the inline server path), inside a supervised worker subprocess
        (which pickles only this dict back over the pipe, never the
        allocation itself), or by the supervisor's own degrade
        fallback.
        """
        body = {
            "status": "ok",
            "cache": "hit" if self.cache_hit else "miss",
            "elapsed_ms": round(self.elapsed_seconds * 1000.0, 3),
            "fingerprint": self.fingerprint,
            "preset": self.preset,
            "report": self.report,
        }
        if self.trace_events:
            body["trace"] = [event.to_dict() for event in self.trace_events]
        return body


def error_wire(error: BaseException) -> Tuple[int, dict]:
    """``(HTTP status, JSON-safe body)`` for a failed allocation.

    Shared by the HTTP server and the worker subprocess so an error
    crossing the worker pipe renders exactly like one raised inline.
    """
    status = error.status if isinstance(error, EngineError) else 500
    return status, {
        "status": "error",
        "error_type": type(error).__name__,
        "error": str(error),
    }


@dataclass
class _CompiledEntry:
    """A compiled and profiled program, shared across requests."""

    program: object
    profile: object
    analyses: object
    fingerprint: str
    static_weights: Callable
    dynamic_weights: Callable


class AllocationEngine:
    """The shared facade over the allocation pipeline.

    One engine instance per process is the intended shape (the CLI
    builds a throwaway one per command; the server keeps one for its
    whole lifetime).  Thread-safe: the server calls :meth:`submit`
    from several worker threads.
    """

    def __init__(
        self,
        presets: Optional[Dict[str, Callable[[], AllocatorOptions]]] = None,
        cache_size: int = 256,
        program_cache_size: int = 64,
        resilient_default: bool = False,
        default_deadline: Optional[float] = None,
    ) -> None:
        self.presets = dict(PRESETS if presets is None else presets)
        self.results = ContentCache(cache_size, metric_prefix="engine.cache")
        self._programs = ContentCache(
            program_cache_size, metric_prefix="engine.programs"
        )
        self.resilient_default = resilient_default
        self.default_deadline = default_deadline
        self._compile_lock = threading.Lock()
        self.submitted = 0

    # ------------------------------------------------------------------
    # request resolution
    # ------------------------------------------------------------------

    def resolve_options(self, preset: str) -> AllocatorOptions:
        try:
            factory = self.presets[preset]
        except KeyError:
            raise RequestError(
                f"unknown preset {preset!r}; "
                f"available: {', '.join(sorted(self.presets))}"
            ) from None
        return factory()

    def _compile(self, request: AllocationRequest) -> _CompiledEntry:
        """Compile + profile the request's program (content-cached).

        Programs are keyed by the hash of their submitted text (plus
        the compile-relevant knobs), so repeated requests over the
        same program — the serving hot path — skip the compile, the
        verifier pass and the profiling run entirely and share one
        :class:`AnalysisCache`.
        """
        kind, text = request.program_spec()
        if kind == "workload":
            from repro.workloads.registry import compile_workload

            try:
                compiled = compile_workload(text)
            except KeyError as error:
                raise RequestError(str(error)) from None
            return _CompiledEntry(
                program=compiled.program,
                profile=compiled.profile,
                analyses=compiled.analyses,
                fingerprint=fingerprint_program(compiled.program),
                static_weights=compiled.static_weights,
                dynamic_weights=compiled.dynamic_weights,
            )

        cache_key = (kind, fingerprint_text(text), request.optimize, request.fuel)
        entry = self._programs.get(cache_key)
        if entry is not None:
            return entry
        with self._compile_lock:
            entry = self._programs.peek(cache_key)
            if entry is not None:
                return entry
            entry = self._compile_fresh(kind, text, request)
            self._programs.put(cache_key, entry)
            return entry

    def _compile_fresh(
        self, kind: str, text: str, request: AllocationRequest
    ) -> _CompiledEntry:
        from repro.analysis.frequency import static_weights
        from repro.analysis.manager import AnalysisCache
        from repro.profile.interp import run_program

        try:
            if kind == "ir":
                program = parse_ir(text, name=request.name)
                verify_program(program)
            else:
                program = compile_source(text, name=request.name)
        except (FrontendError, IRParseError) as error:
            raise RequestError(f"{type(error).__name__}: {error}") from error
        if request.optimize:
            from repro.opt import optimize_program

            optimize_program(program)
        fingerprint = fingerprint_program(program)
        # Warm path: the artifact store may already hold this program's
        # profiling run (published by any process).  The stored run must
        # fit this request's fuel budget — a hit is not allowed to mask
        # the fuel-exhaustion error a fresh profiling run would raise.
        from repro.store import load_program_artifact, save_program_artifact

        warm = load_program_artifact(program, fingerprint=fingerprint)
        if warm is not None and warm.instructions_executed <= request.fuel:
            return _CompiledEntry(
                program=program,
                profile=warm.profile,
                analyses=warm.analyses,
                fingerprint=fingerprint,
                static_weights=static_weights,
                dynamic_weights=warm.profile.weights,
            )
        try:
            baseline = run_program(program, fuel=request.fuel)
        except Exception as error:
            raise RequestError(
                f"profiling failed: {type(error).__name__}: {error}"
            ) from error
        entry = _CompiledEntry(
            program=program,
            profile=baseline.profile,
            analyses=AnalysisCache(),
            fingerprint=fingerprint,
            static_weights=static_weights,
            dynamic_weights=baseline.profile.weights,
        )
        save_program_artifact(
            program, baseline, entry.analyses, fingerprint=fingerprint
        )
        return entry

    # ------------------------------------------------------------------
    # the one entry point
    # ------------------------------------------------------------------

    def submit(self, request: AllocationRequest) -> AllocationResult:
        """Run one allocation request through the whole pipeline.

        Results are content-cached: a second request for the same
        parsed program under the same options, register configuration,
        info source and flags returns the stored result (tagged
        ``cache_hit``) without touching the allocator.  Requests that
        ask for a decision trace bypass the cache *read* (events are
        per-run artifacts) but still store their result.
        """
        started = time.perf_counter()
        self.submitted += 1
        if request.info not in ("static", "dynamic"):
            raise RequestError(
                f"info must be 'static' or 'dynamic', got {request.info!r}"
            )
        options = self.resolve_options(request.preset)
        resilient = request.resilient or self.resilient_default
        deadline = request.deadline_seconds
        if deadline is None:
            deadline = self.default_deadline
        compiled = self._compile(request)
        flags = []
        if resilient:
            flags.append("resilient")
        if request.optimize:
            flags.append("optimize")
        if deadline is not None:
            # The deadline changes what comes back (a tight budget can
            # degrade a resilient run), so it is part of the identity.
            flags.append(f"deadline={deadline:g}")
        key = result_key(
            compiled.fingerprint, options, request.config, request.info,
            tuple(flags),
        )
        if not request.trace:
            cached = self.results.get(key)
            if cached is not None:
                # Phase spans are per-run artifacts: the stored ones
                # describe the run that populated the cache (possibly
                # another trace ID, another process), so a hit returns
                # without them — the serving layer records the hit as
                # an ``engine-cache`` span instead.
                return replace(
                    cached,
                    cache_hit=True,
                    phase_spans=(),
                    elapsed_seconds=time.perf_counter() - started,
                )

        tracer = None
        if request.trace:
            from repro.obs.tracer import Tracer

            tracer = Tracer(trace_id=request.trace_id)
        elif request.telemetry:
            from repro.obs.tracer import Tracer

            # Span-only: telemetered serving wants phase timings in the
            # request's span tree without paying for (or shipping) the
            # per-decision event stream.
            tracer = Tracer(record_events=False, trace_id=request.trace_id)
        budget = (
            AllocationBudget(deadline_seconds=deadline)
            if deadline is not None
            else None
        )
        weights_for = (
            compiled.dynamic_weights
            if request.info == "dynamic"
            else compiled.static_weights
        )
        allocation = allocate_program(
            compiled.program,
            register_file(request.config),
            options,
            weights_for,
            cache=compiled.analyses,
            tracer=tracer,
            budget=budget,
            resilient=resilient,
        )
        if allocation.resilience is not None:
            from repro.resilience import record_resilience

            record_resilience(allocation.resilience)
        if request.verify:
            from repro.regalloc.verify import verify_allocation

            verify_allocation(allocation)
        overhead = program_overhead(allocation, compiled.profile)
        report = allocation_report(
            allocation, overhead, str(request.config), request.info
        )
        result = AllocationResult(
            report=report,
            allocation=allocation,
            overhead=overhead,
            fingerprint=compiled.fingerprint,
            preset=request.preset,
            source_program=compiled.program,
            trace_events=tuple(tracer.events) if tracer is not None else (),
            phase_spans=tuple(tracer.spans) if tracer is not None else (),
            cache_hit=False,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.results.put(key, result)
        return result

    def submit_batch(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResult]:
        """Submit a batch, grouped by program for compile sharing.

        Mirrors ``run_grid``'s chunk-by-workload strategy: requests
        over the same program run back to back, so each distinct
        program is compiled and profiled at most once per batch even
        under a tiny program cache.  Results come back in request
        order; a failing request yields its exception in-slot rather
        than sinking its batch-mates.
        """
        order: Dict[Tuple[str, str], List[int]] = {}
        for index, request in enumerate(requests):
            try:
                spec = request.program_spec()
            except RequestError:
                spec = ("invalid", str(index))
            order.setdefault(spec, []).append(index)
        results: List[object] = [None] * len(requests)
        for indices in order.values():
            for index in indices:
                try:
                    results[index] = self.submit(requests[index])
                except Exception as error:  # noqa: BLE001 - travels in-slot
                    results[index] = error
        return results

    # ------------------------------------------------------------------
    # grid-shaped work (the CLI sweep / experiment path)
    # ------------------------------------------------------------------

    def run_keys(
        self,
        keys: Sequence,
        jobs: Optional[int] = None,
        verify: bool = False,
        timeout: Optional[float] = None,
        trace: bool = False,
        resilient: bool = False,
    ):
        """Pre-compute workload measurement keys (process-parallel).

        Thin delegation to :func:`repro.eval.runner.run_grid`; the
        engine is the only caller the CLI goes through, so grid-shaped
        and single-request work share one front door.
        """
        from repro.eval.runner import run_grid

        return run_grid(
            keys,
            jobs=jobs,
            verify=verify,
            timeout=timeout,
            trace=trace,
            resilient=resilient,
        )

    def sweep(
        self,
        workload: str,
        names: Sequence[str],
        configs: Sequence[RegisterConfig],
        info: str = "dynamic",
        jobs: Optional[int] = None,
        verify: bool = False,
        timeout: Optional[float] = None,
        trace: bool = False,
        resilient: bool = False,
    ) -> Tuple[dict, object, List]:
        """One allocator×config sweep over a workload.

        Returns ``(report dict, GridReport, keys)`` — the report is
        the same plain-data record ``repro sweep`` has always
        rendered, so the CLI (and anything else) only formats it.
        """
        from repro.eval.report import sweep_report
        from repro.eval.runner import RESULTS, measure

        keys = [
            (workload, self.resolve_options(name), config, info)
            for name in names
            for config in configs
        ]
        grid = self.run_keys(
            keys,
            jobs=jobs,
            verify=verify,
            timeout=timeout,
            trace=trace,
            resilient=resilient,
        )
        failed_keys = set(grid.failed_keys())
        data = {}
        resilience = {} if resilient else None
        for name in names:
            options = self.resolve_options(name)
            totals = {}
            cells = {}
            for config in configs:
                key = (workload, options, config, info)
                if key in failed_keys:
                    totals[str(config)] = None
                    cells[str(config)] = None
                else:
                    overhead = measure(
                        workload, options, config, info, resilient=resilient
                    )
                    totals[str(config)] = overhead.total
                    measurement = RESULTS.peek(key)
                    cells[str(config)] = (
                        measurement.resilience
                        if measurement is not None
                        else None
                    )
            data[name] = totals
            if resilience is not None:
                resilience[name] = cells
        METRICS.set_gauge("results_cache.hits", RESULTS.hits)
        METRICS.set_gauge("results_cache.misses", RESULTS.misses)
        report = sweep_report(
            workload,
            info,
            names,
            configs,
            data,
            grid,
            metrics=METRICS.as_dict(),
            resilience=resilience,
        )
        return report, grid, keys

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready engine health (cache traffic, request count)."""
        return {
            "submitted": self.submitted,
            "result_cache": self.results.stats(),
            "program_cache": self._programs.stats(),
            "presets": sorted(self.presets),
        }
