"""Allocation-as-a-service engine layer.

The reusable core the CLI and the HTTP server (:mod:`repro.serve`)
both sit on: :class:`AllocationEngine` owns preset resolution,
compilation/profiling, analysis caches, budgets, tracing, the
resilience ladder and content-addressed result caching behind a
single ``submit(request) -> AllocationResult`` entry point.
"""

from repro.engine.cache import (
    ContentCache,
    fingerprint_program,
    fingerprint_text,
    result_key,
)
from repro.engine.core import (
    AllocationEngine,
    AllocationRequest,
    AllocationResult,
    EngineError,
    RequestError,
    error_wire,
)

__all__ = [
    "AllocationEngine",
    "AllocationRequest",
    "AllocationResult",
    "ContentCache",
    "EngineError",
    "RequestError",
    "error_wire",
    "fingerprint_program",
    "fingerprint_text",
    "result_key",
]
