"""Content-addressed allocation-result caching.

Two requests asking for the same allocation should pay for it once,
no matter how their *text* differs.  The cache therefore keys on the
**parsed program**, not on the submitted source: the program is
compiled, then fingerprinted from its canonical IR printing
(:func:`repro.ir.format_program`), so a whitespace-only or
comment-only edit of the source hashes to the same entry while any
change that survives parsing misses.

The full key is ``(program fingerprint, allocator options, register
config, info source, flags)`` — every dimension that can change the
allocation or its measured overhead.  Entries are bounded by an LRU
(the server runs for days; an unbounded dict is a leak), and every
lookup is counted so the hit rate is observable through the global
:data:`~repro.obs.metrics.METRICS` registry as ``engine.cache.hits``
/ ``engine.cache.misses`` / ``engine.cache.evictions``.

All operations take the cache's lock: the HTTP server calls into one
engine from several worker threads.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.ir import format_program
from repro.obs.metrics import METRICS


def fingerprint_text(text: str) -> str:
    """SHA-256 of a text blob (used to key *compilations* by source)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_program(program) -> str:
    """Content address of a parsed program.

    Hashes the canonical IR printing, so two sources that parse to the
    same IR — differing only in whitespace, comments or formatting —
    share one fingerprint, while any semantic change produces a new
    one.
    """
    return fingerprint_text(format_program(program))


class ContentCache:
    """A thread-safe LRU mapping content keys to finished results.

    ``maxsize`` bounds the entry count; inserting past the bound
    evicts the least-recently-*used* entry (hits refresh recency).
    ``metric_prefix`` names the counters this cache reports under.
    """

    def __init__(self, maxsize: int = 256, metric_prefix: str = "engine.cache"):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.metric_prefix = metric_prefix
        self._lock = threading.Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key``, counting the lookup."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                METRICS.inc(f"{self.metric_prefix}.misses")
                return None
            self._data.move_to_end(key)
            self.hits += 1
            METRICS.inc(f"{self.metric_prefix}.hits")
            return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but touching neither counters nor recency."""
        with self._lock:
            return self._data.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                METRICS.inc(f"{self.metric_prefix}.evictions")

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, float]:
        """JSON-ready counters (plus the derived hit rate)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }


def result_key(
    fingerprint: str,
    options,
    config,
    info: str,
    flags: Tuple[str, ...] = (),
) -> Tuple:
    """The full content-addressed cache key for one allocation.

    ``flags`` carries every boolean dimension that changes the result
    (``resilient``, ``optimize``, ...) as a sorted tuple of names, so
    adding a new flag never silently aliases old entries.
    """
    return (fingerprint, options, config, info, tuple(sorted(flags)))
