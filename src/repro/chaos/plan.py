"""Deterministic fault plans and the tracer-driven fault injector.

A :class:`FaultPlan` is derived entirely from one integer seed: the
same seed always produces the same fault specs, which fire at the same
sites, so a chaos run — and the :class:`ResilienceReport` it provokes
— is reproducible bit-for-bit.  Faults come in two families:

* **Injected exceptions** (``raise`` / ``budget``) fire *inside* the
  allocator, at the PR 3 tracer decision sites and phase boundaries.
  The :class:`FaultInjector` is a :class:`~repro.obs.tracer.Tracer`
  subclass: the framework already calls ``emit``/``begin_phase`` at
  every decision point, so handing the injector in as the tracer turns
  every instrumented site into a potential failure point with zero new
  hooks in allocator code.  ``raise`` throws a :class:`ChaosFault`
  (a plain ``RuntimeError`` — deliberately *not* an
  ``AllocationError``, to prove the chain absorbs arbitrary crashes);
  ``budget`` throws a real
  :class:`~repro.regalloc.budget.BudgetExceeded`.
* **Corruptions** (see :mod:`repro.chaos.corrupt`) sabotage a
  *finished* allocation before the chain verifies it, proving the
  verifier — not luck — is what guards each rung.

Every spec is **one-shot**: once fired it disarms, so the next rung
down retries without it and a single fault demotes exactly one rung.
The chain never hands the injector (or the corruptor) to the final
rung — the last resort runs unsabotaged, which is what makes the whole
arrangement total.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.tracer import Tracer
from repro.regalloc.budget import BudgetExceeded
from repro.regalloc.framework import PHASES

#: Decision-event kinds the injector can target.  A spec aimed at a
#: site the run never hits (e.g. ``coalesce`` on a copy-free function)
#: simply never fires; campaign reports count *fired* injections.
EVENT_SITES: Tuple[str, ...] = (
    "simplify_pop",
    "assign",
    "coalesce",
    "spill_code",
    "caller_save_site",
    "callee_save",
    "iteration_begin",
    "spill_round",
    "ordering_spill",
    "optimistic_push",
)

#: Phase-boundary sites (``begin_phase``), one per pipeline phase.
PHASE_SITES: Tuple[str, ...] = tuple(f"phase:{name}" for name in PHASES)

INJECT_SITES: Tuple[str, ...] = EVENT_SITES + PHASE_SITES

#: In-allocator fault actions.
RAISE_ACTIONS: Tuple[str, ...] = ("raise", "budget")

#: Post-allocation corruption classes (implemented in
#: :mod:`repro.chaos.corrupt`), matched to the verifier check each is
#: designed to trip.
CORRUPTION_ACTIONS: Tuple[str, ...] = (
    "wrong-color",
    "caller-save-clobber",
    "uninit-spill-slot",
    "bad-callee-prologue",
)

ACTIONS: Tuple[str, ...] = RAISE_ACTIONS + CORRUPTION_ACTIONS

#: Service-level fault actions, executed by a real worker subprocess
#: (:mod:`repro.serve.worker`): ``kill`` SIGKILLs the worker mid-job,
#: ``hang`` sleeps far past the supervisor watchdog, ``latency``
#: delays the reply, ``garbage`` answers with a malformed pipe
#: message.  Distinct family from the in-allocator actions above —
#: these attack the *process*, not the algorithm.
SERVICE_ACTIONS: Tuple[str, ...] = ("kill", "hang", "latency", "garbage")


class ChaosFault(RuntimeError):
    """An exception injected on purpose at an instrumented site."""

    def __init__(self, site: str, occurrence: int, function: str) -> None:
        self.site = site
        self.occurrence = occurrence
        self.function = function
        super().__init__(
            f"chaos: injected fault at {site} (hit #{occurrence}) "
            f"in {function or '?'}"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``raise``/``budget`` specs carry an injection ``site`` and fire on
    its ``occurrence``-th hit (counted across the whole chain run).
    Corruption specs use the pseudo-site ``allocation`` and apply to
    the finished result of rung ``rung``.
    """

    action: str
    site: str = "allocation"
    occurrence: int = 1
    rung: int = 0

    def as_dict(self) -> dict:
        return {
            "action": self.action,
            "site": self.site,
            "occurrence": self.occurrence,
            "rung": self.rung,
        }


@dataclass(frozen=True)
class InjectedFault:
    """A fault that actually fired, with where it landed."""

    spec: FaultSpec
    function: str
    phase: str
    iteration: int

    def as_dict(self) -> dict:
        return {
            **self.spec.as_dict(),
            "function": self.function,
            "phase": self.phase,
            "iteration": self.iteration,
        }


@dataclass
class FaultPlan:
    """A reproducible set of fault specs for one chaos run."""

    seed: int
    specs: List[FaultSpec] = field(default_factory=list)

    @staticmethod
    def from_seed(seed: int, faults: int = 2) -> "FaultPlan":
        """Derive ``faults`` specs deterministically from ``seed``.

        Actions are drawn uniformly from :data:`ACTIONS` (so roughly a
        third of specs are in-allocator exceptions/budget blows and
        two thirds verifier-facing corruptions); injection sites get a
        small occurrence number to keep the firing rate high.
        Corruptions target the primary rung's result.
        """
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for _ in range(faults):
            action = rng.choice(ACTIONS)
            if action in RAISE_ACTIONS:
                site = rng.choice(INJECT_SITES)
                bound = 6 if site.startswith("phase:") else 12
                specs.append(
                    FaultSpec(
                        action=action,
                        site=site,
                        occurrence=rng.randint(1, bound),
                    )
                )
            else:
                specs.append(FaultSpec(action=action, rung=0))
        return FaultPlan(seed=seed, specs=specs)

    def injection_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.action in RAISE_ACTIONS]

    def corruption_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.action in CORRUPTION_ACTIONS]

    def as_dict(self) -> dict:
        return {"seed": self.seed, "specs": [s.as_dict() for s in self.specs]}


@dataclass(frozen=True)
class ServiceFault:
    """One planned service-level fault.

    Fires on the supervisor's ``after``-th worker dispatch (retries
    included), executed by the worker subprocess that receives it.
    ``latency_ms`` is meaningful for the ``latency`` action only.
    """

    action: str
    after: int
    latency_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "action": self.action,
            "after": self.after,
            "latency_ms": self.latency_ms,
        }


@dataclass
class ServiceFaultPlan:
    """A reproducible set of service faults for one chaos-serve run.

    Derived entirely from one integer seed, like :class:`FaultPlan`:
    the same seed always arms the same ``(action, dispatch-index)``
    pairs.  Which *client request* a fault lands on still depends on
    scheduling interleave — service chaos is deterministic in what is
    injected, statistical in where it bites, and the campaign verdict
    is therefore aggregate (zero failed client requests, every
    degraded response attributed) rather than per-request.
    """

    seed: int
    faults: List[ServiceFault] = field(default_factory=list)

    @staticmethod
    def from_seed(
        seed: int, faults: int = 50, span: Optional[int] = None
    ) -> "ServiceFaultPlan":
        """Arm ``faults`` distinct dispatch indices inside ``span``.

        ``span`` bounds the dispatch indices faults can land on and
        defaults to ``4 * faults``; it must be at least ``faults`` so
        the indices can be distinct.  Keep it at or below the number
        of requests the campaign will dispatch, or late faults never
        fire.
        """
        span = 4 * faults if span is None else span
        if span < faults:
            raise ValueError(
                f"span {span} cannot hold {faults} distinct faults"
            )
        rng = random.Random(seed)
        indices = rng.sample(range(1, span + 1), faults)
        planned = [
            ServiceFault(
                action=rng.choice(SERVICE_ACTIONS),
                after=index,
                latency_ms=round(rng.uniform(10.0, 150.0), 1),
            )
            for index in sorted(indices)
        ]
        return ServiceFaultPlan(seed=seed, faults=planned)

    def by_action(self) -> dict:
        counts: dict = {}
        for fault in self.faults:
            counts[fault.action] = counts.get(fault.action, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [fault.as_dict() for fault in self.faults],
            "by_action": self.by_action(),
        }


class FaultInjector(Tracer):
    """A tracer that turns instrumented sites into failure points.

    Counts every decision-event kind and every phase begin as a site
    hit; when a hit matches an armed spec's ``(site, occurrence)``,
    the spec disarms, the firing is recorded in :attr:`fired`, and the
    planned exception is raised from inside the allocator.  Events are
    *not* retained (``emit`` only counts), so a campaign of thousands
    of runs stays cheap.
    """

    def __init__(self, plan: FaultPlan) -> None:
        super().__init__(record_events=True, record_spans=False)
        self.plan = plan
        self.fired: List[InjectedFault] = []
        self._armed: List[FaultSpec] = plan.injection_specs()
        self._counts: dict = {}

    def emit(self, kind: str, lr=None, **detail) -> None:  # noqa: ARG002
        self._hit(kind)

    def begin_phase(self, name: str) -> None:
        super().begin_phase(name)
        self._hit(f"phase:{name}")

    def add_span(self, name, start, duration) -> None:  # pragma: no cover
        pass

    def _hit(self, site: str) -> None:
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for spec in self._armed:
            if spec.site == site and spec.occurrence == count:
                self._armed.remove(spec)
                self.fired.append(
                    InjectedFault(
                        spec=spec,
                        function=self._function,
                        phase=self._phase,
                        iteration=self._iteration,
                    )
                )
                if spec.action == "budget":
                    raise BudgetExceeded(
                        "deadline",
                        0.0,
                        0.0,
                        self._function or "?",
                        phase=self._phase or None,
                    )
                raise ChaosFault(site, count, self._function)
