"""Seeded fault-injection campaigns over workloads × presets × seeds.

One campaign run = one ``(workload, preset, seed)`` triple: a
:class:`~repro.chaos.plan.FaultPlan` is derived from a composite seed
(stable CRC32 of the triple, so adding a workload never reshuffles
another's faults), its injector and corruptor are handed to the
fallback chain, and the run is **clean** when a verifier-clean
allocation comes back with every demotion attributed — the acceptance
bar the CI chaos job enforces across hundreds of injections.

Campaigns run in-process and sequentially: determinism matters more
than speed here, and a run is a handful of allocations at most.

:func:`run_serve_campaign` is the service-level counterpart (``repro
chaos-serve``): it boots a real supervised server, arms a seeded
:class:`~repro.chaos.plan.ServiceFaultPlan` that murders, hangs and
corrupts actual worker subprocesses mid-traffic, and drives it with
the chaos-mode loadgen.  Its acceptance bar: **zero failed client
requests**, every planned fault fired, every degraded response
attributed to the worker faults that caused it, and no worker
subprocess left alive afterwards.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos.corrupt import Corruptor
from repro.chaos.plan import FaultInjector, FaultPlan, ServiceFaultPlan
from repro.machine.mips import FULL_CONFIG, register_file
from repro.machine.registers import RegisterConfig
from repro.regalloc.options import PRESETS
from repro.regalloc.verify import verify_allocation
from repro.resilience.chain import resilient_allocate_program
from repro.schema import stamp
from repro.workloads import compile_workload


def composite_seed(workload: str, preset: str, seed: int) -> int:
    """A stable per-triple seed (CRC32 of ``workload:preset:seed``)."""
    return zlib.crc32(f"{workload}:{preset}:{seed}".encode())


@dataclass
class CampaignRun:
    """Outcome of one chaos-injected resilient allocation."""

    workload: str
    preset: str
    seed: int
    plan: dict
    #: In-allocator faults that actually fired (site, function, ...).
    injected: List[dict] = field(default_factory=list)
    #: Corruptions actually applied to a finished rung's result.
    corrupted: List[dict] = field(default_factory=list)
    #: The accepted ResilienceReport, as a dict; None when the run
    #: failed outright (chain exhausted or an escape — never expected).
    report: Optional[dict] = None
    #: True iff an allocation came back and re-verified clean.
    clean: bool = False
    error: Optional[str] = None

    @property
    def faults_fired(self) -> int:
        return len(self.injected) + len(self.corrupted)

    @property
    def attributed(self) -> bool:
        """Every demotion carries an error type (nothing anonymous)."""
        if self.report is None:
            return False
        return all(
            record.get("error_type") for record in self.report["demotions"]
        )

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "preset": self.preset,
            "seed": self.seed,
            "plan": self.plan,
            "injected": self.injected,
            "corrupted": self.corrupted,
            "faults_fired": self.faults_fired,
            "report": self.report,
            "clean": self.clean,
            "attributed": self.attributed,
            "error": self.error,
        }


@dataclass
class CampaignReport:
    """Every run of one campaign, plus the aggregate verdict."""

    runs: List[CampaignRun] = field(default_factory=list)

    @property
    def total_injections(self) -> int:
        return sum(run.faults_fired for run in self.runs)

    @property
    def unclean(self) -> List[CampaignRun]:
        return [run for run in self.runs if not run.clean]

    @property
    def unattributed(self) -> List[CampaignRun]:
        return [run for run in self.runs if run.clean and not run.attributed]

    @property
    def all_clean(self) -> bool:
        return not self.unclean and not self.unattributed

    @property
    def degraded_runs(self) -> int:
        return sum(
            1
            for run in self.runs
            if run.report is not None and run.report["degraded"]
        )

    def as_dict(self) -> dict:
        return {
            "runs": [run.as_dict() for run in self.runs],
            "total_runs": len(self.runs),
            "total_injections": self.total_injections,
            "degraded_runs": self.degraded_runs,
            "unclean_runs": len(self.unclean),
            "unattributed_runs": len(self.unattributed),
            "all_clean": self.all_clean,
        }


def run_campaign(
    workloads: Sequence[str],
    presets: Sequence[str] = tuple(PRESETS),
    seeds: Sequence[int] = range(10),
    faults_per_seed: int = 2,
    config: RegisterConfig = FULL_CONFIG,
) -> CampaignReport:
    """Run the full cross product and collect every outcome.

    Nothing here raises for an injected fault — a fault that escapes
    the chain is exactly what a run records as ``clean=False`` (and
    what makes the CI job fail).
    """
    report = CampaignReport()
    regfile = register_file(config)
    for workload in workloads:
        compiled = compile_workload(workload)
        for preset in presets:
            options = PRESETS[preset]()
            for seed in seeds:
                plan = FaultPlan.from_seed(
                    composite_seed(workload, preset, seed),
                    faults=faults_per_seed,
                )
                injector = FaultInjector(plan)
                corruptor = Corruptor(plan)
                run = CampaignRun(
                    workload=workload,
                    preset=preset,
                    seed=seed,
                    plan=plan.as_dict(),
                )
                try:
                    allocation, resilience = resilient_allocate_program(
                        compiled.program,
                        regfile,
                        options,
                        injector=injector,
                        corrupt=corruptor,
                    )
                    # Belt and braces: the chain verified the winning
                    # rung already; re-verify so "clean" never rests on
                    # the chain's own bookkeeping.
                    verify_allocation(allocation)
                    run.report = resilience.as_dict()
                    run.clean = True
                except Exception as exc:  # noqa: BLE001 - the verdict
                    run.error = f"{type(exc).__name__}: {exc}"
                run.injected = [fault.as_dict() for fault in injector.fired]
                run.corrupted = list(corruptor.fired)
                report.runs.append(run)
    return report


def record_campaign(report: CampaignReport) -> None:
    """Feed campaign aggregates into the process-global metrics."""
    from repro.obs.metrics import METRICS

    METRICS.inc("chaos.runs", len(report.runs))
    METRICS.inc("chaos.injections", report.total_injections)
    METRICS.inc("chaos.degraded", report.degraded_runs)
    METRICS.inc("chaos.unclean", len(report.unclean))


# ----------------------------------------------------------------------
# service-level chaos: kill real workers under real traffic
# ----------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    """Is ``pid`` a live process?  (Reaped workers answer False.)"""
    try:
        os.kill(pid, 0)
    except (OSError, ProcessLookupError):
        return False
    return True


@dataclass
class ServeCampaignReport:
    """One chaos-serve campaign: the plan, the traffic, the recovery.

    ``all_clean`` is the CI verdict and requires all of:

    * the loadgen finished with **zero failed client requests** —
      turbulence (throttles, breaker waits, degraded answers) is
      allowed, losing a request is not;
    * every planned fault actually fired (a fault that never fires
      tested nothing);
    * every degraded response carries attributed worker faults (a
      reason, plus the chaos directive where chaos caused it);
    * every degraded response's trace ID resolved in the server's
      flight recorder while it was still up — a degraded answer whose
      cross-process story cannot be reconstructed is a telemetry
      regression, and the campaign is where it would first go dark;
    * no worker subprocess outlived the server.
    """

    seed: int
    plan: dict
    loadgen: dict
    supervisor: dict
    leaked_pids: List[int] = field(default_factory=list)
    #: Degraded-response trace IDs the flight recorder resolved /
    #: failed to resolve before shutdown.
    degraded_traced: int = 0
    degraded_untraceable: List[str] = field(default_factory=list)

    @property
    def faults_planned(self) -> int:
        return len(self.plan["faults"])

    @property
    def faults_fired(self) -> int:
        return len(self.supervisor["chaos"]["fired"])

    @property
    def degraded_attributed(self) -> bool:
        return all(
            entry.get("faults")
            and all(fault.get("reason") for fault in entry["faults"])
            for entry in self.supervisor["degraded"]
        )

    @property
    def degraded_traceable(self) -> bool:
        return not self.degraded_untraceable

    @property
    def all_clean(self) -> bool:
        return (
            self.loadgen["failed"] == 0
            and self.faults_fired == self.faults_planned
            and self.degraded_attributed
            and self.degraded_traceable
            and not self.leaked_pids
        )

    def as_dict(self) -> dict:
        return stamp(
            {
                "seed": self.seed,
                "plan": self.plan,
                "loadgen": self.loadgen,
                "supervisor": self.supervisor,
                "faults_planned": self.faults_planned,
                "faults_fired": self.faults_fired,
                "degraded_responses": len(self.supervisor["degraded"]),
                "degraded_attributed": self.degraded_attributed,
                "degraded_traced": self.degraded_traced,
                "degraded_untraceable": self.degraded_untraceable,
                "degraded_traceable": self.degraded_traceable,
                "leaked_pids": self.leaked_pids,
                "all_clean": self.all_clean,
            }
        )


def run_serve_campaign(
    seed: int = 0,
    faults: int = 50,
    requests: int = 200,
    concurrency: int = 8,
    workers: int = 2,
    watchdog_seconds: float = 1.0,
    retries: int = 3,
    span: Optional[int] = None,
) -> ServeCampaignReport:
    """Boot a supervised server, murder its workers, count the damage.

    The server runs with the parent-side result cache disabled (every
    client request genuinely dispatches to a worker, so every armed
    dispatch index is reached) and no default request deadline (the
    ``watchdog_seconds`` hard limit is the binding recovery clock —
    low, so hang faults cost ~a second each, not ten).  ``span``
    bounds the dispatch indices faults land on and defaults to the
    request count; it must not exceed it, or late faults never fire
    and the verdict fails honestly.
    """
    import asyncio

    from repro.serve.loadgen import LoadgenConfig, run_loadgen_async
    from repro.serve.server import ServerConfig, ServerThread

    span = requests if span is None else span
    if span > requests:
        raise ValueError(
            f"span {span} exceeds the request count {requests}; "
            "late faults would never fire"
        )
    plan = ServiceFaultPlan.from_seed(seed, faults=faults, span=span)
    server_config = ServerConfig(
        port=0,
        supervised=True,
        workers=workers,
        batch_workers=1,
        default_deadline_ms=None,
        watchdog_seconds=watchdog_seconds,
        worker_retries=retries,
        breaker_cooldown=2.0,
        supervisor_cache_size=0,
        # The fault plan indexes dispatches, so identical concurrent
        # requests must not be coalesced onto one dispatch either.
        coalesce=False,
        # Retention sized to the campaign: every degraded answer must
        # still resolve in the flight recorder at the final audit.
        flight_recent=max(256, requests),
        flight_degraded=max(64, requests),
        flight_faulted=max(64, requests),
    )
    thread = ServerThread(server_config)
    with thread as (host, port):
        assert thread.server.supervisor is not None
        thread.server.supervisor.arm_chaos(plan)
        loadgen_config = LoadgenConfig(
            host=host,
            port=port,
            requests=requests,
            concurrency=concurrency,
            chaos=True,
            jitter_seed=seed,
            max_retries=100,
            max_backoff=1.0,
        )
        loadgen_report = asyncio.run(run_loadgen_async(loadgen_config))
        supervisor_report = thread.server.supervisor.report()
        # Resolve every degraded response's trace ID against the
        # flight recorder while the server is still up: a degraded
        # answer the recorder cannot explain fails the campaign.
        degraded_traced = 0
        untraceable: List[str] = []
        flight = thread.server.flight
        for trace_id in loadgen_report.degraded_trace_ids:
            if flight.lookup(trace_id) is not None:
                degraded_traced += 1
            else:
                untraceable.append(trace_id)
    leaked = [
        pid
        for pid in supervisor_report["worker_pids"]
        if _pid_alive(pid)
    ]
    return ServeCampaignReport(
        seed=seed,
        plan=plan.as_dict(),
        loadgen=loadgen_report.as_dict(),
        supervisor=supervisor_report,
        leaked_pids=leaked,
        degraded_traced=degraded_traced,
        degraded_untraceable=untraceable,
    )


def record_serve_campaign(report: ServeCampaignReport) -> None:
    """Feed chaos-serve aggregates into the process-global metrics."""
    from repro.obs.metrics import METRICS

    METRICS.inc("chaos.serve.campaigns")
    METRICS.inc("chaos.serve.faults_fired", report.faults_fired)
    METRICS.inc(
        "chaos.serve.degraded", len(report.supervisor["degraded"])
    )
    METRICS.inc("chaos.serve.failed", report.loadgen["failed"])
