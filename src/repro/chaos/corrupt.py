"""Allocation corruptions: sabotage the verifier must catch.

Each corruption mutates a *finished* :class:`ProgramAllocation` —
after the allocator declared victory, before the fallback chain
verifies it — in a way that is guaranteed to violate the specific
invariant it is named for:

* ``wrong-color`` — re-color a defined live range with the register
  of a range live across its definition (same bank, so assignment
  sanity still passes) → ``register-conflict``.  Functions too small
  to contain such a pair fall back to moving one range into the wrong
  bank → ``bank-mismatch``.
* ``caller-save-clobber`` — delete the save/restore pair protecting a
  caller-save register across a call, so the callee's clobber goes
  unguarded → ``caller-save``.
* ``uninit-spill-slot`` — retarget one spill reload at a fresh,
  never-written frame slot → ``spill-slot`` (read before any store
  reaches it).
* ``bad-callee-prologue`` — delete one callee-save save from the
  prologue while the register stays in use → ``callee-save``.

Every function returns the corruption record (a dict naming the
function and what was broken) or ``None`` when the allocation offers
no candidate site — e.g. ``caller-save-clobber`` on a program whose
calls cross no caller-save registers.  Candidate selection walks
functions in allocation order and picks with the caller's seeded
``random.Random``, so a given plan always breaks the same thing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.analysis.liveness import compute_liveness
from repro.ir.instructions import Call, Copy
from repro.regalloc.framework import ProgramAllocation
from repro.regalloc.spillinstr import OverheadKind, SpillLoad, SpillStore


def corrupt_wrong_color(
    allocation: ProgramAllocation, rng: random.Random
) -> Optional[dict]:
    """Alias two simultaneously-live same-bank ranges."""
    candidates = []  # (fa, dst, victim)
    for fa in allocation.functions.values():
        liveness = compute_liveness(fa.func)
        for block in fa.func.blocks:
            for instr, live_after in liveness.live_across(block):
                copy_src = instr.src if isinstance(instr, Copy) else None
                for dst in instr.defs():
                    for live in live_after:
                        if live is dst or live is copy_src:
                            continue
                        if (
                            live.vtype is dst.vtype
                            and fa.assignment[live] != fa.assignment[dst]
                        ):
                            candidates.append((fa, dst, live))
    if candidates:
        fa, dst, live = candidates[rng.randrange(len(candidates))]
        fa.assignment[dst] = fa.assignment[live]
        return {
            "kind": "wrong-color",
            "function": fa.func.name,
            "lr": repr(dst),
            "register": fa.assignment[live].name,
            "expect_check": "register-conflict",
        }
    # Tiny functions: no two ranges are ever simultaneously live, so
    # recolor one range into the other bank instead.
    banked = []
    for fa in allocation.functions.values():
        for reg, phys in fa.assignment.items():
            for other in allocation.regfile.all_registers():
                if other.bank is not reg.vtype:
                    banked.append((fa, reg, other))
                    break
    if not banked:
        return None
    fa, reg, other = banked[rng.randrange(len(banked))]
    fa.assignment[reg] = other
    return {
        "kind": "wrong-color",
        "function": fa.func.name,
        "lr": repr(reg),
        "register": other.name,
        "expect_check": "bank-mismatch",
    }


def corrupt_caller_save(
    allocation: ProgramAllocation, rng: random.Random
) -> Optional[dict]:
    """Strip the save/restore pair around one call."""
    candidates = []  # (fa, block, call_index)
    for fa in allocation.functions.values():
        for block in fa.func.blocks:
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, Call) and _caller_saves_before(
                    block, index
                ):
                    candidates.append((fa, block, index))
    if not candidates:
        return None
    fa, block, index = candidates[rng.randrange(len(candidates))]
    save = _caller_saves_before(block, index)[-1]
    phys = save.src
    # Remove the matching restore first so the call's index is stable.
    for offset, instr in enumerate(block.instrs[index + 1 :]):
        if (
            isinstance(instr, SpillLoad)
            and instr.kind is OverheadKind.CALLER_SAVE
            and instr.dst == phys
        ):
            del block.instrs[index + 1 + offset]
            break
        if not (
            isinstance(instr, SpillLoad)
            and instr.kind is OverheadKind.CALLER_SAVE
        ):
            break
    block.instrs.remove(save)
    return {
        "kind": "caller-save-clobber",
        "function": fa.func.name,
        "block": block.name,
        "register": phys.name,
        "expect_check": "caller-save",
    }


def _caller_saves_before(block, call_index: int) -> List[SpillStore]:
    saves: List[SpillStore] = []
    i = call_index - 1
    while i >= 0:
        instr = block.instrs[i]
        if isinstance(instr, SpillStore) and instr.kind is OverheadKind.CALLER_SAVE:
            saves.append(instr)
            i -= 1
        else:
            break
    return saves


def corrupt_spill_slot(
    allocation: ProgramAllocation, rng: random.Random
) -> Optional[dict]:
    """Point one spill reload at a fresh, never-written slot."""
    candidates = []  # (fa, block, instr)
    for fa in allocation.functions.values():
        for block in fa.func.blocks:
            for instr in block.instrs:
                if (
                    isinstance(instr, SpillLoad)
                    and instr.kind is OverheadKind.SPILL
                ):
                    candidates.append((fa, block, instr))
    if not candidates:
        return None
    fa, block, instr = candidates[rng.randrange(len(candidates))]
    fresh = fa.frame_slots
    fa.frame_slots += 1  # keep the slot in range: read-before-write, not OOB
    instr.slot = fresh
    return {
        "kind": "uninit-spill-slot",
        "function": fa.func.name,
        "block": block.name,
        "slot": fresh,
        "expect_check": "spill-slot",
    }


def corrupt_callee_prologue(
    allocation: ProgramAllocation, rng: random.Random
) -> Optional[dict]:
    """Drop one callee-save save from a function's prologue."""
    candidates = []  # (fa, save)
    for fa in allocation.functions.values():
        for instr in fa.func.entry.instrs:
            if (
                isinstance(instr, SpillStore)
                and instr.kind is OverheadKind.CALLEE_SAVE
            ):
                candidates.append((fa, instr))
            else:
                break
    if not candidates:
        return None
    fa, save = candidates[rng.randrange(len(candidates))]
    fa.func.entry.instrs.remove(save)
    return {
        "kind": "bad-callee-prologue",
        "function": fa.func.name,
        "register": save.src.name,
        "expect_check": "callee-save",
    }


#: Corruption class name -> implementation; names match
#: :data:`repro.chaos.plan.CORRUPTION_ACTIONS`.
CORRUPTIONS: Dict[
    str, Callable[[ProgramAllocation, random.Random], Optional[dict]]
] = {
    "wrong-color": corrupt_wrong_color,
    "caller-save-clobber": corrupt_caller_save,
    "uninit-spill-slot": corrupt_spill_slot,
    "bad-callee-prologue": corrupt_callee_prologue,
}


class Corruptor:
    """Applies a plan's corruption specs to the matching rung's result.

    Usable directly as the fallback chain's ``corrupt`` hook.  Each
    spec applies at most once; applied corruptions are recorded in
    :attr:`fired` (the corruption record plus the rung index),
    inapplicable ones in :attr:`skipped`.
    """

    def __init__(self, plan) -> None:
        self.plan = plan
        self._pending = list(plan.corruption_specs())
        self._rng = random.Random(plan.seed ^ 0x5EED5)
        self.fired: List[dict] = []
        self.skipped: List[dict] = []

    def __call__(self, allocation: ProgramAllocation, rung_index: int) -> None:
        for spec in list(self._pending):
            if spec.rung != rung_index:
                continue
            self._pending.remove(spec)
            record = CORRUPTIONS[spec.action](allocation, self._rng)
            if record is None:
                self.skipped.append(spec.as_dict())
            else:
                self.fired.append({**record, "rung": rung_index})
