"""Chaos engineering for the allocator: prove the recovery paths work.

The resilience layer (:mod:`repro.resilience`) claims every
``allocate_program(resilient=True)`` call comes back with a
verifier-clean allocation.  This package earns that claim the hard
way: deterministic, seed-driven fault plans
(:class:`~repro.chaos.plan.FaultPlan`) inject exceptions and budget
exhaustion at the tracer decision sites and phase boundaries, corrupt
finished allocations in four verifier-facing ways
(:mod:`repro.chaos.corrupt`), and campaign runs
(:func:`~repro.chaos.campaign.run_campaign`) sweep workloads × presets
× seeds asserting that every injected fault is either caught by the
verifier or absorbed by a lower rung — never silently survived.

CLI entry point: ``repro chaos``.
"""

from repro.chaos.campaign import (
    CampaignReport,
    CampaignRun,
    ServeCampaignReport,
    composite_seed,
    record_campaign,
    record_serve_campaign,
    run_campaign,
    run_serve_campaign,
)
from repro.chaos.corrupt import CORRUPTIONS, Corruptor
from repro.chaos.plan import (
    ACTIONS,
    CORRUPTION_ACTIONS,
    EVENT_SITES,
    INJECT_SITES,
    PHASE_SITES,
    RAISE_ACTIONS,
    SERVICE_ACTIONS,
    ChaosFault,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ServiceFault,
    ServiceFaultPlan,
)

__all__ = [
    "ACTIONS",
    "CORRUPTIONS",
    "CORRUPTION_ACTIONS",
    "CampaignReport",
    "CampaignRun",
    "ChaosFault",
    "Corruptor",
    "EVENT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "INJECT_SITES",
    "InjectedFault",
    "PHASE_SITES",
    "RAISE_ACTIONS",
    "SERVICE_ACTIONS",
    "ServeCampaignReport",
    "ServiceFault",
    "ServiceFaultPlan",
    "composite_seed",
    "record_campaign",
    "record_serve_campaign",
    "run_campaign",
    "run_serve_campaign",
]
