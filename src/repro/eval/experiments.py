"""Experiment drivers: one per table and figure of the paper.

Every driver sweeps the canonical register-pressure axis
(:func:`repro.machine.mips_sweep`) unless given a narrower one, and
returns a structured result whose ``render()`` reproduces the rows or
series the paper reports.  Absolute numbers differ (our substrate is
a mini-C compiler and synthetic SPEC stand-ins), but the shapes —
who wins, by what factor, where the crossovers fall — are the
reproduction targets; EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.eval.overhead import Overhead
from repro.eval.render import format_value, render_table
from repro.eval.runner import MeasureKey, measure, measure_cycles, overhead_ratio
from repro.eval.cycles import speedup_percent
from repro.machine.mips import FULL_CONFIG, mips_sweep
from repro.machine.registers import RegisterConfig
from repro.regalloc.options import AllocatorOptions

ALL_PROGRAMS = (
    "alvinn",
    "compress",
    "doduc",
    "ear",
    "eqntott",
    "espresso",
    "fpppp",
    "gcc",
    "li",
    "matrix300",
    "nasa7",
    "sc",
    "spice",
    "tomcatv",
)


@dataclass
class SweepResult:
    """Series of values per (program, series-label) over a config sweep."""

    title: str
    configs: List[RegisterConfig]
    series: Dict[Tuple[str, str], List[float]] = field(default_factory=dict)

    def values(self, program: str, label: str) -> List[float]:
        return self.series[(program, label)]

    def labels(self) -> List[Tuple[str, str]]:
        return list(self.series)

    def render(self) -> str:
        header = ["program", "series"] + [str(c) for c in self.configs]
        rows = [
            [program, label] + [format_value(v) for v in values]
            for (program, label), values in self.series.items()
        ]
        return render_table(self.title, header, rows)

    def as_dict(self) -> dict:
        """JSON-friendly representation (``--json`` in the CLI)."""
        return {
            "title": self.title,
            "configs": [str(c) for c in self.configs],
            "series": [
                {"program": program, "label": label, "values": values}
                for (program, label), values in self.series.items()
            ],
        }


@dataclass
class StackedResult:
    """Per-config overhead components for one allocator (Figs. 2 and 7)."""

    title: str
    configs: List[RegisterConfig]
    overheads: Dict[str, List[Overhead]] = field(default_factory=dict)

    def render(self) -> str:
        header = ["program", "component"] + [str(c) for c in self.configs]
        rows = []
        for program, per_config in self.overheads.items():
            for component in ("spill", "caller_save", "callee_save", "shuffle", "total"):
                values = [getattr(o, component) for o in per_config]
                rows.append(
                    [program, component] + [format_value(v) for v in values]
                )
        return render_table(self.title, header, rows)

    def as_dict(self) -> dict:
        """JSON-friendly representation (``--json`` in the CLI)."""
        return {
            "title": self.title,
            "configs": [str(c) for c in self.configs],
            "overheads": {
                program: [
                    {
                        "spill": o.spill,
                        "caller_save": o.caller_save,
                        "callee_save": o.callee_save,
                        "shuffle": o.shuffle,
                        "total": o.total,
                    }
                    for o in per_config
                ]
                for program, per_config in self.overheads.items()
            },
        }


@dataclass
class SpeedupResult:
    """Per-program execution-time speedups (Table 4)."""

    title: str
    speedups: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        header = ["program", "speedup %"]
        rows = [
            [program, format_value(value)]
            for program, value in self.speedups.items()
        ]
        return render_table(self.title, header, rows)

    def as_dict(self) -> dict:
        """JSON-friendly representation (``--json`` in the CLI)."""
        return {"title": self.title, "speedups": dict(self.speedups)}


# ----------------------------------------------------------------------
# Figure 2 — register allocation cost of the base model
# ----------------------------------------------------------------------


def figure2(
    programs: Sequence[str] = ("eqntott", "ear"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> StackedResult:
    """Base-Chaitin overhead decomposition vs. register configuration.

    Reproduces the paper's motivating observation: spill cost vanishes
    as registers grow while call cost persists and comes to dominate.
    """
    configs = list(configs or mips_sweep())
    result = StackedResult(
        title="Figure 2: base Chaitin register-allocation cost", configs=configs
    )
    base = AllocatorOptions.base_chaitin()
    for program in programs:
        result.overheads[program] = [
            measure(program, base, config, "dynamic") for config in configs
        ]
    return result


# ----------------------------------------------------------------------
# Figure 6 — improvement combinations vs. register pressure
# ----------------------------------------------------------------------

FIGURE6_COMBOS: Dict[str, AllocatorOptions] = {
    "SC": AllocatorOptions.improved_chaitin(sc=True, bs=False, pr=False),
    "SC+BS": AllocatorOptions.improved_chaitin(sc=True, bs=True, pr=False),
    "SC+BS+PR": AllocatorOptions.improved_chaitin(sc=True, bs=True, pr=True),
}


def figure6(
    programs: Sequence[str] = ("nasa7", "ear", "li", "sc", "eqntott", "espresso"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """Overhead ratio base / improved for each improvement combination."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Figure 6: base/improved overhead ratio per enhancement combo",
        configs=configs,
    )
    base = AllocatorOptions.base_chaitin()
    for program in programs:
        base_overheads = [measure(program, base, c, info) for c in configs]
        for label, options in FIGURE6_COMBOS.items():
            ratios = [
                overhead_ratio(b, measure(program, options, c, info))
                for b, c in zip(base_overheads, configs)
            ]
            result.series[(program, label)] = ratios
    return result


# ----------------------------------------------------------------------
# Figure 7 — improved-model overhead decomposition
# ----------------------------------------------------------------------


def figure7(
    programs: Sequence[str] = ("eqntott", "ear"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> StackedResult:
    """Counterpart of Figure 2 with all three improvements enabled."""
    configs = list(configs or mips_sweep())
    result = StackedResult(
        title="Figure 7: improved Chaitin register-allocation cost",
        configs=configs,
    )
    improved = AllocatorOptions.improved_chaitin()
    for program in programs:
        result.overheads[program] = [
            measure(program, improved, config, "dynamic") for config in configs
        ]
    return result


# ----------------------------------------------------------------------
# Tables 2 and 3 — optimistic vs. base Chaitin
# ----------------------------------------------------------------------


def _optimistic_table(
    info: str,
    title: str,
    programs: Sequence[str],
    configs: Optional[Sequence[RegisterConfig]],
) -> SweepResult:
    configs = list(configs or mips_sweep())
    result = SweepResult(title=title, configs=configs)
    base = AllocatorOptions.base_chaitin()
    optimistic = AllocatorOptions.optimistic_coloring()
    for program in programs:
        ratios = [
            overhead_ratio(
                measure(program, base, c, info),
                measure(program, optimistic, c, info),
            )
            for c in configs
        ]
        result.series[(program, "base/optimistic")] = ratios
    return result


def table2(
    programs: Sequence[str] = ALL_PROGRAMS,
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """Base-Chaitin / optimistic ratios, static information."""
    return _optimistic_table(
        "static",
        "Table 2: base Chaitin / optimistic (static information)",
        programs,
        configs,
    )


def table3(
    programs: Sequence[str] = ALL_PROGRAMS,
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """Base-Chaitin / optimistic ratios, dynamic information."""
    return _optimistic_table(
        "dynamic",
        "Table 3: base Chaitin / optimistic (dynamic information)",
        programs,
        configs,
    )


# ----------------------------------------------------------------------
# Figure 9 — optimistic vs. improved vs. both, fpppp, static
# ----------------------------------------------------------------------


def figure9(
    program: str = "fpppp",
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """The two regimes: optimistic wins small files, improved wins big."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title=f"Figure 9: optimistic vs improved for {program} (static)",
        configs=configs,
    )
    base = AllocatorOptions.base_chaitin()
    contenders = {
        "optimistic": AllocatorOptions.optimistic_coloring(),
        "improved": AllocatorOptions.improved_chaitin(),
        "improved+optimistic": AllocatorOptions.improved_optimistic(),
    }
    base_overheads = [measure(program, base, c, "static") for c in configs]
    for label, options in contenders.items():
        ratios = [
            overhead_ratio(b, measure(program, options, c, "static"))
            for b, c in zip(base_overheads, configs)
        ]
        result.series[(program, label)] = ratios
    return result


# ----------------------------------------------------------------------
# Figure 10 — priority-based vs. improved Chaitin
# ----------------------------------------------------------------------


def figure10(
    programs: Sequence[str] = ("alvinn", "nasa7", "fpppp", "espresso", "gcc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """Improved Chaitin against priority-based, static and dynamic."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Figure 10: priority-based vs improved Chaitin", configs=configs
    )
    base = AllocatorOptions.base_chaitin()
    improved = AllocatorOptions.improved_chaitin()
    priority = AllocatorOptions.priority_based()
    for program in programs:
        for info in ("static", "dynamic"):
            base_overheads = [measure(program, base, c, info) for c in configs]
            for label, options in (("improved", improved), ("priority", priority)):
                ratios = [
                    overhead_ratio(b, measure(program, options, c, info))
                    for b, c in zip(base_overheads, configs)
                ]
                result.series[(program, f"{label}/{info}")] = ratios
    return result


# ----------------------------------------------------------------------
# Figure 11 — improved Chaitin vs. CBH
# ----------------------------------------------------------------------


def figure11(
    programs: Sequence[str] = ("alvinn", "ear", "li", "matrix300", "nasa7"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """Improved Chaitin against the CBH model, static and dynamic."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Figure 11: improved Chaitin vs CBH", configs=configs
    )
    base = AllocatorOptions.base_chaitin()
    improved = AllocatorOptions.improved_chaitin()
    cbh = AllocatorOptions.cbh()
    for program in programs:
        for info in ("static", "dynamic"):
            base_overheads = [measure(program, base, c, info) for c in configs]
            for label, options in (("improved", improved), ("CBH", cbh)):
                ratios = [
                    overhead_ratio(b, measure(program, options, c, info))
                    for b, c in zip(base_overheads, configs)
                ]
                result.series[(program, f"{label}/{info}")] = ratios
    return result


# ----------------------------------------------------------------------
# Table 4 — execution-time speedup
# ----------------------------------------------------------------------


def table4(
    programs: Sequence[str] = ("compress", "eqntott", "li", "sc", "spice"),
    config: RegisterConfig = FULL_CONFIG,
    info: str = "dynamic",
) -> SpeedupResult:
    """Speedup of improved Chaitin over optimistic, full register file."""
    result = SpeedupResult(
        title="Table 4: execution-time speedup of the three enhancements (%)"
    )
    optimistic = AllocatorOptions.optimistic_coloring()
    improved = AllocatorOptions.improved_chaitin()
    for program in programs:
        base_cycles = measure_cycles(program, optimistic, config, info)
        improved_cycles = measure_cycles(program, improved, config, info)
        result.speedups[program] = speedup_percent(base_cycles, improved_cycles)
    return result


# ----------------------------------------------------------------------
# Ablations: the design choices the paper discusses in passing
# ----------------------------------------------------------------------


def ablation_callee_model(
    programs: Sequence[str] = ("doduc", "ear", "li", "sc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """Shared vs. first-user callee-save cost model (Section 4)."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: callee-save cost sharing (first-user/shared ratio)",
        configs=configs,
    )
    shared = AllocatorOptions.improved_chaitin().with_(callee_model="shared")
    first = AllocatorOptions.improved_chaitin().with_(callee_model="first")
    for program in programs:
        ratios = [
            overhead_ratio(
                measure(program, first, c, info),
                measure(program, shared, c, info),
            )
            for c in configs
        ]
        result.series[(program, "first/shared")] = ratios
    return result


def ablation_bs_key(
    programs: Sequence[str] = ("ear", "nasa7", "eqntott", "sc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """Delta key vs. max key in benefit-driven simplification (Section 5)."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: simplification key (max-key/delta-key ratio)",
        configs=configs,
    )
    delta = AllocatorOptions.improved_chaitin(sc=True, bs=True, pr=False)
    maxk = delta.with_(bs_key="max")
    for program in programs:
        ratios = [
            overhead_ratio(
                measure(program, maxk, c, info),
                measure(program, delta, c, info),
            )
            for c in configs
        ]
        result.series[(program, "max/delta")] = ratios
    return result


def ablation_priority_order(
    programs: Sequence[str] = ("ear", "espresso", "gcc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """The three priority-based stack strategies (Section 9.1)."""
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: priority-based ordering strategies (base/priority)",
        configs=configs,
    )
    base = AllocatorOptions.base_chaitin()
    for program in programs:
        base_overheads = [measure(program, base, c, info) for c in configs]
        for strategy in ("remove_unconstrained", "sort_unconstrained", "sorting"):
            options = AllocatorOptions.priority_based(strategy)
            ratios = [
                overhead_ratio(b, measure(program, options, c, info))
                for b, c in zip(base_overheads, configs)
            ]
            result.series[(program, strategy)] = ratios
    return result


def ablation_optimized_ir(
    programs: Sequence[str] = ("fpppp", "ear", "eqntott", "tomcatv"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """Allocation overhead on optimized vs. unoptimized IR.

    Beyond the paper: the cmcc compiler allocated optimized code, our
    default measurements use the raw lowering.  This ablation runs the
    improved allocator on both and reports the unoptimized/optimized
    overhead ratio — values near 1.0 mean the allocator's behaviour is
    robust to the IR diet; large values mean the optimizer removed
    overhead sources (dead copies, foldable temporaries) before the
    allocator ever saw them.
    """
    from repro.eval.overhead import program_overhead
    from repro.machine.mips import register_file
    from repro.regalloc.framework import allocate_program
    from repro.workloads.registry import compile_workload

    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: allocation on optimized vs unoptimized IR",
        configs=configs,
    )
    options = AllocatorOptions.improved_chaitin()
    for program in programs:
        plain = compile_workload(program)
        optimized = compile_workload(program, optimize=True)
        ratios = []
        for config in configs:
            rf = register_file(config)
            plain_alloc = allocate_program(
                plain.program, rf, options, plain.dynamic_weights
            )
            opt_alloc = allocate_program(
                optimized.program, rf, options, optimized.dynamic_weights
            )
            ratios.append(
                overhead_ratio(
                    program_overhead(plain_alloc, plain.profile),
                    program_overhead(opt_alloc, optimized.profile),
                )
            )
        result.series[(program, "plain/optimized")] = ratios
    return result


def ablation_rematerialization(
    programs: Sequence[str] = ("gcc", "sc", "spice", "doduc", "ear"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """Spill-everywhere vs. rematerializing constant-valued ranges.

    Extension beyond the paper (it cites Briggs et al. 1992 as
    complementary spill-minimization work): ratios above 1.0 mean
    rematerialization removed reload traffic the plain spiller paid.
    The beneficiaries are the *call-heavy* programs: storage-class
    analysis deliberately spills constant-valued ranges that cross hot
    calls, and rematerialization makes those spills nearly free.
    """
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: rematerialization (plain-spill/remat ratio)",
        configs=configs,
    )
    plain = AllocatorOptions.improved_chaitin()
    remat = plain.with_(remat=True)
    for program in programs:
        ratios = [
            overhead_ratio(
                measure(program, plain, c, info),
                measure(program, remat, c, info),
            )
            for c in configs
        ]
        result.series[(program, "plain/remat")] = ratios
    return result


def ablation_spill_metric(
    programs: Sequence[str] = ("fpppp", "tomcatv", "espresso", "nasa7"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """Blocking-spill candidate metrics (extension; cf. Bernstein et al.).

    Compares Chaitin's ``cost/degree`` against the square-law
    ``cost/degree^2`` and plain ``cost``, on the pressure-bound
    programs where blocking spills actually happen.  Ratios are
    ``metric overhead / cost_over_degree overhead`` — above 1.0 means
    Chaitin's choice was better.
    """
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: spill-choice metric (X / cost-over-degree)",
        configs=configs,
    )
    reference = AllocatorOptions.improved_chaitin()
    for program in programs:
        base_overheads = [measure(program, reference, c, info) for c in configs]
        for metric in ("cost_over_degree_sq", "cost"):
            options = reference.with_(spill_metric=metric)
            ratios = [
                overhead_ratio(measure(program, options, c, info), b)
                for b, c in zip(base_overheads, configs)
            ]
            result.series[(program, metric)] = ratios
    return result


def static_penalty(
    programs: Sequence[str] = ALL_PROGRAMS,
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> SweepResult:
    """Static vs. dynamic information for the improved allocator.

    The paper defers its static-vs-dynamic discussion to the companion
    technical report [14]; this driver reports the overhead ratio
    (static-informed / profile-informed, both measured against the
    true profile) over the sweep.  1.00 means loop-depth estimation
    ranked this program's live ranges correctly.
    """
    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Static-information penalty for improved Chaitin "
        "(static/dynamic overhead)",
        configs=configs,
    )
    options = AllocatorOptions.improved_chaitin()
    for program in programs:
        ratios = [
            overhead_ratio(
                measure(program, options, c, "static"),
                measure(program, options, c, "dynamic"),
            )
            for c in configs
        ]
        result.series[(program, "static/dynamic")] = ratios
    return result


def ablation_ipra(
    programs: Sequence[str] = ("sc", "ear", "compress", "li", "eqntott"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> SweepResult:
    """Interprocedural save elision (extension; cf. Chow 1988, Wall 1986).

    The improved allocator with and without callee clobber summaries:
    a caller skips the save/restore of a crossing live range at calls
    whose callee provably leaves its register alone.  Ratios are
    plain/IPRA overhead — above 1.0 means summaries removed
    caller-save traffic.  Recursive interpreters (li) see nothing
    (cycles get conservative summaries); hot-helper programs (sc, ear)
    gain the most.
    """
    from repro.eval.overhead import program_overhead
    from repro.machine.mips import register_file
    from repro.regalloc.framework import allocate_program
    from repro.workloads.registry import compile_workload

    configs = list(configs or mips_sweep())
    result = SweepResult(
        title="Ablation: interprocedural save elision (plain/IPRA)",
        configs=configs,
    )
    options = AllocatorOptions.improved_chaitin()
    for program in programs:
        compiled = compile_workload(program)
        weights = (
            compiled.dynamic_weights if info == "dynamic" else compiled.static_weights
        )
        ratios = []
        for config in configs:
            rf = register_file(config)
            plain = allocate_program(compiled.program, rf, options, weights)
            with_ipra = allocate_program(
                compiled.program, rf, options, weights, ipra=True
            )
            ratios.append(
                overhead_ratio(
                    program_overhead(plain, compiled.profile),
                    program_overhead(with_ipra, compiled.profile),
                )
            )
        result.series[(program, "plain/IPRA")] = ratios
    return result


# ----------------------------------------------------------------------
# Measurement grids: what each driver will ask ``measure`` for
# ----------------------------------------------------------------------
#
# The parallel sweep executor (``repro.eval.runner.run_grid``) wants
# the full list of grid points *up front* so it can fan them out over
# worker processes; the drivers above discover them one ``measure``
# call at a time.  Each ``*_grid`` function mirrors its driver's
# default sweep.  A grid needs only to be a superset-free best effort:
# points it misses are computed serially on demand (correct, just not
# prewarmed), and drivers that bypass ``measure`` entirely
# (``ablation_optimized_ir``, ``ablation_ipra``) have empty grids.


def _grid(
    programs: Sequence[str],
    options_list: Sequence[AllocatorOptions],
    configs: Sequence[RegisterConfig],
    infos: Sequence[str],
) -> List[MeasureKey]:
    return [
        (program, options, config, info)
        for program in programs
        for info in infos
        for options in options_list
        for config in configs
    ]


def figure2_grid(
    programs: Sequence[str] = ("eqntott", "ear"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    return _grid(
        programs,
        [AllocatorOptions.base_chaitin()],
        list(configs or mips_sweep()),
        ["dynamic"],
    )


def figure6_grid(
    programs: Sequence[str] = ("nasa7", "ear", "li", "sc", "eqntott", "espresso"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> List[MeasureKey]:
    options = [AllocatorOptions.base_chaitin()] + list(FIGURE6_COMBOS.values())
    return _grid(programs, options, list(configs or mips_sweep()), [info])


def figure7_grid(
    programs: Sequence[str] = ("eqntott", "ear"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    return _grid(
        programs,
        [AllocatorOptions.improved_chaitin()],
        list(configs or mips_sweep()),
        ["dynamic"],
    )


def figure9_grid(
    program: str = "fpppp",
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    options = [
        AllocatorOptions.base_chaitin(),
        AllocatorOptions.optimistic_coloring(),
        AllocatorOptions.improved_chaitin(),
        AllocatorOptions.improved_optimistic(),
    ]
    return _grid([program], options, list(configs or mips_sweep()), ["static"])


def figure10_grid(
    programs: Sequence[str] = ("alvinn", "nasa7", "fpppp", "espresso", "gcc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    options = [
        AllocatorOptions.base_chaitin(),
        AllocatorOptions.improved_chaitin(),
        AllocatorOptions.priority_based(),
    ]
    return _grid(
        programs, options, list(configs or mips_sweep()), ["static", "dynamic"]
    )


def figure11_grid(
    programs: Sequence[str] = ("alvinn", "ear", "li", "matrix300", "nasa7"),
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    options = [
        AllocatorOptions.base_chaitin(),
        AllocatorOptions.improved_chaitin(),
        AllocatorOptions.cbh(),
    ]
    return _grid(
        programs, options, list(configs or mips_sweep()), ["static", "dynamic"]
    )


def _optimistic_grid(
    info: str,
    programs: Sequence[str],
    configs: Optional[Sequence[RegisterConfig]],
) -> List[MeasureKey]:
    options = [
        AllocatorOptions.base_chaitin(),
        AllocatorOptions.optimistic_coloring(),
    ]
    return _grid(programs, options, list(configs or mips_sweep()), [info])


def table2_grid(
    programs: Sequence[str] = ALL_PROGRAMS,
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    return _optimistic_grid("static", programs, configs)


def table3_grid(
    programs: Sequence[str] = ALL_PROGRAMS,
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    return _optimistic_grid("dynamic", programs, configs)


def table4_grid(
    programs: Sequence[str] = ("compress", "eqntott", "li", "sc", "spice"),
    config: RegisterConfig = FULL_CONFIG,
    info: str = "dynamic",
) -> List[MeasureKey]:
    options = [
        AllocatorOptions.optimistic_coloring(),
        AllocatorOptions.improved_chaitin(),
    ]
    return _grid(programs, options, [config], [info])


def ablation_callee_model_grid(
    programs: Sequence[str] = ("doduc", "ear", "li", "sc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> List[MeasureKey]:
    options = [
        AllocatorOptions.improved_chaitin().with_(callee_model="shared"),
        AllocatorOptions.improved_chaitin().with_(callee_model="first"),
    ]
    return _grid(programs, options, list(configs or mips_sweep()), [info])


def ablation_bs_key_grid(
    programs: Sequence[str] = ("ear", "nasa7", "eqntott", "sc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> List[MeasureKey]:
    delta = AllocatorOptions.improved_chaitin(sc=True, bs=True, pr=False)
    return _grid(
        programs,
        [delta, delta.with_(bs_key="max")],
        list(configs or mips_sweep()),
        [info],
    )


def ablation_priority_order_grid(
    programs: Sequence[str] = ("ear", "espresso", "gcc"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> List[MeasureKey]:
    options = [AllocatorOptions.base_chaitin()] + [
        AllocatorOptions.priority_based(strategy)
        for strategy in ("remove_unconstrained", "sort_unconstrained", "sorting")
    ]
    return _grid(programs, options, list(configs or mips_sweep()), [info])


def ablation_rematerialization_grid(
    programs: Sequence[str] = ("gcc", "sc", "spice", "doduc", "ear"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> List[MeasureKey]:
    plain = AllocatorOptions.improved_chaitin()
    return _grid(
        programs,
        [plain, plain.with_(remat=True)],
        list(configs or mips_sweep()),
        [info],
    )


def ablation_spill_metric_grid(
    programs: Sequence[str] = ("fpppp", "tomcatv", "espresso", "nasa7"),
    configs: Optional[Sequence[RegisterConfig]] = None,
    info: str = "dynamic",
) -> List[MeasureKey]:
    reference = AllocatorOptions.improved_chaitin()
    options = [reference] + [
        reference.with_(spill_metric=metric)
        for metric in ("cost_over_degree_sq", "cost")
    ]
    return _grid(programs, options, list(configs or mips_sweep()), [info])


def static_penalty_grid(
    programs: Sequence[str] = ALL_PROGRAMS,
    configs: Optional[Sequence[RegisterConfig]] = None,
) -> List[MeasureKey]:
    return _grid(
        programs,
        [AllocatorOptions.improved_chaitin()],
        list(configs or mips_sweep()),
        ["static", "dynamic"],
    )


def empty_grid(*args, **kwargs) -> List[MeasureKey]:
    """For drivers that allocate directly instead of via ``measure``."""
    return []


#: Driver → grid function, keyed by the driver function's ``__name__``.
EXPERIMENT_GRIDS: Dict[str, Callable[..., List[MeasureKey]]] = {
    "figure2": figure2_grid,
    "figure6": figure6_grid,
    "figure7": figure7_grid,
    "figure9": figure9_grid,
    "figure10": figure10_grid,
    "figure11": figure11_grid,
    "table2": table2_grid,
    "table3": table3_grid,
    "table4": table4_grid,
    "ablation_callee_model": ablation_callee_model_grid,
    "ablation_bs_key": ablation_bs_key_grid,
    "ablation_priority_order": ablation_priority_order_grid,
    "ablation_optimized_ir": empty_grid,
    "ablation_rematerialization": ablation_rematerialization_grid,
    "ablation_spill_metric": ablation_spill_metric_grid,
    "ablation_ipra": empty_grid,
    "static_penalty": static_penalty_grid,
}


def experiment_grid(driver: Callable, *args, **kwargs) -> List[MeasureKey]:
    """The measurement grid a driver will sweep, given its arguments."""
    grid_fn = EXPERIMENT_GRIDS.get(getattr(driver, "__name__", ""), empty_grid)
    return grid_fn(*args, **kwargs)


#: CLI spellings that differ from the driver function names (campaign
#: specs accept either form; see :func:`experiment_grid_by_name`).
_GRID_ALIASES = {
    "ablation_remat": "ablation_rematerialization",
}


def experiment_grid_by_name(name: str) -> List[MeasureKey]:
    """The default grid of a *named* experiment (campaign specs).

    Accepts both the driver spelling (``ablation_bs_key``) and the CLI
    spelling (``ablation-bs-key``).  Drivers that allocate directly
    instead of via ``measure`` (``ablation_optimized_ir``,
    ``ablation_ipra``) have no grid to pre-declare and are rejected —
    a campaign point must be a grid point.
    """
    canonical = name.replace("-", "_")
    canonical = _GRID_ALIASES.get(canonical, canonical)
    grid_fn = EXPERIMENT_GRIDS.get(canonical)
    if grid_fn is None or grid_fn is empty_grid:
        gridded = sorted(
            key for key, fn in EXPERIMENT_GRIDS.items() if fn is not empty_grid
        )
        raise ValueError(
            f"unknown or grid-less experiment {name!r} "
            f"(choose from: {', '.join(gridded)})"
        )
    return grid_fn()
