"""A simple MIPS-flavoured cycle model (for the Table 4 speedups).

The paper reports execution-time speedups measured on a DECstation
5000; we substitute an analytic cycle model over the final allocated
code, weighted by the exact profile.  Costs (documented, not tuned):

==================  ======
operation           cycles
==================  ======
ALU / copy / move   1
load (any kind)     2
store (any kind)    2
integer mul         2
integer div / mod   8
float div           12
branch / jump       1
call (per site)     2
==================  ======

A ``Copy`` whose operands landed in the same physical register costs
nothing (the assembler would delete it).  Total program cycles are the
sum over functions of per-block cycles times block execution counts.
"""

from __future__ import annotations

from repro.analysis.frequency import BlockWeights
from repro.ir.instructions import (
    BinaryOpcode,
    BinOp,
    Branch,
    Call,
    Const,
    Copy,
    Instr,
    Jump,
    Load,
    Ret,
    Store,
    UnaryOp,
)
from repro.profile.profile import Profile
from repro.regalloc.framework import FunctionAllocation, ProgramAllocation
from repro.regalloc.spillinstr import SpillLoad, SpillStore

LOAD_CYCLES = 2
STORE_CYCLES = 2
INT_MUL_CYCLES = 2
INT_DIV_CYCLES = 8
FLOAT_DIV_CYCLES = 12
CALL_CYCLES = 2


def instr_cycles(instr: Instr, allocation: FunctionAllocation) -> int:
    """Cycle cost of one instruction under the model above."""
    if isinstance(instr, (Load, SpillLoad)):
        return LOAD_CYCLES
    if isinstance(instr, (Store, SpillStore)):
        return STORE_CYCLES
    if isinstance(instr, Copy):
        same = (
            allocation.assignment[instr.dst] == allocation.assignment[instr.src]
        )
        return 0 if same else 1
    if isinstance(instr, BinOp):
        if instr.op is BinaryOpcode.MUL and not instr.dst.vtype.is_float:
            return INT_MUL_CYCLES
        if instr.op in (BinaryOpcode.DIV, BinaryOpcode.MOD):
            return (
                FLOAT_DIV_CYCLES if instr.dst.vtype.is_float else INT_DIV_CYCLES
            )
        return 1
    if isinstance(instr, Call):
        return CALL_CYCLES
    if isinstance(instr, (Const, UnaryOp, Branch, Jump, Ret)):
        return 1
    return 1


def function_cycles(
    allocation: FunctionAllocation, counts: BlockWeights
) -> float:
    total = 0.0
    for block in allocation.func.blocks:
        weight = counts.weight(block)
        if weight == 0.0:
            continue
        block_cycles = sum(
            instr_cycles(instr, allocation) for instr in block.instrs
        )
        total += weight * block_cycles
    return total


def program_cycles(allocation: ProgramAllocation, profile: Profile) -> float:
    """Total modelled cycles of an allocated program under a profile."""
    total = 0.0
    for name, fa in allocation.functions.items():
        record = allocation.clone.functions[name]
        counts = BlockWeights(
            weights={
                clone_block: float(profile.count(orig_block))
                for orig_block, clone_block in record.block_map.items()
            },
            entry_weight=float(profile.entries(name)),
        )
        total += function_cycles(fa, counts)
    return total


def speedup_percent(base_cycles: float, improved_cycles: float) -> float:
    """Speedup of ``improved`` over ``base`` in percent (paper Table 4)."""
    if improved_cycles == 0.0:
        return 0.0
    return (base_cycles - improved_cycles) / improved_cycles * 100.0
