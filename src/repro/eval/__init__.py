"""Evaluation: overhead accounting, cycle model, experiment drivers."""

from repro.eval.cycles import (
    function_cycles,
    instr_cycles,
    program_cycles,
    speedup_percent,
)
from repro.eval.experiments import (
    ALL_PROGRAMS,
    SpeedupResult,
    StackedResult,
    SweepResult,
    ablation_bs_key,
    ablation_callee_model,
    ablation_priority_order,
    figure2,
    figure6,
    figure7,
    figure9,
    figure10,
    figure11,
    table2,
    table3,
    table4,
)
from repro.eval.overhead import (
    Overhead,
    function_overhead,
    overhead_by_function,
    program_overhead,
)
from repro.eval.render import format_value, render_table
from repro.eval.runner import (
    allocate_workload,
    clear_caches,
    measure,
    measure_cycles,
    overhead_ratio,
)

__all__ = [
    "ALL_PROGRAMS",
    "Overhead",
    "SpeedupResult",
    "StackedResult",
    "SweepResult",
    "ablation_bs_key",
    "ablation_callee_model",
    "ablation_priority_order",
    "allocate_workload",
    "clear_caches",
    "figure10",
    "figure11",
    "figure2",
    "figure6",
    "figure7",
    "figure9",
    "format_value",
    "function_cycles",
    "function_overhead",
    "instr_cycles",
    "measure",
    "measure_cycles",
    "overhead_by_function",
    "overhead_ratio",
    "program_cycles",
    "program_overhead",
    "render_table",
    "speedup_percent",
    "table2",
    "table3",
    "table4",
]
