"""The measurement workhorse shared by every experiment.

``measure`` allocates one workload under one allocator, register
configuration and information source, and returns the overhead
breakdown evaluated against the workload's exact profile.  Every
measurement is computed **once** and stored in a process-wide
:class:`ResultCache` as a :class:`Measurement` record carrying the
overhead, the modelled cycles and the pipeline's per-phase timings
together — ``measure``, ``measure_cycles`` and ``measure_full`` are
views of the same record, so none of them depends on another having
run first.

The *information source* (``static`` or ``dynamic``) controls the
weights the **allocator** sees; measurement always uses the true
profile, exactly as the paper measures dynamic overhead operations
regardless of how the allocator estimated frequencies.

``run_grid`` fans a measurement grid out over worker processes
(chunked by workload, so each worker compiles a workload at most
once) and merges the results back into the cache in deterministic
submission order; because the parallel path only *pre-warms* the
cache, any rendering produced afterwards is byte-identical to a
serial run.

The sweep executor is fault tolerant: a worker exception, a crashed
worker process (``BrokenProcessPool``) or a per-chunk timeout no
longer kills the sweep.  Failing chunks are retried on a fresh pool
with exponential backoff, then degraded to in-process per-key
execution so one bad grid point cannot sink its whole chunk; what
still fails is captured as a :class:`FailureRecord` inside the
:class:`GridReport` every ``run_grid`` call returns.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import multiprocessing

from repro.analysis.manager import CacheStats
from repro.eval.cycles import program_cycles
from repro.eval.overhead import Overhead, program_overhead
from repro.machine.mips import register_file
from repro.machine.registers import RegisterConfig
from repro.obs.metrics import METRICS, MetricsSnapshot, allocation_metrics
from repro.obs.tracer import PhaseSpan, Tracer
from repro.regalloc.framework import (
    PipelineStats,
    ProgramAllocation,
    allocate_program,
)
from repro.regalloc.options import AllocatorOptions
from repro.workloads.registry import compile_workload

INFO_SOURCES = ("static", "dynamic")

#: One point of the measurement grid: (workload, allocator, config, info).
MeasureKey = Tuple[str, AllocatorOptions, RegisterConfig, str]


def key_as_dict(key: MeasureKey) -> dict:
    """Lossless JSON form of one grid point.

    ``describe_key`` is the human label; this is the machine one — the
    campaign journal persists grid points across process deaths, so
    every field of :class:`AllocatorOptions` must survive, including
    the ones the label elides (``bs_key``, ``spill_metric``, ...).
    """
    from dataclasses import asdict

    name, options, config, info = key
    return {
        "workload": name,
        "options": asdict(options),
        "config": list(config),
        "info": info,
    }


def key_from_dict(data: dict) -> MeasureKey:
    """Inverse of :func:`key_as_dict` (exact reconstruction)."""
    return (
        data["workload"],
        AllocatorOptions(**data["options"]),
        RegisterConfig(*data["config"]),
        data["info"],
    )


@dataclass(frozen=True)
class Measurement:
    """Everything one grid point yields, computed in a single run."""

    overhead: Overhead
    cycles: float
    #: Aggregated per-phase pipeline timings of the allocation.
    stats: PipelineStats
    #: Per-allocation metrics, derived in whatever process computed
    #: the measurement and merged into ``METRICS`` by the parent.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Phase spans (epoch-stamped, pid-tagged) when tracing was on.
    spans: Tuple[PhaseSpan, ...] = ()
    #: ``ResilienceReport.as_dict()`` when the grid point was computed
    #: resiliently (None otherwise): which fallback rung produced the
    #: numbers and why any higher rung was demoted.  Picklable, so it
    #: travels from sweep workers like the metrics snapshot.
    resilience: Optional[dict] = None


class ResultCache:
    """Memoized measurements with hit/miss accounting.

    A deliberately small dict wrapper (no eviction — the grids are
    finite) whose value is the bookkeeping: experiment drivers sweep
    heavily overlapping grids, and the hit rate is the observable that
    tells us the sweep layer is actually sharing work.
    """

    def __init__(self) -> None:
        self._data: Dict[MeasureKey, Measurement] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: MeasureKey) -> Optional[Measurement]:
        """The cached measurement, counting the lookup as hit or miss."""
        cached = self._data.get(key)
        if cached is None:
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def put(self, key: MeasureKey, value: Measurement) -> None:
        self._data[key] = value

    def peek(self, key: MeasureKey) -> Optional[Measurement]:
        """Like ``get`` without touching the hit/miss counters."""
        return self._data.get(key)

    def __contains__(self, key: MeasureKey) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterable[MeasureKey]:
        return self._data.keys()

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)


#: The process-wide measurement cache.
RESULTS = ResultCache()


def allocate_workload(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
    tracer: Optional[Tracer] = None,
    resilient: bool = False,
) -> ProgramAllocation:
    """Allocate one workload (uncached; most callers want ``measure``)."""
    if info not in INFO_SOURCES:
        raise ValueError(f"info must be one of {INFO_SOURCES}, got {info!r}")
    compiled = compile_workload(name)
    weights_for = (
        compiled.dynamic_weights if info == "dynamic" else compiled.static_weights
    )
    return allocate_program(
        compiled.program,
        register_file(config),
        options,
        weights_for,
        cache=compiled.analyses,
        tracer=tracer,
        resilient=resilient,
    )


def compute_measurement(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
    verify: bool = False,
    trace: bool = False,
    resilient: bool = False,
) -> Measurement:
    """Allocate and evaluate one grid point, bypassing the cache.

    With ``verify`` set, the allocation is run through the independent
    post-allocation verifier before being measured, so a sweep can
    certify every allocation it reports on.  With ``trace`` set, a
    span-only tracer rides along and the measurement carries the
    pid-tagged phase spans (the Chrome-trace raw material); decision
    events stay off, so traced sweeps pay only the span bookkeeping.
    With ``resilient`` set, the allocation goes through the fallback
    chain: a grid point whose primary allocator fails yields the best
    surviving rung's (verifier-clean) numbers instead of an error, and
    the measurement's ``resilience`` dict says which rung that was.
    """
    tracer = Tracer(record_events=False) if trace else None
    allocation = allocate_workload(
        name, options, config, info, tracer=tracer, resilient=resilient
    )
    if verify:
        from repro.regalloc.verify import verify_allocation

        verify_allocation(allocation)
    profile = compile_workload(name).profile
    return Measurement(
        overhead=program_overhead(allocation, profile),
        cycles=program_cycles(allocation, profile),
        stats=allocation.stats,
        metrics=allocation_metrics(allocation),
        spans=tuple(tracer.spans) if tracer is not None else (),
        resilience=(
            allocation.resilience.as_dict()
            if allocation.resilience is not None
            else None
        ),
    )


def measure_full(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
    resilient: bool = False,
) -> Measurement:
    """The full measurement record for one grid point (cached).

    ``resilient`` only affects cache *misses*: resilient and plain
    measurements share the four-tuple key, which is sound because a
    resilient run whose primary rung succeeds produces the identical
    allocation, and a grid point whose primary rung fails has no plain
    measurement to collide with (a plain run of it raises).
    """
    key: MeasureKey = (name, options, config, info)
    cached = RESULTS.get(key)
    if cached is None:
        cached = compute_measurement(
            name, options, config, info, resilient=resilient
        )
        RESULTS.put(key, cached)
        METRICS.merge(cached.metrics)
    return cached


def measure(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
    resilient: bool = False,
) -> Overhead:
    """Overhead of ``name`` under the given allocator setup (cached)."""
    return measure_full(name, options, config, info, resilient=resilient).overhead


def measure_cycles(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
    resilient: bool = False,
) -> float:
    """Modelled execution cycles for the same setup (cached)."""
    return measure_full(name, options, config, info, resilient=resilient).cycles


def overhead_ratio(base: Overhead, other: Overhead) -> float:
    """``base.total / other.total`` with the paper's edge conventions.

    Both zero means neither allocator produced overhead (ratio 1.0);
    ``other`` zero alone means the improvement removed *all* overhead
    (reported as ``inf``).
    """
    if other.total == 0.0:
        return 1.0 if base.total == 0.0 else float("inf")
    return base.total / other.total


def clear_caches() -> None:
    """Drop memoized measurements (used by benchmark fixtures)."""
    RESULTS.clear()


# ----------------------------------------------------------------------
# the fault-tolerant parallel sweep executor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FailureRecord:
    """One grid point that could not be computed.

    ``attempts`` counts how many times the point's chunk was tried
    (parallel rounds plus the in-process salvage pass, when any).
    """

    key: MeasureKey
    error: str
    attempts: int

    def describe(self) -> str:
        return f"{describe_key(self.key)} after {self.attempts} attempt(s): {self.error}"

    @property
    def interrupted(self) -> bool:
        """True when the point was cut off, not genuinely broken."""
        return self.error == "interrupted"

    def as_dict(self) -> dict:
        return {
            "key": key_as_dict(self.key),
            "error": self.error,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(data: dict) -> "FailureRecord":
        return FailureRecord(
            key=key_from_dict(data["key"]),
            error=data["error"],
            attempts=data["attempts"],
        )


@dataclass
class GridReport:
    """What a ``run_grid`` call did with each requested grid point."""

    computed: List[MeasureKey] = field(default_factory=list)
    cached: List[MeasureKey] = field(default_factory=list)
    failed: List[FailureRecord] = field(default_factory=list)
    #: True when the run was cut short by ``KeyboardInterrupt``: the
    #: pools were torn down, unfinished points became ``interrupted``
    #: failure records, and everything computed so far is in the cache.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def total(self) -> int:
        return len(self.computed) + len(self.cached) + len(self.failed)

    def failed_keys(self) -> List[MeasureKey]:
        return [record.key for record in self.failed]

    def merge(self, other: "GridReport") -> None:
        self.computed.extend(other.computed)
        self.cached.extend(other.cached)
        self.failed.extend(other.failed)
        self.interrupted = self.interrupted or other.interrupted

    def as_dict(self) -> dict:
        """Lossless JSON form (the campaign journal depends on this
        round-tripping exactly — see :func:`grid_report_from_dict`)."""
        return {
            "computed": [key_as_dict(key) for key in self.computed],
            "cached": [key_as_dict(key) for key in self.cached],
            "failed": [record.as_dict() for record in self.failed],
            "interrupted": self.interrupted,
        }

    @staticmethod
    def from_dict(data: dict) -> "GridReport":
        return GridReport(
            computed=[key_from_dict(item) for item in data["computed"]],
            cached=[key_from_dict(item) for item in data["cached"]],
            failed=[FailureRecord.from_dict(item) for item in data["failed"]],
            interrupted=data["interrupted"],
        )


def describe_key(key: MeasureKey) -> str:
    """Stable human-readable rendering of one grid point."""
    name, options, config, info = key
    return f"{name}:{options.label}:{config}:{info}"


def _measure_chunk(
    chunk: Sequence[MeasureKey],
    verify: bool = False,
    trace: bool = False,
    resilient: bool = False,
) -> List[Tuple[MeasureKey, Measurement]]:
    """Worker entry point: compute a chunk of grid points.

    Runs in a worker process; results travel back as picklable
    ``(key, Measurement)`` pairs.  Workloads are compiled in the
    worker (or inherited pre-compiled under a fork start method).
    """
    return [
        (
            key,
            compute_measurement(
                *key, verify=verify, trace=trace, resilient=resilient
            ),
        )
        for key in chunk
    ]


def _run_chunk(
    chunk: Sequence[MeasureKey],
    verify: bool,
    trace: bool = False,
    resilient: bool = False,
) -> List[Tuple[MeasureKey, Measurement]]:
    """The callable submitted to worker pools.

    Deliberately a trampoline: it resolves ``_measure_chunk`` through
    the module globals *in the worker*, so tests can monkeypatch the
    chunk worker (fault injection) and forked children see the patch.
    """
    return _measure_chunk(chunk, verify, trace=trace, resilient=resilient)


def _chunk_by_workload(keys: Sequence[MeasureKey]) -> List[List[MeasureKey]]:
    """Group grid points by workload, preserving first-seen order.

    One chunk per workload keeps the expensive part — compiling and
    profiling the workload — to one occurrence per worker task.
    """
    chunks: Dict[str, List[MeasureKey]] = {}
    for key in keys:
        chunks.setdefault(key[0], []).append(key)
    return list(chunks.values())


def _split_for_jobs(
    chunks: List[List[MeasureKey]], jobs: int
) -> List[List[MeasureKey]]:
    """Split workload chunks until there are ``jobs`` worker tasks.

    Chunking by workload alone would serialize a single-workload sweep
    on one worker; halving the largest chunk (repeatedly) trades one
    extra compile of that workload for actual parallelism.  Splitting
    is deterministic, and results are merged in submission order, so
    cache contents stay byte-identical either way.
    """
    parts = [list(chunk) for chunk in chunks]
    while len(parts) < jobs:
        largest = max(parts, key=len)
        if len(largest) < 2:
            break
        index = parts.index(largest)
        mid = len(largest) // 2
        parts[index : index + 1] = [largest[:mid], largest[mid:]]
    return parts


def _salvage_chunk(
    chunk: Sequence[MeasureKey],
    attempts: int,
    verify: bool,
    cache: ResultCache,
    report: GridReport,
    trace: bool = False,
    resilient: bool = False,
    on_point: Optional[Callable[[MeasureKey, Measurement], None]] = None,
) -> None:
    """In-process, per-key degradation of a repeatedly-failing chunk.

    Isolates the failure to individual grid points: healthy keys in
    the chunk still land in the cache, bad ones become one
    :class:`FailureRecord` each.
    """
    for index, key in enumerate(chunk):
        try:
            pairs = _measure_chunk([key], verify, trace=trace, resilient=resilient)
        except KeyboardInterrupt:
            # Ctrl-C mid-salvage: everything not yet salvaged becomes
            # an interrupted failure and the report comes back partial.
            report.interrupted = True
            report.failed.extend(
                _interrupt_records(chunk[index:], attempts + 1)
            )
            return
        except Exception as error:
            report.failed.append(
                FailureRecord(
                    key=key,
                    error=f"{type(error).__name__}: {error}",
                    attempts=attempts + 1,
                )
            )
        else:
            for got, measurement in pairs:
                cache.put(got, measurement)
                report.computed.append(got)
                if on_point is not None:
                    on_point(got, measurement)


def _interrupt_records(
    keys: Sequence[MeasureKey], attempts: int
) -> List[FailureRecord]:
    """Failure records for grid points cut off by an interrupt."""
    return [
        FailureRecord(key=key, error="interrupted", attempts=attempts)
        for key in keys
    ]


def _absorb_report(report: GridReport, cache: ResultCache) -> GridReport:
    """Fold a finished ``run_grid`` report into the global registry.

    Merges the per-allocation metrics of every *computed* measurement
    (cached ones were merged when they were first computed) and counts
    the grid outcome; runs in the parent only, so worker processes
    never touch ``METRICS``.
    """
    fallback_runs = 0
    fallback_demotions = 0
    for key in report.computed:
        measurement = cache.peek(key)
        if measurement is None:
            continue
        METRICS.merge(measurement.metrics)
        resilience = measurement.resilience
        if resilience is not None:
            from repro.resilience.chain import record_resilience

            record_resilience(resilience)
            if resilience["degraded"]:
                fallback_runs += 1
            fallback_demotions += len(resilience["demotions"])
    METRICS.inc("grid.computed", len(report.computed))
    METRICS.inc("grid.cached", len(report.cached))
    METRICS.inc("grid.failed", len(report.failed))
    if fallback_runs:
        METRICS.inc("grid.fallback_runs", fallback_runs)
    if fallback_demotions:
        METRICS.inc("grid.fallback_demotions", fallback_demotions)
    return report


def run_grid(
    keys: Sequence[MeasureKey],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str, int, int], None]] = None,
    verify: bool = False,
    timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.5,
    trace: bool = False,
    resilient: bool = False,
    skip_failures: Optional[Sequence[FailureRecord]] = None,
    retry_interrupted: bool = False,
    on_point: Optional[Callable[[MeasureKey, Measurement], None]] = None,
) -> GridReport:
    """Pre-compute a measurement grid, in parallel when ``jobs`` > 1.

    Deduplicates ``keys``, drops the ones already cached, chunks the
    remainder by workload and fans the chunks out over ``jobs`` worker
    processes.  Results are merged into the cache in **submission
    order** (not completion order), so cache contents — and therefore
    any subsequent rendering — are deterministic and byte-identical
    to a serial run.

    The executor survives its workers.  A chunk whose worker raises
    (or whose process dies, surfacing as ``BrokenProcessPool`` on
    every in-flight future) is retried up to ``retries`` more times,
    each round on a **fresh** pool after an exponentially growing
    ``backoff`` pause.  Chunks still failing after the last round are
    degraded to in-process per-key execution so one bad grid point
    cannot take its chunk-mates down with it.  Chunks that exceed the
    per-chunk ``timeout`` (seconds; ``None`` disables) get the same
    parallel retries but skip the in-process pass, because a hung
    computation would hang the parent too.

    ``progress`` (workload name, points done, points total) is called
    from the parent exactly once per chunk *resolution* — success or
    final failure — so the done count is consistent even when chunks
    crash.  Returns a :class:`GridReport` listing the computed,
    already-cached and failed grid points.

    With ``resilient`` set, every grid point allocates through the
    fallback chain (see :mod:`repro.resilience`): points whose primary
    allocator would fail land in the cache as a lower rung's numbers
    annotated with their ``resilience`` report, instead of becoming
    :class:`FailureRecord` entries.

    ``skip_failures`` carries :class:`FailureRecord` entries from an
    earlier run (a previous ``run_grid`` call, or a campaign journal):
    matching keys are **not** recomputed — their records are copied
    into the new report verbatim, attempts preserved.  The exception
    is ``retry_interrupted``: with it set, records whose error is
    ``interrupted`` (points cut off by Ctrl-C, SIGTERM or a dead
    campaign process, not genuinely broken) re-enter the pending set
    and get a fresh try.  This is the campaign resume path's switch —
    a resumed campaign always retries what an earlier death merely
    interrupted, while points that *failed* stay failed until the
    caller's own retry budget says otherwise.

    ``on_point`` is called in the parent, in merge order, once per
    newly computed grid point ``(key, measurement)`` — the campaign
    journal hook.  It runs between chunk resolutions on the hot path,
    so it must be quick; an exception from it aborts the grid (a
    journal that cannot be written means durability is gone, which a
    checkpointing caller must hear about).
    """
    if cache is None:
        cache = RESULTS
    skip: Dict[MeasureKey, FailureRecord] = {}
    for record in skip_failures or ():
        if retry_interrupted and record.interrupted:
            continue
        skip[record.key] = record
    report = GridReport()
    pending: List[MeasureKey] = []
    seen = set()
    for key in keys:
        if key in seen:
            continue
        seen.add(key)
        if key in skip:
            report.failed.append(skip[key])
        elif key in cache:
            report.cached.append(key)
        else:
            pending.append(key)
    if not pending:
        return _absorb_report(report, cache)

    chunks = _chunk_by_workload(pending)
    if jobs is not None and jobs > 1:
        chunks = _split_for_jobs(chunks, jobs)
    total = len(pending)
    done = 0

    def resolve(chunk: Sequence[MeasureKey]) -> None:
        nonlocal done
        done += len(chunk)
        if progress is not None:
            progress(chunk[0][0], done, total)

    if jobs is None or jobs <= 1 or len(chunks) == 1:
        for chunk_no, chunk in enumerate(chunks):
            try:
                pairs = _measure_chunk(
                    chunk, verify, trace=trace, resilient=resilient
                )
            except KeyboardInterrupt:
                # Ctrl-C: hand back the partial report — everything
                # computed so far stays cached, the rest is recorded
                # as interrupted.
                report.interrupted = True
                for rest in chunks[chunk_no:]:
                    report.failed.extend(_interrupt_records(rest, 1))
                    resolve(rest)
                break
            except Exception:
                # One bad key poisons the whole-chunk attempt; re-run
                # key by key to salvage the healthy points.
                _salvage_chunk(
                    chunk, 1, verify, cache, report, trace=trace,
                    resilient=resilient, on_point=on_point,
                )
                if report.interrupted:
                    resolve(chunk)
                    for rest in chunks[chunk_no + 1 :]:
                        report.failed.extend(_interrupt_records(rest, 0))
                        resolve(rest)
                    break
            else:
                for key, measurement in pairs:
                    cache.put(key, measurement)
                    report.computed.append(key)
                    if on_point is not None:
                        on_point(key, measurement)
            resolve(chunk)
        return _absorb_report(report, cache)

    # Warm path: with an artifact store configured, compile + profile
    # every distinct workload once in the parent *before* forking.
    # Pool workers then inherit the warm in-process cache (fork) or
    # read the just-published artifacts (spawn, via REPRO_STORE_DIR),
    # so the grid ships keys to workers — never profiling work.
    from repro.store import get_store

    if get_store() is not None:
        for name in sorted({key[0] for key in pending}):
            try:
                compile_workload(name)
            except Exception:  # noqa: BLE001 - prewarm is advisory
                continue
            METRICS.inc("store.prewarm")

    # Prefer fork on platforms that have it: workers inherit warm
    # compile caches instead of re-importing and recompiling.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()

    rounds = max(1, retries + 1)
    # (chunk, attempts so far) — chunks that still need a parallel try.
    queue: List[Tuple[List[MeasureKey], int]] = [(chunk, 0) for chunk in chunks]
    # (chunk, attempts, error, salvageable) — chunks out of rounds.
    exhausted: List[Tuple[List[MeasureKey], int, str, bool]] = []

    for round_no in range(rounds):
        if not queue:
            break
        if round_no:
            time.sleep(backoff * (2 ** (round_no - 1)))
        retry_next: List[Tuple[List[MeasureKey], int]] = []

        def settle(chunk, attempts, error, salvageable):
            if round_no + 1 < rounds:
                retry_next.append((chunk, attempts))
            else:
                exhausted.append((chunk, attempts, error, salvageable))

        abandoned = False
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(queue)), mp_context=context
        )
        try:
            futures = [
                (
                    chunk,
                    attempts,
                    pool.submit(_run_chunk, chunk, verify, trace, resilient),
                )
                for chunk, attempts in queue
            ]
            for position, (chunk, attempts, future) in enumerate(
                futures
            ):  # submission order
                try:
                    pairs = future.result(timeout=timeout)
                except KeyboardInterrupt:
                    # Ctrl-C in the parent (or an interrupted worker).
                    # Stop the sweep: record this chunk and everything
                    # unresolved as interrupted, harvest chunks that
                    # already finished, and tear the pool down hard so
                    # no orphaned workers keep grinding.
                    abandoned = True
                    report.interrupted = True
                    future.cancel()
                    report.failed.extend(
                        _interrupt_records(chunk, attempts + 1)
                    )
                    resolve(chunk)
                    for later, later_attempts, later_future in futures[
                        position + 1 :
                    ]:
                        later_future.cancel()
                        harvested = False
                        if later_future.done() and not later_future.cancelled():
                            try:
                                for key, measurement in later_future.result(
                                    timeout=0
                                ):
                                    cache.put(key, measurement)
                                    report.computed.append(key)
                                    if on_point is not None:
                                        on_point(key, measurement)
                                harvested = True
                            except BaseException:  # noqa: BLE001
                                harvested = False
                        if not harvested:
                            report.failed.extend(
                                _interrupt_records(later, later_attempts + 1)
                            )
                        resolve(later)
                    break
                except FutureTimeout:
                    # The worker is stuck; the pool must be abandoned
                    # (shutdown without waiting) or we would hang too.
                    future.cancel()
                    abandoned = True
                    settle(
                        chunk, attempts + 1, f"timed out after {timeout:g}s", False
                    )
                except BrokenProcessPool as error:
                    # A dead worker process poisons every in-flight
                    # future of this pool; each poisoned chunk gets
                    # its own retry on the next (fresh) pool.
                    settle(chunk, attempts + 1, f"worker died: {error}", True)
                except Exception as error:
                    settle(
                        chunk,
                        attempts + 1,
                        f"{type(error).__name__}: {error}",
                        True,
                    )
                else:
                    for key, measurement in pairs:
                        cache.put(key, measurement)
                        report.computed.append(key)
                        if on_point is not None:
                            on_point(key, measurement)
                    resolve(chunk)
        finally:
            if report.interrupted:
                # Workers may be mid-measurement; terminate them so an
                # interrupted sweep leaves no orphaned processes.
                for process in list(
                    (getattr(pool, "_processes", None) or {}).values()
                ):
                    process.terminate()
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        if report.interrupted:
            # Chunks settled for a retry round never get one.
            for chunk, attempts in retry_next:
                report.failed.extend(_interrupt_records(chunk, attempts))
                resolve(chunk)
            for chunk, attempts, error, salvageable in exhausted:
                report.failed.extend(
                    FailureRecord(key=key, error=error, attempts=attempts)
                    for key in chunk
                )
                resolve(chunk)
            return _absorb_report(report, cache)
        queue = retry_next

    for chunk, attempts, error, salvageable in exhausted:
        if report.interrupted:
            # A salvage pass got Ctrl-C'd: what remains is recorded
            # as interrupted instead of being ground through.
            report.failed.extend(_interrupt_records(chunk, attempts))
        elif salvageable:
            _salvage_chunk(
                chunk, attempts, verify, cache, report, trace=trace,
                resilient=resilient, on_point=on_point,
            )
        else:
            report.failed.extend(
                FailureRecord(key=key, error=error, attempts=attempts)
                for key in chunk
            )
        resolve(chunk)
    return _absorb_report(report, cache)
