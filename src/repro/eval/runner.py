"""The measurement workhorse shared by every experiment.

``measure`` allocates one workload under one allocator, register
configuration and information source, and returns the overhead
breakdown evaluated against the workload's exact profile.  Every
measurement is computed **once** and stored in a process-wide
:class:`ResultCache` as a :class:`Measurement` record carrying the
overhead, the modelled cycles and the pipeline's per-phase timings
together — ``measure``, ``measure_cycles`` and ``measure_full`` are
views of the same record, so none of them depends on another having
run first.

The *information source* (``static`` or ``dynamic``) controls the
weights the **allocator** sees; measurement always uses the true
profile, exactly as the paper measures dynamic overhead operations
regardless of how the allocator estimated frequencies.

``run_grid`` fans a measurement grid out over worker processes
(chunked by workload, so each worker compiles a workload at most
once) and merges the results back into the cache in deterministic
submission order; because the parallel path only *pre-warms* the
cache, any rendering produced afterwards is byte-identical to a
serial run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import multiprocessing

from repro.analysis.manager import CacheStats
from repro.eval.cycles import program_cycles
from repro.eval.overhead import Overhead, program_overhead
from repro.machine.mips import register_file
from repro.machine.registers import RegisterConfig
from repro.regalloc.framework import (
    PipelineStats,
    ProgramAllocation,
    allocate_program,
)
from repro.regalloc.options import AllocatorOptions
from repro.workloads.registry import compile_workload

INFO_SOURCES = ("static", "dynamic")

#: One point of the measurement grid: (workload, allocator, config, info).
MeasureKey = Tuple[str, AllocatorOptions, RegisterConfig, str]


@dataclass(frozen=True)
class Measurement:
    """Everything one grid point yields, computed in a single run."""

    overhead: Overhead
    cycles: float
    #: Aggregated per-phase pipeline timings of the allocation.
    stats: PipelineStats


class ResultCache:
    """Memoized measurements with hit/miss accounting.

    A deliberately small dict wrapper (no eviction — the grids are
    finite) whose value is the bookkeeping: experiment drivers sweep
    heavily overlapping grids, and the hit rate is the observable that
    tells us the sweep layer is actually sharing work.
    """

    def __init__(self) -> None:
        self._data: Dict[MeasureKey, Measurement] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: MeasureKey) -> Optional[Measurement]:
        """The cached measurement, counting the lookup as hit or miss."""
        cached = self._data.get(key)
        if cached is None:
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def put(self, key: MeasureKey, value: Measurement) -> None:
        self._data[key] = value

    def peek(self, key: MeasureKey) -> Optional[Measurement]:
        """Like ``get`` without touching the hit/miss counters."""
        return self._data.get(key)

    def __contains__(self, key: MeasureKey) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterable[MeasureKey]:
        return self._data.keys()

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)


#: The process-wide measurement cache.
RESULTS = ResultCache()


def allocate_workload(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> ProgramAllocation:
    """Allocate one workload (uncached; most callers want ``measure``)."""
    if info not in INFO_SOURCES:
        raise ValueError(f"info must be one of {INFO_SOURCES}, got {info!r}")
    compiled = compile_workload(name)
    weights_for = (
        compiled.dynamic_weights if info == "dynamic" else compiled.static_weights
    )
    return allocate_program(
        compiled.program,
        register_file(config),
        options,
        weights_for,
        cache=compiled.analyses,
    )


def compute_measurement(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> Measurement:
    """Allocate and evaluate one grid point, bypassing the cache."""
    allocation = allocate_workload(name, options, config, info)
    profile = compile_workload(name).profile
    return Measurement(
        overhead=program_overhead(allocation, profile),
        cycles=program_cycles(allocation, profile),
        stats=allocation.stats,
    )


def measure_full(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> Measurement:
    """The full measurement record for one grid point (cached)."""
    key: MeasureKey = (name, options, config, info)
    cached = RESULTS.get(key)
    if cached is None:
        cached = compute_measurement(name, options, config, info)
        RESULTS.put(key, cached)
    return cached


def measure(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> Overhead:
    """Overhead of ``name`` under the given allocator setup (cached)."""
    return measure_full(name, options, config, info).overhead


def measure_cycles(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> float:
    """Modelled execution cycles for the same setup (cached)."""
    return measure_full(name, options, config, info).cycles


def overhead_ratio(base: Overhead, other: Overhead) -> float:
    """``base.total / other.total`` with the paper's edge conventions.

    Both zero means neither allocator produced overhead (ratio 1.0);
    ``other`` zero alone means the improvement removed *all* overhead
    (reported as ``inf``).
    """
    if other.total == 0.0:
        return 1.0 if base.total == 0.0 else float("inf")
    return base.total / other.total


def clear_caches() -> None:
    """Drop memoized measurements (used by benchmark fixtures)."""
    RESULTS.clear()


# ----------------------------------------------------------------------
# the parallel sweep executor
# ----------------------------------------------------------------------


def _measure_chunk(chunk: Sequence[MeasureKey]) -> List[Tuple[MeasureKey, Measurement]]:
    """Worker entry point: compute a chunk of grid points.

    Runs in a worker process; results travel back as picklable
    ``(key, Measurement)`` pairs.  Workloads are compiled in the
    worker (or inherited pre-compiled under a fork start method).
    """
    return [(key, compute_measurement(*key)) for key in chunk]


def _chunk_by_workload(keys: Sequence[MeasureKey]) -> List[List[MeasureKey]]:
    """Group grid points by workload, preserving first-seen order.

    One chunk per workload keeps the expensive part — compiling and
    profiling the workload — to one occurrence per worker task.
    """
    chunks: Dict[str, List[MeasureKey]] = {}
    for key in keys:
        chunks.setdefault(key[0], []).append(key)
    return list(chunks.values())


def run_grid(
    keys: Sequence[MeasureKey],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> int:
    """Pre-compute a measurement grid, in parallel when ``jobs`` > 1.

    Deduplicates ``keys``, drops the ones already cached, chunks the
    remainder by workload and fans the chunks out over ``jobs`` worker
    processes.  Results are merged into the cache in **submission
    order** (not completion order), so cache contents — and therefore
    any subsequent rendering — are deterministic and byte-identical
    to a serial run.  Returns the number of grid points computed.

    ``progress`` (workload name, points done, points total) is called
    after each chunk completes, from the parent process.
    """
    if cache is None:
        cache = RESULTS
    pending: List[MeasureKey] = []
    seen = set()
    for key in keys:
        if key not in seen and key not in cache:
            seen.add(key)
            pending.append(key)
    if not pending:
        return 0

    chunks = _chunk_by_workload(pending)
    total = len(pending)
    done = 0

    if jobs is None or jobs <= 1 or len(chunks) == 1:
        for chunk in chunks:
            for key, measurement in _measure_chunk(chunk):
                cache.put(key, measurement)
            done += len(chunk)
            if progress is not None:
                progress(chunk[0][0], done, total)
        return total

    # Prefer fork on platforms that have it: workers inherit warm
    # compile caches instead of re-importing and recompiling.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    workers = min(jobs, len(chunks))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [(chunk, pool.submit(_measure_chunk, chunk)) for chunk in chunks]
        for chunk, future in futures:  # submission order: deterministic merge
            for key, measurement in future.result():
                cache.put(key, measurement)
            done += len(chunk)
            if progress is not None:
                progress(chunk[0][0], done, total)
    return total
