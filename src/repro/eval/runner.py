"""The measurement workhorse shared by every experiment.

``measure`` allocates one workload under one allocator, register
configuration and information source, and returns the overhead
breakdown evaluated against the workload's exact profile.  Results
are memoized per process: the experiment drivers sweep overlapping
grids, and an allocation is deterministic in its inputs.

The *information source* (``static`` or ``dynamic``) controls the
weights the **allocator** sees; measurement always uses the true
profile, exactly as the paper measures dynamic overhead operations
regardless of how the allocator estimated frequencies.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.eval.cycles import program_cycles
from repro.eval.overhead import Overhead, program_overhead
from repro.machine.mips import register_file
from repro.machine.registers import RegisterConfig
from repro.regalloc.framework import ProgramAllocation, allocate_program
from repro.regalloc.options import AllocatorOptions
from repro.workloads.registry import compile_workload

INFO_SOURCES = ("static", "dynamic")

_MeasureKey = Tuple[str, AllocatorOptions, RegisterConfig, str]
_overhead_cache: Dict[_MeasureKey, Overhead] = {}
_cycles_cache: Dict[_MeasureKey, float] = {}


def allocate_workload(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> ProgramAllocation:
    """Allocate one workload (uncached; most callers want ``measure``)."""
    if info not in INFO_SOURCES:
        raise ValueError(f"info must be one of {INFO_SOURCES}, got {info!r}")
    compiled = compile_workload(name)
    weights_for = (
        compiled.dynamic_weights if info == "dynamic" else compiled.static_weights
    )
    return allocate_program(
        compiled.program, register_file(config), options, weights_for
    )


def measure(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> Overhead:
    """Overhead of ``name`` under the given allocator setup (cached)."""
    key = (name, options, config, info)
    cached = _overhead_cache.get(key)
    if cached is None:
        allocation = allocate_workload(name, options, config, info)
        profile = compile_workload(name).profile
        cached = program_overhead(allocation, profile)
        _overhead_cache[key] = cached
        _cycles_cache[key] = program_cycles(allocation, profile)
    return cached


def measure_cycles(
    name: str,
    options: AllocatorOptions,
    config: RegisterConfig,
    info: str = "dynamic",
) -> float:
    """Modelled execution cycles for the same setup (cached)."""
    key = (name, options, config, info)
    if key not in _cycles_cache:
        measure(name, options, config, info)
    return _cycles_cache[key]


def overhead_ratio(base: Overhead, other: Overhead) -> float:
    """``base.total / other.total`` with the paper's edge conventions.

    Both zero means neither allocator produced overhead (ratio 1.0);
    ``other`` zero alone means the improvement removed *all* overhead
    (reported as ``inf``).
    """
    if other.total == 0.0:
        return 1.0 if base.total == 0.0 else float("inf")
    return base.total / other.total


def clear_caches() -> None:
    """Drop memoized measurements (used by benchmark fixtures)."""
    _overhead_cache.clear()
    _cycles_cache.clear()
